"""Training objectives (Sec. II-F / II-G; Eq. 18-25).

All losses consume *raw logits* from the prediction heads: since the
scores of Eq. 16/17 are ``σ(logit)`` and σ is monotone, optimising the
logit-space forms below is the numerically-stable equivalent of the
paper's equations (``log σ(x)`` is computed as a stable softplus).

* :func:`bpr_loss` — one BPR term (Eq. 19's ``L_A`` and ``L_B``).
* :func:`aux_loss_task_a` — Eq. 21, the ListNet-style refinement: for a
  positive triple, participant-corrupted triples (label 1) should score
  high where item-corrupted triples (label 0) should not.  Two modes:
  ``literal`` is Eq. 21 verbatim (only label-1 terms contribute,
  ``-y log s``); ``listnet`` softmax-normalizes the 2|T| candidate
  scores and cross-entropies against the uniform distribution over the
  label-1 slots (the classic ListNet top-one form).
* :func:`aux_loss_task_b` — Eq. 24, BPR on item corruption for Task B.
* :func:`total_loss` — Eq. 25: ``L_A + β L_B + β_A L'_A + β_B L'_B``.

Two entry points per auxiliary loss: :func:`aux_loss_task_a` /
:func:`aux_loss_task_b` score their corruption triples through the model
(the flat training path), while :func:`listwise_aux_loss` and
:func:`aux_loss_task_b_from_scores` accept *pre-planned* score tensors —
the planned trainer compiles every corruption request into one
:class:`repro.plan.PlannedBatch`, scores unique triples once, and feeds
the scattered segments through :func:`aux_losses_from_scores`, which
derives **both** auxiliary losses from that shared corruption bank
(``listnet`` mode builds its softmax normalizer once over the bank via
a two-bank logsumexp — no concatenated logit/target matrices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "bpr_loss",
    "listwise_aux_loss",
    "aux_loss_task_a",
    "aux_loss_task_b",
    "aux_loss_task_b_from_scores",
    "aux_losses_from_scores",
    "LossBreakdown",
    "total_loss",
]


def bpr_loss(pos_logits: Tensor, neg_logits: Tensor) -> Tensor:
    """Bayesian personalized ranking loss ``-mean log σ(pos - neg)``.

    Parameters
    ----------
    pos_logits: ``(batch,)`` scores of the observed interactions.
    neg_logits: ``(batch, n_neg)`` scores of sampled negatives; every
        (positive, negative) pair contributes one term, matching the
        double sum in Eq. 19.
    """
    if pos_logits.ndim != 1:
        raise ValueError(f"pos_logits must be 1-D, got shape {pos_logits.shape}")
    if neg_logits.ndim != 2 or neg_logits.shape[0] != pos_logits.shape[0]:
        raise ValueError(
            f"neg_logits must be (batch, n_neg) aligned with pos, got {neg_logits.shape}"
        )
    diff = pos_logits.reshape(-1, 1) - neg_logits
    return -F.logsigmoid(diff).mean()


def listwise_aux_loss(
    participant_corrupted: Tensor,
    item_corrupted: Tensor,
    mode: str = "literal",
) -> Tensor:
    """Task A's auxiliary loss ``L'_A`` (Eq. 21).

    Parameters
    ----------
    participant_corrupted:
        ``(batch, |T|)`` logits of ``s(u, i, p')`` — triples from
        ``T_P`` (label ``y = 1``): corrupting the participant should
        *not* tank the Task-A score.
    item_corrupted:
        ``(batch, |T|)`` logits of ``s(u, i', p)`` — triples from
        ``T_I`` (label ``y = 0``): corrupting the item should.
    mode:
        ``"literal"`` — Eq. 21 exactly: ``-(1/(|N⁺|·2|T|)) Σ y log s``;
        only ``T_P`` terms carry gradient (``log s = log σ(logit)``).
        ``"listnet"`` — softmax over the combined ``2|T|`` scores,
        cross-entropy against uniform mass on the ``T_P`` half; this
        additionally pushes ``T_I`` scores *down* relative to ``T_P``,
        the ranking of Eq. 20.

    The listnet form is computed as a **two-bank logsumexp**: the
    cross-entropy against uniform ``T_P`` mass collapses to

        ``mean_row( logsumexp([T_P ‖ T_I]) − mean(T_P) )``

    so one shared softmax normalizer over the corruption bank is built
    directly from the two ``(batch, |T|)`` banks — the planned trainer
    hands both losses the same scattered corruption segments, and no
    ``(batch, 2|T|)`` concatenation, log-prob matrix or one-hot target
    is ever materialised.
    """
    if participant_corrupted.shape != item_corrupted.shape:
        raise ValueError(
            "corruption banks must have equal shapes, got "
            f"{participant_corrupted.shape} vs {item_corrupted.shape}"
        )
    if mode == "literal":
        # y=1 only on T_P; the 1/(2|T|) normaliser keeps Eq. 21's scale.
        return -F.logsigmoid(participant_corrupted).sum(axis=1).mean() / (
            2.0 * participant_corrupted.shape[1]
        )
    if mode == "listnet":
        # Detached max shift: the softmax is shift-invariant, so the
        # shift contributes no gradient — a constant keeps the graph
        # small and the exp()s in range.
        shift = Tensor(
            np.maximum(
                participant_corrupted.data.max(axis=1, keepdims=True),
                item_corrupted.data.max(axis=1, keepdims=True),
            )
        )
        mass = (participant_corrupted - shift).exp().sum(axis=1) + (
            item_corrupted - shift
        ).exp().sum(axis=1)
        logsumexp = shift.reshape(-1) + mass.log()
        return (logsumexp - participant_corrupted.mean(axis=1)).mean()
    raise ValueError(f"unknown aux mode {mode!r}; expected literal|listnet")


def aux_loss_task_a(
    model,
    emb,
    users: np.ndarray,
    items: np.ndarray,
    participants: np.ndarray,
    corrupted_items: np.ndarray,
    corrupted_participants: np.ndarray,
    mode: str = "literal",
) -> Tensor:
    """Assemble ``L'_A`` for a batch of positive triples.

    ``corrupted_items`` / ``corrupted_participants`` are ``(batch, |T|)``
    index arrays from :class:`repro.data.NegativeSampler`.  Scores are
    computed with the *Task A head* fed an explicit participant (the
    "except that e_p is just the embedding of p" clause under Eq. 20).
    """
    batch, t = corrupted_participants.shape
    u_rep = np.repeat(users, t)
    i_rep = np.repeat(items, t)
    p_rep = np.repeat(participants, t)
    s_tp = model.score_items_from(
        emb, u_rep, i_rep, participants=corrupted_participants.ravel(), raw=True
    ).reshape(batch, t)
    s_ti = model.score_items_from(
        emb, u_rep, corrupted_items.ravel(), participants=p_rep, raw=True
    ).reshape(batch, t)
    return listwise_aux_loss(s_tp, s_ti, mode=mode)


def aux_loss_task_b(
    model,
    emb,
    users: np.ndarray,
    items: np.ndarray,
    participants: np.ndarray,
    corrupted_items: np.ndarray,
) -> Tensor:
    """Assemble ``L'_B`` (Eq. 24) for a batch of positive triples.

    BPR between the true-triple Task-B score ``s(p|u,i)`` and the
    item-corrupted scores ``s(p|u,i')``.
    """
    batch, t = corrupted_items.shape
    pos = model.score_participants_from(emb, users, items, participants, raw=True)
    u_rep = np.repeat(users, t)
    p_rep = np.repeat(participants, t)
    neg = model.score_participants_from(
        emb, u_rep, corrupted_items.ravel(), p_rep, raw=True
    ).reshape(batch, t)
    return bpr_loss(pos, neg)


def aux_loss_task_b_from_scores(
    pos_logits: Tensor, corrupted_logits: Tensor
) -> Tensor:
    """``L'_B`` (Eq. 24) from pre-planned scores.

    ``pos_logits`` are the true triples' Task-B logits ``s(p|u,i)``
    (``(batch,)``) and ``corrupted_logits`` the item-corrupted
    ``s(p|u,i')`` bank (``(batch, |T|)``) — the planned trainer reads
    both as segments of one scattered score vector, so the positive
    scores are shared with ``L_B`` instead of recomputed.
    """
    return bpr_loss(pos_logits, corrupted_logits)


def aux_losses_from_scores(
    pos_b_logits: Tensor,
    participant_corrupted_a: Tensor,
    item_corrupted_a: Tensor,
    item_corrupted_b: Tensor,
    mode: str = "literal",
    want_a: bool = True,
    want_b: bool = True,
):
    """Assemble ``(L'_A, L'_B)`` from one planned corruption bank.

    The planned trainer scores the shared corruption requests once —
    the ``(u, i, p')`` / ``(u, i', p)`` banks land as adjacent segments
    of one :class:`repro.plan.PlannedBatch` and the joint stack returns
    both heads' logits over them — and this helper derives both
    auxiliary losses from those segments: ``L'_A`` from the Task-A
    corruption banks (under ``mode="listnet"``, one shared softmax
    normalizer over the whole bank via :func:`listwise_aux_loss`'s
    two-bank logsumexp), ``L'_B`` as BPR between the Task-B positives
    and the *same* item-corrupted triples' Task-B logits.  Either loss
    can be switched off (``want_a``/``want_b`` mirror ``β_A``/``β_B``
    gating); disabled losses return ``None``.
    """
    aux_a = (
        listwise_aux_loss(participant_corrupted_a, item_corrupted_a, mode=mode)
        if want_a
        else None
    )
    aux_b = (
        aux_loss_task_b_from_scores(pos_b_logits, item_corrupted_b)
        if want_b
        else None
    )
    return aux_a, aux_b


@dataclass
class LossBreakdown:
    """The four objective components plus their weighted total."""

    task_a: float
    task_b: float
    aux_a: float
    aux_b: float
    total: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for history logging."""
        return {
            "L_A": self.task_a,
            "L_B": self.task_b,
            "L'_A": self.aux_a,
            "L'_B": self.aux_b,
            "total": self.total,
        }


def total_loss(
    loss_a: Tensor,
    loss_b: Tensor,
    aux_a: Optional[Tensor],
    aux_b: Optional[Tensor],
    beta: float,
    beta_a: float,
    beta_b: float,
) -> Tensor:
    """Eq. 25: ``L = L_A + β·L_B + β_A·L'_A + β_B·L'_B``.

    ``aux_a`` / ``aux_b`` may be ``None`` (MGBR-R and the baselines),
    reducing to Eq. 18.
    """
    loss = loss_a + beta * loss_b
    if aux_a is not None and beta_a > 0:
        loss = loss + beta_a * aux_a
    if aux_b is not None and beta_b > 0:
        loss = loss + beta_b * aux_b
    return loss
