"""MGBR hyper-parameter configuration (paper Table II).

The defaults reproduce Table II exactly:

====== ======= ==================================================
Param  Value   Comment
====== ======= ==================================================
d       128    embedding dimension
H       2      number of GCN layers
K       6      number of expert networks in each layer
L       2      layer number of experts and gates
|T|     99     negative sampling size in the auxiliary losses
α_A     0.1    control coefficient of Eq. 12
α_B     0.1    control coefficient of Eq. 13
β       1      control coefficient of L_B in Eq. 25
β_A     0.3    control coefficient of L'_A in Eq. 25
β_B     0.3    control coefficient of L'_B in Eq. 25
ρ       0.0002 learning rate
|B|     64     batch size
====== ======= ==================================================

:meth:`MGBRConfig.small` gives a scaled-down profile for tests and the
benchmark harness (NumPy substrate; see DESIGN.md scale note).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["MGBRConfig"]


@dataclass
class MGBRConfig:
    """All MGBR hyper-parameters, in the paper's notation.

    Attributes beyond Table II:

    ``mlp_hidden``      hidden widths of the prediction MLPs (Eq. 16/17);
                        the paper does not specify them — default is
                        ``(d, d // 2)``.
    ``gate_softmax``    softmax-normalize gate attention weights (the
                        "principle of self-attention" the paper cites).
    ``first_layer_compact``
                        feed ``g⁰`` once at layer 1 instead of the
                        duplicated concatenation — see the shape note in
                        DESIGN.md §5.
    ``use_shared_experts``  disable for the MGBR-M ablation.
    ``use_aux_losses``      disable for the MGBR-R ablation.
    ``use_hin_views``       enable for the MGBR-D ablation (one HIN GCN
                            instead of three per-view GCNs).
    ``aux_a_mode``      "literal" implements Eq. 21 exactly;
                        "listnet" softmax-normalizes the candidate list
                        first (the ListNet reading the equation cites).
    ``grad_clip``       global-norm gradient clip (0 disables).
    """

    # --- Table II ----------------------------------------------------
    d: int = 128
    gcn_layers: int = 2          # H
    n_experts: int = 6           # K
    mtl_layers: int = 2          # L
    aux_negatives: int = 99      # |T|
    alpha_a: float = 0.1
    alpha_b: float = 0.1
    beta: float = 1.0
    beta_a: float = 0.3
    beta_b: float = 0.3
    learning_rate: float = 2e-4
    batch_size: int = 64

    # --- architecture details not pinned down by the paper ------------
    mlp_hidden: Optional[Tuple[int, ...]] = None
    gate_softmax: bool = True
    first_layer_compact: bool = False
    feature_std: float = 1.0     # paper: X⁰ ~ Gaussian(0, 1)
    gcn_gain: float = 3.0        # Xavier gain of the GCN weights; >1 keeps the
                                 # sigmoid layers out of their flat region at
                                 # small d (see DESIGN.md scale note)
    train_negatives: int = 9     # 1:9 positive:negative training ratio

    # --- ablation switches --------------------------------------------
    use_shared_experts: bool = True   # False => MGBR-M
    use_aux_losses: bool = True       # False => MGBR-R
    use_adjusted_gates: bool = True   # False => MGBR-G (α := 0)
    use_hin_views: bool = False       # True  => MGBR-D
    include_participant_edges: bool = False  # footnote-1 variant

    # --- training mechanics --------------------------------------------
    aux_a_mode: str = "literal"
    grad_clip: float = 5.0
    seed: int = 0

    # --- serving / evaluation ------------------------------------------
    #: Scoring precision of candidate-list evaluation and serving-style
    #: inference.  Training and gradcheck always run float64; "float32"
    #: opts evaluation into the substrate's half-bandwidth fast path
    #: (see repro.nn.tensor.dtype_scope / repro.eval.protocol).
    inference_dtype: str = "float64"

    # --- storage layout -------------------------------------------------
    #: Shard count for every layer-0 embedding table (the GCN feature
    #: tables).  0/1 keeps the dense single-table layout; >= 2 partitions
    #: each table across a :class:`repro.store.ShardedStore` — scores,
    #: losses and trained weights are bit-identical to dense at float64
    #: for any count, so the knob is purely a memory-layout decision.
    embedding_shards: int = 0
    #: Row-to-shard assignment: "range" (contiguous blocks) or "hash"
    #: (modulo striping); see :class:`repro.store.Partitioner`.
    embedding_partition: str = "range"
    #: Move each table's shards into worker *processes*
    #: (:class:`repro.store.ProcessShardedStore`): rows are owned and
    #: gathered outside the GIL over shared-memory buffers.  Same
    #: bit-parity contract as the in-process layouts.
    embedding_service: bool = False
    #: Quantised embedding memory tier: ``None`` (float rows), "int8"
    #: (per-row affine codes + scale/zero side arrays, ~4× rows per
    #: byte) or "fp16" (~2×).  Training bypasses the tier (in-process
    #: layouts keep a float master; a quantised *service* layout is
    #: inference-only).  See docs/quantization.md.
    embedding_quantize: Optional[str] = None

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise ValueError(f"embedding dim d must be positive, got {self.d}")
        if self.gcn_layers < 1:
            raise ValueError(f"H must be >= 1, got {self.gcn_layers}")
        if self.n_experts < 1:
            raise ValueError(f"K must be >= 1, got {self.n_experts}")
        if self.mtl_layers < 1:
            raise ValueError(f"L must be >= 1, got {self.mtl_layers}")
        if self.aux_negatives < 1:
            raise ValueError(f"|T| must be >= 1, got {self.aux_negatives}")
        for name in ("alpha_a", "alpha_b"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        for name in ("beta", "beta_a", "beta_b"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.aux_a_mode not in ("literal", "listnet"):
            raise ValueError(f"aux_a_mode must be literal|listnet, got {self.aux_a_mode!r}")
        if self.inference_dtype not in ("float32", "float64"):
            raise ValueError(
                f"inference_dtype must be float32|float64, got {self.inference_dtype!r}"
            )
        if self.embedding_shards < 0:
            raise ValueError(
                f"embedding_shards must be >= 0, got {self.embedding_shards}"
            )
        if self.embedding_partition not in ("range", "hash"):
            raise ValueError(
                f"embedding_partition must be range|hash, got {self.embedding_partition!r}"
            )
        if self.embedding_quantize not in (None, "int8", "fp16"):
            raise ValueError(
                f"embedding_quantize must be None|int8|fp16, "
                f"got {self.embedding_quantize!r}"
            )
        if self.mlp_hidden is None:
            self.mlp_hidden = (self.d, max(self.d // 2, 1))

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides) -> "MGBRConfig":
        """Exact Table II settings (embedding dim 128 etc.)."""
        return cls(**overrides)

    @classmethod
    def small(cls, **overrides) -> "MGBRConfig":
        """Scaled-down profile for tests/benches on the NumPy substrate."""
        base = dict(
            d=16,
            gcn_layers=2,
            n_experts=3,
            mtl_layers=2,
            aux_negatives=8,
            train_negatives=4,
            batch_size=32,
            learning_rate=5e-3,
            mlp_hidden=(16,),
        )
        base.update(overrides)
        return cls(**base)

    def replace(self, **overrides) -> "MGBRConfig":
        """Return a copy with ``overrides`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **overrides)

    @property
    def view_dim(self) -> int:
        """Width of each per-object embedding after view concatenation (2d)."""
        return 2 * self.d

    @property
    def triple_dim(self) -> int:
        """Width of ``e_u || e_i || e_p`` — the MTL layer-0 input (6d)."""
        return 3 * self.view_dim
