"""Common interface for all group-buying recommenders.

Every model in this repository — MGBR, its ablation variants, and the six
baselines — implements the same contract so the trainer, the evaluation
protocol and the benchmark harness treat them uniformly:

* :meth:`compute_embeddings` builds the differentiable entity
  representations (one full forward of whatever encoder the model uses);
* :meth:`score_items_from` / :meth:`score_participants_from` score Task A
  pairs and Task B triples *given* those embeddings, so one encoder pass
  is shared across positives, negatives, and both tasks within a
  training step;
* :meth:`score_items` / :meth:`score_participants` are the stateless
  public equivalents used by evaluation (they reuse a cached encoder
  pass created by :meth:`refresh_cache` when available);
* :meth:`score_items_matrix` / :meth:`score_participants_matrix` are the
  **batched scoring path**: they score one candidate *matrix* — many
  instances × many candidates — against the cached encoder pass.  By
  default the request is first compiled into a
  :class:`repro.plan.ScoringPlan` (repeated requests scored once, the
  result scattered back); ``score_item_plan`` /
  ``score_participant_plan`` expose the unique-request scoring directly
  to the evaluation protocol's chunked runner and the serving
  front-end, and the ``_score_*_plan`` hooks let models exploit the
  plan's entity structure (MGBR's factorized expert/gate stack does).
  Scoring must therefore be a *pure function* of the id tuple given the
  cached embeddings — which every model here satisfies in eval mode.

Baselines that were not designed for Task B inherit the paper's
tailoring (Sec. III-B): the participant score is the inner product of
the participant's and the initiator's user embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.executor import FusedWorkspace, VALID_EXECUTORS, resolve_executor
from repro.plan import ScoringPlan
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor, get_default_dtype, is_grad_enabled, take_rows
from repro.store import EmbeddingStore, iter_stores

__all__ = ["EmbeddingBundle", "GroupBuyingRecommender", "bundle_rows", "as_matrix"]

#: A bundle slot: either a materialised tensor (encoder output / dense
#: table) or a sharded/dense :class:`repro.store.EmbeddingStore` whose
#: rows are gathered on demand — the layout serving catalogs beyond one
#: table's worth of RAM.
BundleSource = Union[Tensor, EmbeddingStore]


def bundle_rows(source: BundleSource, index, plan=None, role: Optional[str] = None) -> Tensor:
    """Gather rows from a bundle slot, whatever its storage layout.

    Tensors take the plain :func:`repro.nn.tensor.take_rows` gather;
    embedding stores answer from their shards (touching each shard once
    per call).  ``plan``/``role`` optionally name a
    :class:`repro.plan.ScoringPlan` id array so the store reuses the
    plan's cached per-shard gather map.
    """
    if isinstance(source, EmbeddingStore):
        return source.gather(index, plan=plan, role=role)
    return take_rows(source, np.asarray(index, dtype=np.int64))


def as_matrix(source: BundleSource) -> np.ndarray:
    """A bundle slot's full table as a raw array (analysis/plotting)."""
    if isinstance(source, EmbeddingStore):
        return source.logical_state()
    return np.asarray(source.data)


@dataclass
class EmbeddingBundle:
    """Entity representations produced by one encoder pass.

    Attributes
    ----------
    user:
        ``(|U|, d_u)`` initiator-role user embeddings.
    item:
        ``(|I|, d_i)`` item embeddings.
    participant:
        ``(|U|, d_p)`` participant-role user embeddings; models without
        role separation pass the same tensor as ``user``.

    Each slot is either a tensor or an :class:`repro.store
    .EmbeddingStore` (a table-only model can hand its store straight to
    the scoring paths, which then gather per shard instead of reading a
    materialised table) — read rows via :func:`bundle_rows`.
    """

    user: BundleSource
    item: BundleSource
    participant: BundleSource
    _mean_participant: Optional[Tensor] = field(default=None, repr=False, compare=False)

    def mean_participant(self) -> Tensor:
        """``(1, d_p)`` average of all participant rows, computed once.

        Task A's participant slot (paper Sec. II-E) uses this same
        reduction for every scored request; caching it on the bundle
        keeps the O(|U|·d) pass off the per-chunk hot path (as a shared
        autograd sub-expression its gradient still accumulates
        correctly in training).  A store-backed slot materialises its
        logical table for the reduction — bit-identical to the dense
        mean, since store concatenation reassembles the exact table."""
        if self._mean_participant is None:
            participant = self.participant
            if isinstance(participant, EmbeddingStore):
                participant = participant.all()
            self._mean_participant = participant.mean(axis=0, keepdims=True)
        return self._mean_participant


class GroupBuyingRecommender(Module):
    """Abstract base: two scoring functions over one embedding pass."""

    #: Whether the trainer should attach the auxiliary losses (Sec. II-G).
    #: Only the MGBR family overrides this.
    supports_aux_losses: bool = False

    #: Rough dense-scoring cost per request row relative to a plain
    #: dot-product scorer — the model-cost term of the ``dedup="auto"``
    #: heuristic (:meth:`prefers_planned`).  MGBR overrides this with a
    #: value proportional to its layer-0 linear widths.
    scoring_cost_hint: float = 1.0

    def __init__(self, n_users: int, n_items: int) -> None:
        super().__init__()
        if n_users <= 0 or n_items <= 0:
            raise ValueError(f"need positive entity counts, got {n_users}/{n_items}")
        self.n_users = n_users
        self.n_items = n_items
        self._cached: Optional[EmbeddingBundle] = None
        self._executor_mode = "auto"
        self._fused_ws: Optional[FusedWorkspace] = None

    # ------------------------------------------------------------------
    # Executor selection (fused no-tape inference vs. autograd tape)
    # ------------------------------------------------------------------
    @property
    def executor(self) -> str:
        """Planned-scoring executor knob: ``"auto"``/``"fused"``/``"tape"``.

        ``"auto"`` (the default) runs fused under inference and defers
        to the ``REPRO_EXECUTOR`` environment variable; gradient
        recording always forces the tape (the fused path builds no
        graph).  See docs/backends.md.
        """
        return self._executor_mode

    @executor.setter
    def executor(self, mode: str) -> None:
        if mode not in VALID_EXECUTORS:
            raise ValueError(
                f"executor must be one of {VALID_EXECUTORS}, got {mode!r}"
            )
        self._executor_mode = mode

    def _fused_workspace(self) -> FusedWorkspace:
        """The model's lazily-built fused buffer pool + executor counters."""
        if self._fused_ws is None:
            self._fused_ws = FusedWorkspace()
        return self._fused_ws

    def executor_stats(self) -> Dict[str, int]:
        """Executor counters: calls per path, fallbacks, buffer reuse."""
        return self._fused_workspace().snapshot()

    # ------------------------------------------------------------------
    # To be provided by concrete models
    # ------------------------------------------------------------------
    def compute_embeddings(self) -> EmbeddingBundle:
        """One differentiable encoder pass over all entities."""
        raise NotImplementedError

    def score_items_from(
        self, emb: EmbeddingBundle, users, items, raw: bool = False, plan=None
    ) -> Tensor:
        """Task A scores ``s(i|u)`` for paired index arrays → ``(batch,)``.

        Default: the user-item inner product, the standard CF scoring the
        MF-style baselines use.  ``raw=True`` returns the logits (the
        training losses consume these); otherwise σ-probabilities.
        ``plan`` optionally carries the :class:`repro.plan.ScoringPlan`
        the index arrays came from, so store-backed bundles reuse its
        cached per-shard gather maps.
        """
        e_u = bundle_rows(emb.user, users, plan=plan, role="pair_users")
        e_i = bundle_rows(emb.item, items, plan=plan, role="pair_items")
        logits = (e_u * e_i).sum(axis=1)
        return logits if raw else F.sigmoid(logits)

    def score_participants_from(
        self, emb: EmbeddingBundle, users, items, participants, raw: bool = False, plan=None
    ) -> Tensor:
        """Task B scores ``s(p|u,i)`` → ``(batch,)``.

        Default: the paper's baseline tailoring — inner product between
        the participant's and initiator's embeddings (Sec. III-B; the
        item is ignored by models with no Task-B head).
        """
        del items
        e_u = bundle_rows(emb.user, users, plan=plan, role="pair_users")
        e_p = bundle_rows(emb.participant, participants, plan=plan, role="pair_participants")
        logits = (e_u * e_p).sum(axis=1)
        return logits if raw else F.sigmoid(logits)

    # ------------------------------------------------------------------
    # Cached public scoring (evaluation path)
    # ------------------------------------------------------------------
    def refresh_cache(self) -> None:
        """Recompute and store the encoder pass for repeated scoring.

        Call under ``no_grad`` (the evaluation protocol does); training
        code never uses the cache.

        The cache (like the fold caches inside the planned stack, see
        :meth:`repro.nn.layers.Linear.folded_blocks`) is unsynchronized
        model state: scoring and cache rebuilds must stay on one thread
        at a time.  The serving engine upholds this single-scorer
        invariant on its worker thread; ``ServingEngine.refresh()``
        routes weight-swap rebuilds through that same thread.
        """
        self._cached = self.compute_embeddings()

    def invalidate_cache(self) -> None:
        """Drop the cached encoder pass (after a parameter update)."""
        self._cached = None

    def _bundle(self) -> EmbeddingBundle:
        if self._cached is None:
            self._cached = self.compute_embeddings()
        return self._cached

    def score_items(self, users, items) -> Tensor:
        """Public Task-A scoring against the cached encoder pass."""
        return self.score_items_from(self._bundle(), users, items)

    def score_participants(self, users, items, participants) -> Tensor:
        """Public Task-B scoring against the cached encoder pass."""
        return self.score_participants_from(self._bundle(), users, items, participants)

    # ------------------------------------------------------------------
    # Planned (deduplicated) scoring — the evaluation/serving/training
    # hot path
    # ------------------------------------------------------------------
    @property
    def mean_participant_id(self) -> int:
        """Sentinel id meaning "the averaged participant slot" in plans.

        One past the last real user id, so it can never collide with an
        entity and — plan ids being sorted — always lands last in a
        plan's ``unique_participants``.  The trainer uses it to fold
        Task-A pair requests (scored with the mean participant, paper
        Sec. II-E) and auxiliary corruption triples (explicit
        participants) into one :class:`repro.plan.PlannedBatch`.
        """
        return self.n_users

    def prefers_planned(self, duplication_hint: float = 1.0) -> bool:
        """The ``dedup="auto"`` policy: is planning worth its overhead?

        Planning costs O(N log N) on request ids; it pays off when the
        per-row model cost saved (``scoring_cost_hint``, ≈1 for
        dot-product scorers, ≫1 for the factorized expert/gate stack)
        times the expected request duplication exceeds the plan build.
        The threshold is calibrated on BENCH_eval_throughput.json: GBMF's
        sub-millisecond 1:99 cells lose to planning
        (``dedup_speedup < 1``) while every MGBR cell wins.

        ``duplication_hint`` is the caller's estimate of *pair-level*
        duplication — how often the same full ``(u, i[, p])`` request
        repeats, the only redundancy a non-factorized model can exploit.
        Evaluation candidate lists and training batches are ≈1 there
        (distinct candidates per instance; entity-level repetition is
        already priced into the stack's ``scoring_cost_hint``), which is
        why the protocol and trainer call this with the default; a
        serving-style caller coalescing overlapping requests should pass
        its observed ratio.
        """
        return self.scoring_cost_hint * max(duplication_hint, 1.0) >= 8.0

    def resolve_dedup(self, dedup, duplication_hint: float = 1.0) -> bool:
        """Map a ``dedup`` knob (bool or ``"auto"``) to a decision."""
        if dedup == "auto":
            return self.prefers_planned(duplication_hint)
        return bool(dedup)

    def _score_item_plan(self, emb: EmbeddingBundle, plan: ScoringPlan) -> Tensor:
        """Score a plan's unique (u, i) requests → ``(P,)`` tensor.

        The default routes through the flat scorers, so every baseline
        inherits pair dedup for free; MGBR overrides this with the
        factorized expert/gate path.  Raw logits when the model uses the
        default public ``score_items`` (σ is monotone, and saturated
        probabilities would collapse distinct candidates into ties),
        the model's own score scale otherwise.

        This hook is also the trainer's differentiable planned path:
        called outside ``no_grad`` with the step's live ``emb``, the
        returned tensor back-propagates into the encoder (the ``emb``
        branch keeps gradients; the cached-``score_items`` branch exists
        only for externally-defined models, which the planned trainer
        does not route here).
        """
        if type(self).score_items is GroupBuyingRecommender.score_items:
            kwargs = (
                {"plan": plan}
                if type(self).score_items_from is GroupBuyingRecommender.score_items_from
                else {}
            )
            return self.score_items_from(emb, plan.users, plan.items, raw=True, **kwargs)
        return self.score_items(plan.users, plan.items)

    def _score_participant_plan(self, emb: EmbeddingBundle, plan: ScoringPlan) -> Tensor:
        """Score a plan's unique (u, i, p) requests → ``(P,)`` tensor."""
        if type(self).score_participants is GroupBuyingRecommender.score_participants:
            kwargs = (
                {"plan": plan}
                if type(self).score_participants_from
                is GroupBuyingRecommender.score_participants_from
                else {}
            )
            return self.score_participants_from(
                emb, plan.users, plan.items, plan.participants, raw=True, **kwargs
            )
        return self.score_participants(plan.users, plan.items, plan.participants)

    def _fused_score_plan(self, emb: EmbeddingBundle, plan: ScoringPlan, task: str):
        """Fused no-tape unique-request logits, or ``None`` to fall back.

        The base implementation mirrors the default dot-product scorers
        (``(e_u * e_i).sum(axis=1)`` / ``(e_u * e_p).sum(axis=1)``) with
        workspace-buffered backend calls — bit-identical at float64 —
        and covers every model that keeps the default scoring hooks
        (GBMF and the other MF-style baselines).  A model overriding any
        hook in the dispatch chain is excluded so the fused result can
        never diverge from what its tape path would compute; MGBR
        overrides this with the factorized stack mirror
        (:func:`repro.core.fused.fused_planned_scores`).

        Under a backend that chunks rows (``repro.nn.parallel``), the
        unique-pair range is partitioned into per-thread slabs: each
        slab scores its contiguous pair block through its own
        capacity-pooled child workspace and writes its slice of one
        shared output buffer.  Multiply is elementwise and the row sum
        reduces a non-leading axis, so any slab grid is bit-identical
        to the serial pass — see docs/backends.md.
        """
        base = GroupBuyingRecommender
        if task == "items":
            if not (
                type(self).score_items is base.score_items
                and type(self).score_items_from is base.score_items_from
                and type(self)._score_item_plan is base._score_item_plan
            ):
                return None
            e_u = bundle_rows(emb.user, plan.users, plan=plan, role="pair_users")
            e_v = bundle_rows(emb.item, plan.items, plan=plan, role="pair_items")
        else:
            if not (
                type(self).score_participants is base.score_participants
                and type(self).score_participants_from is base.score_participants_from
                and type(self)._score_participant_plan is base._score_participant_plan
            ):
                return None
            e_u = bundle_rows(emb.user, plan.users, plan=plan, role="pair_users")
            e_v = bundle_rows(
                emb.participant, plan.participants, plan=plan, role="pair_participants"
            )
        ws = self._fused_workspace()
        dt = get_default_dtype()
        ws.begin(dt)
        a, b = e_u.data, e_v.data
        if a.dtype == ws.dtype and b.dtype == ws.dtype:
            slabs = ws.row_partition(a.shape[0])
            if slabs is not None:
                return self._fused_score_slabs(ws, slabs, a, b)
        return ws.sum(ws.multiply(a, b), axis=1)

    @staticmethod
    def _fused_score_slabs(ws, slabs, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-parallel dot-product flush: per-thread slabs, one output.

        Slab ``i`` computes ``(a[s:e] * b[s:e]).sum(axis=1)`` in its own
        child workspace and writes ``out[s:e]`` — disjoint slices of the
        parent-owned buffer, so no synchronisation beyond the join.  The
        child's backend call runs serial inside the pool worker (nested
        chunking is disabled there), keeping each row's pairwise ``sum``
        within its slab — bitwise equal to the serial flush for every
        slab grid.
        """
        out = ws.out((a.shape[0],))
        children = [ws.slab(i) for i in range(len(slabs))]
        for child in children:
            child.begin(ws.dtype)

        def body(i, start, stop):
            child = children[i]
            prod = child.multiply(a[start:stop], b[start:stop])
            child.b.sum(prod, axis=1, out=out[start:stop])

        ws.run_slabs(slabs, body)
        return out

    def _run_plan(self, plan: ScoringPlan, task: str) -> np.ndarray:
        """Dispatch one plan to the resolved executor → ``(P,)`` float64.

        The fused result is copied out (``np.array``) because it lives
        in workspace buffers that the next flush recycles; the tape
        result goes through the same dtype normalisation as before.
        """
        emb = self._bundle()
        ws = self._fused_workspace()
        if resolve_executor(self._executor_mode, is_grad_enabled()) == "fused":
            scores = self._fused_score_plan(emb, plan, task)
            if scores is not None:
                ws.stats["fused_calls"] += 1
                return np.array(scores, dtype=np.float64).ravel()
            ws.stats["fallbacks"] += 1
        ws.stats["tape_calls"] += 1
        hook = self._score_item_plan if task == "items" else self._score_participant_plan
        return np.asarray(hook(emb, plan).data, dtype=np.float64).ravel()

    def score_item_plan(self, plan: ScoringPlan) -> np.ndarray:
        """Unique-request Task-A scores for ``plan`` → ``(P,)`` float64.

        Callers (the evaluation protocol's chunked runner, the serving
        front-end) scatter the result back to their request shape with
        :meth:`ScoringPlan.scatter`.  Runs on the fused no-tape executor
        when the :attr:`executor` knob resolves to it (bit-identical at
        float64); gradient recording or an unsupported configuration
        falls back to the tape hooks.
        """
        if plan.is_triple:
            raise ValueError("item scoring got a participant (triple) plan")
        return self._run_plan(plan, "items")

    def score_participant_plan(self, plan: ScoringPlan) -> np.ndarray:
        """Unique-request Task-B scores for ``plan`` → ``(P,)`` float64."""
        if not plan.is_triple:
            raise ValueError("participant scoring got an item (pair) plan")
        return self._run_plan(plan, "participants")

    def score_items_matrix(self, users, candidate_items, dedup="auto") -> np.ndarray:
        """Task-A *ranking* scores for per-instance candidate lists.

        Parameters
        ----------
        users: ``(n,)`` instance initiators.
        candidate_items: ``(n, m)`` candidate items — row ``k`` is the
            list scored for ``users[k]``.
        dedup: ``True`` plans the request first — repeated (u, i) pairs
            are scored once and scattered back; ``False`` scores every
            flat row (the pre-plan batched path, kept for benchmarking);
            ``"auto"`` (default) lets :meth:`prefers_planned` pick —
            planning for expensive stacks like MGBR, flat for near-free
            dot-product scorers where the plan build costs more than it
            saves.

        Returns
        -------
        np.ndarray
            ``(n, m)`` score matrix.  On the default path the values are
            raw logits rather than σ-probabilities: the sigmoid is
            monotonic so ranks are unchanged, but saturated
            probabilities (σ → exactly 1.0, common under float32
            inference on confident models) would collapse distinct
            candidates into ties.  Models overriding the public
            ``score_items`` keep their own score scale.
        """
        users = np.asarray(users, dtype=np.int64)
        cands = np.asarray(candidate_items, dtype=np.int64)
        if cands.ndim != 2 or len(users) != cands.shape[0]:
            raise ValueError(
                f"need (n,) users and (n, m) candidates, got {users.shape}/{cands.shape}"
            )
        if self.resolve_dedup(dedup):
            plan = ScoringPlan.for_items(users, cands)
            return plan.scatter(self.score_item_plan(plan))
        flat_users = np.repeat(users, cands.shape[1])
        if type(self).score_items is GroupBuyingRecommender.score_items:
            scores = self.score_items_from(
                self._bundle(), flat_users, cands.ravel(), raw=True
            )
        else:
            scores = self.score_items(flat_users, cands.ravel())
        return np.asarray(scores.data, dtype=np.float64).reshape(cands.shape)

    def score_participants_matrix(
        self, users, items, candidate_participants, dedup="auto"
    ) -> np.ndarray:
        """Task-B ranking scores for per-instance candidate lists.

        ``users``/``items`` are ``(n,)`` instance pairs and
        ``candidate_participants`` is ``(n, m)``; returns the ``(n, m)``
        score matrix.  Same dedup (``True``/``False``/``"auto"``) and
        raw-logit conventions as :meth:`score_items_matrix`.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        cands = np.asarray(candidate_participants, dtype=np.int64)
        if cands.ndim != 2 or not (len(users) == len(items) == cands.shape[0]):
            raise ValueError(
                "need (n,) users, (n,) items and (n, m) candidates, got "
                f"{users.shape}/{items.shape}/{cands.shape}"
            )
        if self.resolve_dedup(dedup):
            plan = ScoringPlan.for_participants(users, items, cands)
            return plan.scatter(self.score_participant_plan(plan))
        n_list = cands.shape[1]
        flat = (np.repeat(users, n_list), np.repeat(items, n_list), cands.ravel())
        if type(self).score_participants is GroupBuyingRecommender.score_participants:
            scores = self.score_participants_from(self._bundle(), *flat, raw=True)
        else:
            scores = self.score_participants(*flat)
        return np.asarray(scores.data, dtype=np.float64).reshape(cands.shape)

    # ------------------------------------------------------------------
    # Case-study hook (Fig. 6)
    # ------------------------------------------------------------------
    def entity_embeddings(self) -> Dict[str, np.ndarray]:
        """Detached role-keyed embedding matrices for analysis/plotting."""
        bundle = self._bundle()
        return {
            "initiator": np.array(as_matrix(bundle.user)),
            "item": np.array(as_matrix(bundle.item)),
            "participant": np.array(as_matrix(bundle.participant)),
        }

    # ------------------------------------------------------------------
    # Storage introspection (serving observability, shard checkpoints)
    # ------------------------------------------------------------------
    def embedding_stores(self) -> Dict[str, "EmbeddingStore"]:
        """``module_path -> store`` for every store-backed table in the tree."""
        return dict(iter_stores(self))
