"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The paper's reference implementation is PyTorch; this package provides
the equivalent primitives offline: reverse-mode autograd tensors, stable
activation/loss functionals, a Module system, standard layers, Adam/SGD
optimizers, sparse adjacency products for GCNs, and a finite-difference
gradient checker that the tests use to validate every adjoint.
"""

from repro.nn import functional
from repro.nn.backend import (
    BACKEND_ENV,
    ArrayBackend,
    CountingBackend,
    NumpyBackend,
    available_backends,
    backend_scope,
    bind_backend,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.nn.parallel import ParallelBackend
from repro.nn.gradcheck import gradcheck, numerical_gradient
from repro.nn.layers import MLP, Dropout, Embedding, Identity, Linear, Sequential
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.sparse import spmm, to_csr
from repro.nn.tensor import (
    Tensor,
    concat,
    dtype_scope,
    get_default_dtype,
    inference_mode,
    no_grad,
    is_grad_enabled,
    ones,
    scatter_cache_stats,
    clear_scatter_cache,
    scatter_rows_sum,
    set_default_dtype,
    stack,
    take_rows,
    tensor,
    zeros,
)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "concat",
    "stack",
    "take_rows",
    "scatter_rows_sum",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "inference_mode",
    "ArrayBackend",
    "NumpyBackend",
    "CountingBackend",
    "ParallelBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_scope",
    "resolve_backend",
    "bind_backend",
    "BACKEND_ENV",
    "scatter_cache_stats",
    "clear_scatter_cache",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "MLP",
    "Sequential",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "spmm",
    "to_csr",
    "functional",
    "gradcheck",
    "numerical_gradient",
]
