"""Unit tests for the graph substrate: adjacencies, views, GCN, HIN."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.schema import DealGroup
from repro.graph import (
    GCN,
    GCNLayer,
    build_hin_adjacency,
    build_views,
    degree_vector,
    edges_to_adjacency,
    normalized_adjacency,
)
from repro.nn import tensor


class TestEdgesToAdjacency:
    def test_symmetric_insertion(self):
        adj = edges_to_adjacency([(0, 1)], 3)
        assert adj[0, 1] == 1 and adj[1, 0] == 1

    def test_directed_mode(self):
        adj = edges_to_adjacency([(0, 1)], 3, symmetric=False)
        assert adj[0, 1] == 1 and adj[1, 0] == 0

    def test_duplicate_edges_binary(self):
        adj = edges_to_adjacency([(0, 1), (0, 1), (1, 0)], 2)
        assert adj[0, 1] == 1.0

    def test_weighted_edges_sum(self):
        adj = edges_to_adjacency([(0, 1), (0, 1)], 2, weights=[0.5, 0.25])
        assert adj[0, 1] == pytest.approx(0.75)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            edges_to_adjacency([(0, 5)], 3)

    def test_empty_edges(self):
        adj = edges_to_adjacency([], 4)
        assert adj.nnz == 0
        assert adj.shape == (4, 4)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            edges_to_adjacency([(0, 1)], 2, weights=[1.0, 2.0])

    def test_invalid_n_nodes(self):
        with pytest.raises(ValueError):
            edges_to_adjacency([], 0)


class TestNormalizedAdjacency:
    def test_row_sums_with_self_loops(self):
        # For a regular graph, D^{-1/2}(A+I)D^{-1/2} has rows summing to 1.
        ring = edges_to_adjacency([(0, 1), (1, 2), (2, 0)], 3)
        norm = normalized_adjacency(ring)
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), np.ones(3))

    def test_symmetric_output(self):
        adj = edges_to_adjacency([(0, 1), (1, 2)], 4)
        norm = normalized_adjacency(adj).toarray()
        np.testing.assert_allclose(norm, norm.T)

    def test_isolated_node_keeps_self_loop(self):
        adj = edges_to_adjacency([(0, 1)], 3)
        norm = normalized_adjacency(adj)
        assert norm[2, 2] == pytest.approx(1.0)

    def test_no_self_loops_zero_degree_row(self):
        adj = edges_to_adjacency([(0, 1)], 3)
        norm = normalized_adjacency(adj, add_self_loops=False)
        assert norm[2, 2] == 0.0
        assert np.all(np.isfinite(norm.toarray()))

    def test_spectral_radius_at_most_one(self):
        adj = edges_to_adjacency([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], 4)
        norm = normalized_adjacency(adj).toarray()
        eigvals = np.linalg.eigvalsh(norm)
        assert eigvals.max() <= 1.0 + 1e-9

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            normalized_adjacency(sp.csr_matrix((2, 3)))


class TestBuildViews:
    def test_view_shapes(self, handmade_groups):
        views = build_views(handmade_groups, n_users=4, n_items=3)
        assert views.a_ui.shape == (7, 7)
        assert views.a_pi.shape == (7, 7)
        assert views.a_up.shape == (4, 4)
        assert views.n_nodes_bipartite == 7

    def test_ui_edges_only_initiators(self, handmade_groups):
        views = build_views(handmade_groups, 4, 3)
        # User 1 never initiates: its only UI-graph mass is the self-loop.
        row = views.a_ui[1].toarray().ravel()
        assert row[1] > 0
        assert np.count_nonzero(row) == 1

    def test_pi_edges_only_participants(self, handmade_groups):
        views = build_views(handmade_groups, 4, 3)
        # User 3 only initiates; in PI space just the self-loop remains.
        row = views.a_pi[3].toarray().ravel()
        assert np.count_nonzero(row) == 1

    def test_up_connects_initiator_to_participants(self, handmade_groups):
        views = build_views(handmade_groups, 4, 3)
        assert views.a_up[0, 1] > 0
        assert views.a_up[0, 2] > 0

    def test_no_participant_participant_edges_by_default(self, handmade_groups):
        views = build_views(handmade_groups, 4, 3)
        # Users 1 and 2 co-participate in group 0 but must not connect.
        assert views.a_up[1, 2] == 0.0

    def test_participant_edges_variant(self, handmade_groups):
        views = build_views(handmade_groups, 4, 3, include_participant_edges=True)
        assert views.a_up[1, 2] > 0.0

    def test_item_node_mapping(self, handmade_groups):
        views = build_views(handmade_groups, 4, 3)
        assert views.item_node(0) == 4
        assert views.item_node(2) == 6


class TestGCN:
    def test_layer_shapes(self, rng):
        layer = GCNLayer(8, 8, seed=0)
        adj = normalized_adjacency(edges_to_adjacency([(0, 1), (1, 2)], 5))
        out = layer(adj, tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_sigmoid_activation_range(self, rng):
        layer = GCNLayer(4, 4, activation="sigmoid", seed=0)
        adj = normalized_adjacency(edges_to_adjacency([(0, 1)], 3))
        out = layer(adj, tensor(rng.normal(size=(3, 4))))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_stack_output_and_grads(self, rng):
        adj = normalized_adjacency(edges_to_adjacency([(0, 1), (1, 2), (2, 3)], 6))
        gcn = GCN(6, 4, n_layers=2, seed=0)
        out = gcn(adj)
        assert out.shape == (6, 4)
        out.sum().backward()
        assert all(p.grad is not None for p in gcn.parameters())

    def test_all_layer_outputs_length(self, rng):
        adj = normalized_adjacency(edges_to_adjacency([(0, 1)], 4))
        gcn = GCN(4, 3, n_layers=3, seed=0)
        outs = gcn.all_layer_outputs(adj)
        assert len(outs) == 4  # X0 .. X3

    def test_wrong_adjacency_size(self, rng):
        gcn = GCN(5, 3, seed=0)
        with pytest.raises(ValueError):
            gcn(sp.identity(4, format="csr"))

    def test_at_least_one_layer(self):
        with pytest.raises(ValueError):
            GCN(4, 3, n_layers=0)

    def test_isolated_node_embedding_depends_only_on_self(self):
        # Node 3 is isolated: changing node 0's features must not move it.
        adj = normalized_adjacency(edges_to_adjacency([(0, 1), (1, 2)], 4))
        gcn = GCN(4, 3, n_layers=2, seed=0)
        before = np.array(gcn(adj).data[3])
        gcn.features.weight.data[0] += 10.0
        after = np.array(gcn(adj).data[3])
        np.testing.assert_allclose(before, after)


class TestHIN:
    def test_contains_all_relations(self, handmade_groups):
        hin = build_hin_adjacency(handmade_groups, 4, 3)
        assert hin.shape == (7, 7)
        assert hin[0, 4] > 0  # u0 - item0 (launch)
        assert hin[1, 4] > 0  # u1 - item0 (join)
        assert hin[0, 1] > 0  # u0 - u1 (social)

    def test_symmetric(self, handmade_groups):
        hin = build_hin_adjacency(handmade_groups, 4, 3).toarray()
        np.testing.assert_allclose(hin, hin.T)

    def test_degree_vector(self):
        adj = edges_to_adjacency([(0, 1), (0, 2)], 3)
        np.testing.assert_allclose(degree_vector(adj), [2, 1, 1])
