"""``repro.analysis`` — model scale, timing and hyper-parameter sweeps.

Supports Table V (parameter counts and minutes/epoch) and Figs. 4/5
(auxiliary-loss-weight and gate-coefficient sweeps).
"""

from repro.analysis.multiseed import MultiSeedResult, SeedRun, run_multiseed
from repro.analysis.params import count_parameters, format_param_table, parameter_breakdown
from repro.analysis.sweeps import (
    SweepPoint,
    SweepResult,
    aux_weight_sweep,
    gate_coefficient_sweep,
    run_sweep,
)
from repro.analysis.timing import EpochTiming, time_training_epoch

__all__ = [
    "count_parameters",
    "parameter_breakdown",
    "format_param_table",
    "EpochTiming",
    "time_training_epoch",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "aux_weight_sweep",
    "gate_coefficient_sweep",
    "run_multiseed",
    "MultiSeedResult",
    "SeedRun",
]
