"""Quantised embedding memory tier: int8/fp16 rows, dequantise-on-gather.

The float serving path stores 4–8 bytes per embedding element, so RAM —
not compute — is what caps catalog size × hot-set size (the ROADMAP's
"quantised embedding memory tier" item).  A :class:`QuantizedStore`
wraps any :class:`repro.store.base.EmbeddingStore` and keeps a compact
*shadow* of the logical table:

* ``mode="int8"`` — per-row affine quantisation.  Each row ``v`` stores
  ``q = rint((v - zero) / scale)`` as int8 codes plus two float32 side
  scalars per row (``scale``/``zero``), 1 byte/element + 8 bytes/row —
  about **4×** more rows in the same RAM at dim ≥ 40.
* ``mode="fp16"`` — rows stored as IEEE half floats, 2 bytes/element —
  **2×** more rows, no side arrays.

Codec contract
--------------
``scale = float32((hi - lo) / 254)`` and ``zero = float32((hi + lo)/2)``
map a row's value range onto codes in ``[-127, 127]``; quantisation
computes codes against the *stored* float32 side values (widened to
float64), so dequantisation error is bounded by ``scale / 2`` per
element.  **Degenerate rows** — all-constant or all-zero rows (padding
rows, ``mean_participant_id`` sentinels), or rows whose spread
underflows float32 — would produce ``scale == 0``; the convention is
``scale = 1`` and ``zero = the row midpoint`` with all-zero codes, so
dequantisation is *exact* for constant rows.  Rows whose float64 range
does not fit float32 side scalars raise (quantise before the values
explode, not after).

Dequantisation casts the side scalars to the output dtype first and
then runs one elementwise multiply-add, so bulk gathers, per-row LRU
cache hits and worker-process arena fills all produce **bit-identical**
outputs for the same codes.

Tier semantics
--------------
* **Training bypasses the tier** exactly like the LRU bypass: under
  ``is_grad_enabled()`` every ``gather``/``all`` delegates to the
  full-precision inner store (the float *master*), so gradients and
  optimizer state never see quantised values.
* **Inference reads the shadow**: ``no_grad`` gathers slice the shadow
  and dequantise into a fresh compute-dtype block.  The shadow is
  *version-keyed* — lazily rebuilt from ``inner.logical_state()``
  whenever the sum of the inner parameters' ``version``s moves (an
  optimizer step, a checkpoint load, ``rebind_dtype``).
* **Writes re-quantise**: ``assign_rows`` writes the master, then
  refreshes exactly the written rows' codes and per-row scales (reading
  the rows back from the master so the shadow matches a full rebuild
  bit-for-bit) — ``ServingEngine.refresh()`` live swaps and N→M
  reshard streaming keep working.
* **Checkpoints stay canonical float**: ``logical_state`` /
  ``shard_rows`` come from the master, so a checkpoint written under a
  quantised layout restores under any other.

``LRUCachedStore`` stacks *on top* (cache quantised payloads via
:meth:`QuantizedStore.gather_quantized`); the process-sharded analogue
lives worker-side in :mod:`repro.store.service` (same codec, rows
quantised inside each worker).  See docs/quantization.md.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, get_default_dtype, is_grad_enabled, no_grad
from repro.store.base import EmbeddingStore

__all__ = [
    "QUANT_MODES",
    "QuantizedStore",
    "check_quant_mode",
    "dequantize_row",
    "dequantize_rows",
    "quant_bytes_per_row",
    "quantize_rows",
]

#: Supported shadow precisions (``None`` everywhere means "no tier").
QUANT_MODES = ("int8", "fp16")

# int8 codes span [-127, 127]: symmetric around the row midpoint, so
# zero_point sits at the exact centre and 254 steps cover the range.
_QSTEPS = 254.0
_QMAX = 127


def check_quant_mode(mode: Optional[str]) -> Optional[str]:
    """Validate a ``quantize=`` knob value (``None`` disables the tier)."""
    if mode is None:
        return None
    if mode not in QUANT_MODES:
        raise ValueError(
            f"quantize must be one of {QUANT_MODES} or None, got {mode!r}"
        )
    return mode


def quant_bytes_per_row(dim: int, mode: Optional[str], float_itemsize: int = 4) -> int:
    """Resident bytes per row for one mode (side arrays included)."""
    if mode == "int8":
        return dim + 8  # 1 byte/code + float32 scale + float32 zero
    if mode == "fp16":
        return 2 * dim
    return float_itemsize * dim


def quantize_rows(
    values: np.ndarray, mode: str
) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """Quantise a ``(rows, dim)`` float block → ``(codes, scale, zero)``.

    ``mode="fp16"`` returns ``(float16 rows, None, None)``.
    ``mode="int8"`` returns int8 codes plus float32 ``(rows,)`` side
    arrays, with the degenerate-row convention described in the module
    docstring.  Codes are computed against the *stored* (float32) side
    values widened to float64, so dequantisation error per element is
    bounded by ``scale / 2``.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"need a (rows, dim) block, got shape {values.shape}")
    if mode == "fp16":
        return values.astype(np.float16), None, None
    if mode != "int8":
        raise ValueError(f"quantize mode must be one of {QUANT_MODES}, got {mode!r}")
    wide = values.astype(np.float64, copy=False)
    lo = wide.min(axis=1) if values.shape[1] else np.zeros(len(values))
    hi = wide.max(axis=1) if values.shape[1] else np.zeros(len(values))
    with np.errstate(over="ignore"):  # out-of-range rows raise just below
        scale = ((hi - lo) / _QSTEPS).astype(np.float32)
        zero = ((hi + lo) / 2.0).astype(np.float32)
    if not (np.isfinite(scale).all() and np.isfinite(zero).all()):
        raise ValueError(
            "row range does not fit float32 quantisation side arrays "
            "(non-finite scale/zero) — quantise before values overflow"
        )
    # Degenerate rows (constant, or spread underflowing float32): scale=1
    # with zero at the row value makes dequantisation exact (codes are 0).
    scale = np.where(scale == 0.0, np.float32(1.0), scale)
    s64 = scale.astype(np.float64)[:, None]
    z64 = zero.astype(np.float64)[:, None]
    q = np.clip(np.rint((wide - z64) / s64), -_QMAX, _QMAX).astype(np.int8)
    return q, scale, zero


def dequantize_rows(
    q: np.ndarray,
    scale: Optional[np.ndarray],
    zero: Optional[np.ndarray],
    out: Optional[np.ndarray] = None,
    dtype=None,
) -> np.ndarray:
    """Dequantise a payload block into ``out`` (or a fresh ``dtype`` array).

    One elementwise multiply-add with the side scalars pre-cast to the
    output dtype — the single codec path every tier shares, so dense
    shadows, LRU hits and worker arena fills are bit-identical.
    """
    if out is None:
        if dtype is None:
            dtype = get_default_dtype()
        out = np.empty(q.shape, dtype=np.dtype(dtype))
    if scale is None:  # fp16: plain widening cast
        out[...] = q
        return out
    s = scale.astype(out.dtype, copy=False)
    z = zero.astype(out.dtype, copy=False)
    np.multiply(q, s[:, None], out=out)
    out += z[:, None]
    return out


def dequantize_row(q: np.ndarray, scale, zero, out: np.ndarray) -> np.ndarray:
    """One payload row into ``out`` ``(dim,)`` — bitwise the bulk path.

    ``out.dtype.type(scale)`` is elementwise-identical to
    ``scale_array.astype(out.dtype)[r]``, so an LRU cache hit filled row
    by row matches a bulk :func:`dequantize_rows` gather bit-for-bit.
    """
    if scale is None:
        out[...] = q
        return out
    np.multiply(q, out.dtype.type(scale), out=out)
    out += out.dtype.type(zero)
    return out


class QuantizedStore(EmbeddingStore):
    """Quantised shadow tier over a full-precision master store.

    Parameters
    ----------
    inner: the decorated store — the float *master*.  Grad-enabled reads,
        checkpoint state and parameter registration all come from it.
    mode: ``"int8"`` (per-row affine codes + scale/zero side arrays) or
        ``"fp16"`` (half-float rows).
    """

    def __init__(self, inner: EmbeddingStore, mode: str = "int8") -> None:
        super().__init__()
        if isinstance(inner, QuantizedStore):
            raise ValueError("refusing to stack quantised tiers — one mode per table")
        if type(inner).__name__ == "LRUCachedStore":
            raise ValueError(
                "stack the LRU cache on top of QuantizedStore "
                "(LRUCachedStore(QuantizedStore(store), ...)), not beneath it"
            )
        if check_quant_mode(mode) is None:
            raise ValueError(f"QuantizedStore needs a mode from {QUANT_MODES}, got None")
        self.inner = inner
        self.mode = mode
        self.num_rows, self.dim = inner.num_rows, inner.dim
        # Separate from self._lock: the shadow sync path runs while the
        # stats lock is taken by concurrent snapshot readers.
        self._qlock = threading.Lock()
        self._q: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._zero: Optional[np.ndarray] = None
        self._qepoch: Optional[int] = None
        with self._qlock:
            self._sync_locked()  # eager: resident_bytes is correct from birth

    # ------------------------------------------------------------------
    # Layout / parameter delegation (the master owns all trainable state)
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.inner.n_shards

    @property
    def partition(self) -> str:
        return self.inner.partition

    def shard_size_of(self, shard: int) -> int:
        return self.inner.shard_size_of(shard)

    def resident_rows(self) -> List[int]:
        return self.inner.resident_rows()

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        return self.inner.named_parameters()

    # ------------------------------------------------------------------
    # Shadow maintenance
    # ------------------------------------------------------------------
    def _inner_epoch(self) -> int:
        return sum(p.version for _, p in self.inner.named_parameters())

    def _sync_locked(self) -> None:
        """Rebuild the shadow iff the master moved (callers hold _qlock)."""
        epoch = self._inner_epoch()
        if epoch == self._qepoch and self._q is not None:
            return
        self._q, self._scale, self._zero = quantize_rows(
            self.inner.logical_state(), self.mode
        )
        self._qepoch = epoch

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def gather(self, ids, plan=None, role: Optional[str] = None) -> Tensor:
        if is_grad_enabled():
            # Training reads the float master — gradients, touched-row
            # records and optimizer state never see quantised values.
            return self.inner.gather(ids, plan=plan, role=role)
        idx = np.asarray(ids, dtype=np.int64).ravel()
        with self._qlock:
            self._sync_locked()
            q = self._q[idx]
            scale = None if self._scale is None else self._scale[idx]
            zero = None if self._zero is None else self._zero[idx]
        self._record_gather(idx.size, 1 if idx.size else 0, idx.size)
        return Tensor(dequantize_rows(q, scale, zero, dtype=get_default_dtype()))

    def gather_quantized(
        self, ids
    ) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Raw payload rows for ``ids`` — the LRU cache tier's fetch path.

        Returns fresh (fancy-indexed) arrays, safe for the caller to keep.
        """
        idx = np.asarray(ids, dtype=np.int64).ravel()
        with self._qlock:
            self._sync_locked()
            q = self._q[idx]
            scale = None if self._scale is None else self._scale[idx]
            zero = None if self._zero is None else self._zero[idx]
        return q, scale, zero

    def all(self) -> Tensor:
        if is_grad_enabled():
            return self.inner.all()
        with self._qlock:
            self._sync_locked()
            out = dequantize_rows(
                self._q, self._scale, self._zero, dtype=get_default_dtype()
            )
        return Tensor(out)

    # ------------------------------------------------------------------
    # State (canonical float — always the master's)
    # ------------------------------------------------------------------
    def logical_state(self) -> np.ndarray:
        return self.inner.logical_state()

    def load_logical(self, values: np.ndarray, dtype=None) -> None:
        self.inner.load_logical(values, dtype)
        with self._qlock:
            self._qepoch = None  # next read rebuilds the whole shadow

    def assign_rows(self, ids, values) -> None:
        """Write the master, then re-quantise exactly the written rows.

        The shadow rows are rebuilt from the master's *stored* values
        (read back after the write), so an incremental refresh is
        bit-identical to a full shadow rebuild — per-row scale refresh
        included.  If the shadow was already stale, the write just keeps
        it stale (the next read resyncs in full).
        """
        idx = np.asarray(ids, dtype=np.int64).ravel()
        with self._qlock:
            pre = self._inner_epoch()
            self.inner.assign_rows(idx, values)
            if self._qepoch != pre or self._q is None:
                self._qepoch = None
                return
            with no_grad():
                stored = self.inner.gather(idx).data
            q, scale, zero = quantize_rows(stored, self.mode)
            self._q[idx] = q
            if scale is not None:
                self._scale[idx] = scale
                self._zero[idx] = zero
            self._qepoch = self._inner_epoch()

    def rebind_dtype(self, dtype) -> None:
        self.inner.rebind_dtype(dtype)
        with self._qlock:
            self._qepoch = None

    def shard_rows(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.shard_rows(shard)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def resident_nbytes(self) -> Optional[int]:
        """Bytes held by the quantised tier itself (codes + side arrays).

        The master's float bytes are reported by the nested ``inner``
        snapshot — the tier's own footprint is what an inference-only
        deployment (e.g. the process-sharded workers, where *only* the
        quantised rows exist) actually pays per row.
        """
        with self._qlock:
            if self._q is None:
                return self.num_rows * quant_bytes_per_row(self.dim, self.mode)
            total = self._q.nbytes
            if self._scale is not None:
                total += self._scale.nbytes + self._zero.nbytes
            return total

    def stats_snapshot(self) -> dict:
        out = super().stats_snapshot()
        out["quant_mode"] = self.mode
        out["quant_bytes_per_row"] = quant_bytes_per_row(self.dim, self.mode)
        out["inner"] = self.inner.stats_snapshot()
        return out
