"""Table I — statistics of the preprocessed experiment dataset.

Regenerates the paper's dataset-statistics table (user / item / deal
group counts) for the synthetic substitute, plus the extended statistics
that characterise it (group sizes, role overlap, view densities), and
prints the Table II hyper-parameter settings the other experiments use.
"""

from conftest import mgbr_bench_config, write_result

from repro.data import compute_statistics, format_table1


def test_table1_dataset_statistics(benchmark, bench_dataset):
    """Generate + preprocess the dataset and report Table I."""

    def run():
        return compute_statistics(bench_dataset)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [format_table1(stats), "", "Extended statistics:"]
    for key, value in stats.as_dict().items():
        lines.append(f"  {key:>22}: {value}")

    config = mgbr_bench_config()
    lines += [
        "",
        "TABLE II — HYPER-PARAMETER SETTINGS (scaled profile in parentheses)",
        f"  d      128 ({config.d})      embedding dimension",
        f"  H        2 ({config.gcn_layers})       GCN layers",
        f"  K        6 ({config.n_experts})       experts per layer",
        f"  L        2 ({config.mtl_layers})       expert/gate layers",
        f"  |T|     99 ({config.aux_negatives})       aux negative sampling size",
        f"  alpha  0.1 ({config.alpha_a})     adjusted-gate coefficient",
        f"  beta     1 ({config.beta})     L_B weight",
        f"  beta_A 0.3 ({config.beta_a})     L'_A weight",
        f"  beta_B 0.3 ({config.beta_b})     L'_B weight",
        f"  rho  2e-4 ({config.learning_rate})   learning rate",
        f"  |B|     64 ({config.batch_size})      batch size",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("table1_dataset.txt", text)

    # Shape assertions: the filter leaves a real dataset behind.
    assert stats.n_users > 0 and stats.n_items > 0 and stats.n_groups > 0
    assert stats.n_task_b_triples >= stats.n_groups  # ≥1 participant per group
    assert stats.n_dual_role_users > 0  # users appear in both roles
