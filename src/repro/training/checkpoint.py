"""Model checkpointing to ``.npz``.

Checkpoints hold the flat parameter state-dict plus a small JSON header
(model class name, step counter), enough to restore a model built with
the same constructor arguments — matching how the sweep benchmarks
retrain-and-restore best epochs.

Dtype policy
------------
Training state is float64 (the substrate pins :class:`repro.nn.module
.Parameter` to double precision), but serving wants float32 end-to-end:
``save_checkpoint(..., dtype="float32")`` exports a half-size archive,
and ``restore_model(..., dtype="float32")`` rebinds the model's
parameter buffers to float32 so a serving process (e.g. one feeding a
:class:`repro.serving.RequestBatcher`) never materialises double
precision weights at all.  The stored dtype is recorded in the metadata
header; loading with no explicit ``dtype`` keeps the model's own
parameter dtype (values are cast on assignment), so training round-trips
are unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "restore_model"]

PathLike = Union[str, Path]

_META_KEY = "__checkpoint_meta__"


def _coerce_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"checkpoint dtype must be float32|float64, got {dtype!r}")
    return resolved


def save_checkpoint(
    model: Module,
    path: PathLike,
    extra: Optional[Dict] = None,
    dtype: Optional[str] = None,
) -> Path:
    """Write ``model``'s parameters (and optional metadata) to ``path``.

    ``dtype`` optionally casts every array on export (``"float32"``
    halves the archive and lets serving load reduced precision
    directly); ``None`` stores parameters as they are.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = dict(model.state_dict())
    if dtype is not None:
        resolved = _coerce_dtype(dtype)
        payload = {k: np.asarray(v, dtype=resolved) for k, v in payload.items()}
    stored = str(next(iter(payload.values())).dtype) if payload else "float64"
    meta = {"model_class": type(model).__name__, "dtype": stored, "extra": extra or {}}
    payload[_META_KEY] = np.bytes_(json.dumps(meta).encode())
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path: PathLike) -> Dict:
    """Read a checkpoint into ``{"state": {...}, "meta": {...}}``.

    Arrays come back in their stored dtype; ``meta["dtype"]`` names it
    (older checkpoints without the field were float64).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode())
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    meta.setdefault("dtype", "float64")
    return {"state": state, "meta": meta}


def restore_model(
    model: Module,
    path: PathLike,
    strict: bool = True,
    dtype: Optional[str] = None,
) -> Dict:
    """Load a checkpoint's parameters into ``model``; returns the metadata.

    ``dtype=None`` (default) assigns values into the model's existing
    parameter buffers — training keeps its float64 state regardless of
    how the archive was stored.  An explicit ``dtype`` *rebinds* the
    parameter buffers to that precision (the float32 serving path); such
    a model should only be used under ``no_grad``/serving scopes, not
    trained or gradchecked.

    Raises ``ValueError`` when the checkpoint came from a different model
    class (unless ``strict=False``).
    """
    payload = load_checkpoint(path)
    if strict and payload["meta"]["model_class"] != type(model).__name__:
        raise ValueError(
            f"checkpoint is for {payload['meta']['model_class']}, "
            f"refusing to load into {type(model).__name__}"
        )
    resolved = None if dtype is None else _coerce_dtype(dtype)
    model.load_state_dict(payload["state"], strict=strict, dtype=resolved)
    if hasattr(model, "invalidate_cache"):
        model.invalidate_cache()
    return payload["meta"]
