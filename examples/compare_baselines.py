#!/usr/bin/env python3
"""Compare MGBR against all six baselines on both sub-tasks.

A scaled-down live version of the paper's Table III: every model trains
with the same budget on the same synthetic dataset and is evaluated on
identical candidate lists.  Expected shape (paper Sec. III-E): MGBR wins
both tasks, with a much larger margin on Task B, because no baseline has
an item-aware participant-scoring head.

Run:  python examples/compare_baselines.py  [--epochs 20]
"""

import argparse
import time

from repro.baselines import EATNN, GBGCN, GBMF, NGCF, DeepMF, DiffNet
from repro.core import MGBR, MGBRConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.eval import evaluate_model
from repro.training import TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--dim", type=int, default=16)
    args = parser.parse_args()

    dataset = generate_dataset(
        SyntheticConfig(n_users=250, n_items=80, n_groups=1000), seed=7
    )
    print(f"dataset: {dataset.n_users} users / {dataset.n_items} items / "
          f"{dataset.n_groups} deal groups\n")

    mgbr_config = MGBRConfig.small(
        d=args.dim, learning_rate=5e-3, gcn_gain=10.0, aux_a_mode="listnet", seed=0
    )
    models = {
        "DeepMF": DeepMF(dataset.n_users, dataset.n_items, dim=args.dim, seed=1),
        "NGCF": NGCF(dataset.train, dataset.n_users, dataset.n_items, dim=args.dim, seed=1),
        "DiffNet": DiffNet(dataset.train, dataset.n_users, dataset.n_items, dim=args.dim, seed=1),
        "EATNN": EATNN(dataset.n_users, dataset.n_items, dim=args.dim, seed=1),
        "GBGCN": GBGCN(dataset.train, dataset.n_users, dataset.n_items, dim=args.dim, seed=1),
        "GBMF": GBMF(dataset.n_users, dataset.n_items, dim=args.dim, seed=1),
        "MGBR": MGBR(dataset.train, dataset.n_users, dataset.n_items, config=mgbr_config),
    }

    baseline_tc = TrainConfig(
        epochs=args.epochs, batch_size=32, learning_rate=5e-3, train_negatives=9,
        eval_every=5, restore_best=True, eval_max_instances=100, seed=0,
    )
    mgbr_tc = TrainConfig.from_mgbr(
        mgbr_config, epochs=args.epochs,
        eval_every=5, restore_best=True, eval_max_instances=100,
    )

    header = f"{'Model':10s} {'A MRR@10':>9s} {'A NDCG@10':>10s} {'B MRR@10':>9s} {'B NDCG@10':>10s} {'time':>7s}"
    print(header)
    print("-" * len(header))
    for name, model in models.items():
        started = time.perf_counter()
        Trainer(model, dataset, mgbr_tc if name == "MGBR" else baseline_tc).fit()
        result = evaluate_model(model, dataset, protocols=((9, 10),), max_instances=300)["@10"]
        elapsed = time.perf_counter() - started
        print(f"{name:10s} {result.task_a['MRR@10']:9.4f} {result.task_a['NDCG@10']:10.4f} "
              f"{result.task_b['MRR@10']:9.4f} {result.task_b['NDCG@10']:10.4f} {elapsed:6.1f}s")


if __name__ == "__main__":
    main()
