"""Cross-process shard service (:class:`repro.store.ProcessShardedStore`).

Covers the PR's acceptance criteria end to end:

* **Bit parity at float64** — dense vs in-process shards vs worker
  processes for GBMF and MGBR: eval metrics, planned epoch losses and
  post-Adam weights are identical, because gathers move exact rows and
  every worker-side update mirrors the in-process math op for op.
* **Zero-copy adoption** — the planned ``no_grad`` gather hands the
  fused executor a view of the shared result arena (CountingBackend
  audit: no redundant copy between the shm buffer and the workspace).
* **Fault isolation** — a dead worker resolves only the affected
  task's tickets with :class:`repro.serving.errors.ShardUnavailable`;
  co-batched tasks keep scoring (the PR-6 contract).
* **Streaming checkpoints** — ``shard_files=True`` + ``assign_rows``
  reshard N→M without materialising the logical table.
* **Lifecycle hygiene** — workers and shared-memory segments are
  reaped by ``close()``/GC; nothing leaks across tests.
"""

from __future__ import annotations

import gc
import json
import multiprocessing
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.eval.protocol import EvalProtocol
from repro.nn import CountingBackend, backend_scope
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import no_grad
from repro.plan import ScoringPlan
from repro.serving import RequestBatcher, ServingEngine, ShardUnavailable
from repro.store import (
    DenseStore,
    ProcessShardedStore,
    ShardedStore,
    iter_stores,
    make_store,
)
from repro.training import TrainConfig, Trainer
from repro.training.checkpoint import load_checkpoint, restore_model, save_checkpoint


def _table(rows=67, dim=6, seed=5) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, dim))


def _gbmf(tiny_dataset, n_shards=0, service=False):
    return GBMF(
        tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=4,
        n_shards=n_shards, service=service,
    )


def _mgbr(tiny_dataset, n_shards=0, service=False):
    config = MGBRConfig.small(
        d=8, n_experts=2, mtl_layers=2, aux_negatives=4, train_negatives=3, seed=3,
        embedding_shards=n_shards, embedding_service=service,
    )
    return MGBR(
        tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items, config=config
    )


def _close_stores(model) -> None:
    for _, store in iter_stores(model):
        if isinstance(store, ProcessShardedStore):
            store.close()


# ---------------------------------------------------------------------------
# Store-level parity and contract
# ---------------------------------------------------------------------------
class TestProcessStoreContract:
    @pytest.mark.parametrize("partition", ["range", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3])
    def test_gather_bitwise_equal_dense(self, partition, n_shards):
        values = _table()
        dense = DenseStore(values.copy())
        with ProcessShardedStore(values.copy(), n_shards, partition) as store:
            for ids in (
                np.array([5, 17, 60, 66, 2, 2, 44], dtype=np.int64),  # unsorted+dups
                np.sort(np.random.default_rng(0).permutation(67)[:32]),  # planned
                np.array([], dtype=np.int64),
            ):
                with no_grad():
                    np.testing.assert_array_equal(
                        store.gather(ids).data, dense.gather(ids).data
                    )

    def test_logical_apis_bitwise_equal(self):
        values = _table()
        with ProcessShardedStore(values.copy(), 3, io_chunk=16) as store:
            np.testing.assert_array_equal(store.logical_state(), values)
            with no_grad():
                np.testing.assert_array_equal(store.all().data, values)
            for k in range(3):
                ids, rows = store.shard_rows(k)
                np.testing.assert_array_equal(rows, values[ids])

    def test_plan_cached_gather_and_mismatch_error(self):
        values = _table()
        with ProcessShardedStore(values.copy(), 2) as store:
            users = np.array([0, 3, 3, 9], dtype=np.int64)
            items = np.array([1, 2, 3, 4], dtype=np.int64)
            plan = ScoringPlan.from_item_pairs(users, items)
            with no_grad():
                out = store.gather(plan.unique_users, plan=plan, role="users")
            np.testing.assert_array_equal(out.data, values[plan.unique_users])
            with pytest.raises(ValueError, match="do not match the plan"):
                store.gather(np.array([0], dtype=np.int64), plan=plan, role="users")

    def test_make_store_service_layouts(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)  # default layouts
        values = _table()
        store = make_store(values, 0, service=True)
        assert isinstance(store, ProcessShardedStore) and store.n_shards == 1
        store.close()
        store = make_store(values, 3, service=True)
        assert isinstance(store, ProcessShardedStore) and store.n_shards == 3
        store.close()
        assert isinstance(make_store(values, 3), ShardedStore)

    def test_training_step_parity_adam_clip(self):
        """3 gather→backward→clip→Adam rounds: weights stay bit-equal."""
        values = _table()
        ids = np.array([5, 17, 60, 66, 2, 2, 44], dtype=np.int64)

        def run(store):
            params = [p for _, p in store.named_parameters()]
            opt = Adam(params, lr=1e-2)
            norms = []
            for _ in range(3):
                opt.zero_grad()
                out = store.gather(ids)
                (out * out).sum().backward()
                norms.append(clip_grad_norm(params, 1.0))
                opt.step()
            return norms, store.logical_state()

        dense_norms, dense_state = run(DenseStore(values.copy()))
        with ProcessShardedStore(values.copy(), 3) as store:
            svc_norms, svc_state = run(store)
        assert dense_norms == svc_norms
        np.testing.assert_array_equal(dense_state, svc_state)

    def test_full_table_grad_parity_sgd(self):
        """``all()`` backward: worker-held grads apply like dense SGD."""
        values = _table()

        def run(store):
            params = [p for _, p in store.named_parameters()]
            opt = SGD(params, lr=0.1, momentum=0.9)
            for _ in range(2):
                opt.zero_grad()
                out = store.all()
                (out * out).sum().backward()
                opt.step()
            return store.logical_state()

        dense_state = run(DenseStore(values.copy()))
        with ProcessShardedStore(values.copy(), 3, "hash") as store:
            svc_state = run(store)
        np.testing.assert_array_equal(dense_state, svc_state)

    def test_lazy_adam_matches_in_process_shards(self):
        """Worker-side lazy rows mirror the in-process touched-row record."""
        values = _table()
        chunks = [
            np.array([1, 5, 40], dtype=np.int64),
            np.array([5, 66], dtype=np.int64),
            np.array([0, 33, 61], dtype=np.int64),
        ]

        def run(store):
            params = [p for _, p in store.named_parameters()]
            opt = Adam(params, lr=1e-2, lazy_rows=True)
            for ids in chunks:
                opt.zero_grad()
                out = store.gather(ids)
                (out * out).sum().backward()
                opt.step()
            return store.logical_state()

        inproc = run(ShardedStore(values.copy(), 3))
        with ProcessShardedStore(values.copy(), 3) as store:
            svc = run(store)
        np.testing.assert_array_equal(inproc, svc)

    def test_rebind_dtype(self):
        """Worker buffers shrink to float32; reads round-trip the cast
        rows exactly (gather output dtype follows the global default,
        same as the in-process layouts)."""
        values = _table()
        with ProcessShardedStore(values.copy(), 2) as store:
            store.rebind_dtype(np.float32)
            expected = values.astype(np.float32)
            assert store.logical_state().dtype == np.float32
            np.testing.assert_array_equal(store.logical_state(), expected)
            with no_grad():
                out = store.gather(np.array([3], dtype=np.int64))
            np.testing.assert_array_equal(
                out.data, expected[[3]].astype(np.float64)
            )


# ---------------------------------------------------------------------------
# Stats aggregation
# ---------------------------------------------------------------------------
class TestStats:
    def test_worker_counters_aggregate(self):
        values = _table()
        with ProcessShardedStore(values.copy(), 3) as store:
            with no_grad():
                for _ in range(4):
                    store.gather(np.sort(np.random.default_rng(1).permutation(67)[:20]))
            snap = store.stats_snapshot()
            assert snap["layout"] == "process"
            assert snap["rows_gathered"] == 4 * 20
            # Every gathered row was served by exactly one worker.
            assert snap["worker_rows_served"] == snap["rows_gathered"]
            assert len(snap["workers"]) == 3
            assert sum(w["gathers"] for w in snap["workers"]) >= 3
            for w in snap["workers"]:
                assert w["alive"] and w["errors"] == 0
                assert w["peak_resident_rows"] == (
                    w["resident_rows"] + w["max_rpc_rows"]
                )
            json.dumps(snap)  # the serving stats endpoints re-serialize this

    def test_shard_stats_through_batcher(self, tiny_dataset):
        model = _gbmf(tiny_dataset, n_shards=2, service=True)
        try:
            batcher = RequestBatcher(model)
            batcher.score_items(1, [0, 1, 2, 3])
            stats = batcher.shard_stats()
            assert set(stats) == {
                "initiator_table", "participant_table", "item_table",
            }
            for entry in stats.values():
                assert entry["n_shards"] == 2
                assert entry["layout"] == "process"
            assert stats["item_table"]["worker_rows_served"] >= 4
            json.dumps(stats)
        finally:
            _close_stores(model)


# ---------------------------------------------------------------------------
# Model-level layout parity (the acceptance criterion)
# ---------------------------------------------------------------------------
class TestModelParity:
    def test_gbmf_eval_metrics_bit_identical(self, tiny_dataset, monkeypatch):
        # Bit-parity against an in-process float reference; the env
        # lane would quantise only the reference (service is exempt).
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)
        protocol = EvalProtocol(tiny_dataset, n_negatives=5, cutoff=5, max_instances=40)
        dense = protocol.run(_gbmf(tiny_dataset)).flat()
        service_model = _gbmf(tiny_dataset, 3, service=True)
        try:
            service = protocol.run(service_model).flat()
        finally:
            _close_stores(service_model)
        assert dense == service

    def test_mgbr_eval_metrics_bit_identical(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, n_negatives=5, cutoff=5, max_instances=30)
        dense = protocol.run(_mgbr(tiny_dataset)).flat()
        service_model = _mgbr(tiny_dataset, 2, service=True)
        try:
            service = protocol.run(service_model).flat()
        finally:
            _close_stores(service_model)
        assert dense == service

    @pytest.mark.parametrize("build", [_gbmf, _mgbr], ids=["gbmf", "mgbr"])
    def test_planned_training_bit_identical(self, tiny_dataset, build):
        """Two planned epochs: losses AND post-Adam weights match dense
        and the in-process sharded layout bit for bit."""

        def run(n_shards, service):
            model = build(tiny_dataset, n_shards, service=service)
            try:
                trainer = Trainer(
                    model, tiny_dataset,
                    TrainConfig(
                        epochs=2, batch_size=16, train_negatives=3, aux_negatives=4,
                        learning_rate=5e-3, seed=0,
                    ),
                )
                losses = [trainer.train_epoch().losses for _ in range(2)]
                return losses, model.state_dict()
            finally:
                _close_stores(model)

        dense_losses, dense_state = run(0, False)
        inproc_losses, inproc_state = run(3, False)
        svc_losses, svc_state = run(3, True)
        assert dense_losses == inproc_losses == svc_losses
        assert set(dense_state) == set(svc_state)
        for key in dense_state:
            np.testing.assert_array_equal(dense_state[key], inproc_state[key])
            np.testing.assert_array_equal(dense_state[key], svc_state[key])


# ---------------------------------------------------------------------------
# Zero-copy adoption of the shared gather buffer
# ---------------------------------------------------------------------------
class TestCopyAudit:
    def test_planned_gather_adopts_arena_view(self):
        """``no_grad`` gathers return a view of the shm result arena —
        no copy sits between the workers' writes and the fused
        executor's reads."""
        values = _table()
        with ProcessShardedStore(values.copy(), 3) as store:
            ids = np.sort(np.random.default_rng(2).permutation(67)[:24])
            counting = CountingBackend()
            with backend_scope(counting), no_grad():
                out = store.gather(ids)
            assert counting.copies == 0
            assert np.shares_memory(out.data, store._res_np)
            np.testing.assert_array_equal(out.data, values[ids])

    def test_planned_hot_path_copy_free_through_model(self, tiny_dataset):
        """GBMF's fused planned scoring over service tables: the only
        copies are the ones the dense layout also makes (none on the
        float64 gather path)."""
        model = _gbmf(tiny_dataset, n_shards=2, service=True)
        try:
            users = np.array([0, 3, 5], dtype=np.int64)
            items = np.array([1, 2, 4], dtype=np.int64)
            plan = ScoringPlan.from_item_pairs(users, items)
            counting = CountingBackend()
            with backend_scope(counting), no_grad():
                store = model.initiator_table.store
                before = counting.copies
                store.gather(plan.unique_users, plan=plan, role="users")
                assert counting.copies == before
        finally:
            _close_stores(model)

    def test_recycling_keeps_recent_results_valid(self):
        """The arena never recycles rows under a live recent gather —
        multi-role planned calls (e_u, e_i, e_p) read concurrently."""
        values = _table()
        with ProcessShardedStore(values.copy(), 2) as store:
            with no_grad():
                outs, refs = [], []
                for start in range(0, 60, 10):
                    ids = np.arange(start, start + 10, dtype=np.int64)
                    outs.append(store.gather(ids).data)
                    refs.append(values[ids])
                for out, ref in zip(outs, refs):
                    np.testing.assert_array_equal(out, ref)


# ---------------------------------------------------------------------------
# Serving fault isolation
# ---------------------------------------------------------------------------
class TestFaultIsolation:
    def test_store_raises_shard_unavailable(self):
        values = _table()
        with ProcessShardedStore(values.copy(), 2, rpc_timeout=5.0) as store:
            store._procs[0].kill()
            store._procs[0].join()
            with pytest.raises(ShardUnavailable) as info:
                with no_grad():
                    store.gather(np.array([0, 40], dtype=np.int64))
            assert info.value.shard == 0
            assert info.value.elapsed_ms >= 0.0
            # Rows owned by the surviving worker keep serving.
            with no_grad():
                out = store.gather(np.array([40, 50], dtype=np.int64))
            np.testing.assert_array_equal(out.data, values[[40, 50]])

    def test_engine_contains_dead_worker_to_one_task(self, tiny_dataset):
        """Task A (items) hits the dead item-table worker and resolves
        with ShardUnavailable; co-batched task B (participants) never
        touches that table and still scores."""
        model = _gbmf(tiny_dataset, n_shards=2, service=True)
        try:
            item_store = model.item_table.store
            item_store._procs[0].kill()
            item_store._procs[0].join()
            engine = ServingEngine(
                model, max_delay_ms=60_000.0, max_pending=10**6
            ).start()
            try:
                t_a = engine.submit_items(0, [0, 1, 2])
                t_b = engine.submit_participants(0, 1, [2, 3])
                engine.drain()
                with pytest.raises(ShardUnavailable):
                    t_a.wait(timeout=10.0)
                assert t_b.wait(timeout=10.0).shape == (2,)
                # The engine is still serving: new task-B traffic flows.
                t_b2 = engine.submit_participants(2, 1, [4, 5])
                engine.drain()
                assert t_b2.wait(timeout=10.0).shape == (2,)
            finally:
                engine.stop()
        finally:
            _close_stores(model)


# ---------------------------------------------------------------------------
# Streaming checkpoints and N→M reshard
# ---------------------------------------------------------------------------
class TestServiceCheckpoints:
    def _scores(self, model, users, items):
        with no_grad():
            model.refresh_cache()
            out = np.asarray(model.score_items(users, items).data).copy()
        model.invalidate_cache()
        return out

    @pytest.mark.parametrize("dst_workers", [1, 2, 5])
    def test_per_shard_files_reshard(self, tiny_dataset, tmp_path, dst_workers):
        """Save from 3 workers, restore into M — scores bit-identical,
        logical table never materialised by the save."""
        src = _gbmf(tiny_dataset, n_shards=3, service=True)
        dst = _gbmf(tiny_dataset, n_shards=dst_workers, service=True)
        try:
            path = save_checkpoint(src, tmp_path / "svc.npz", shard_files=True)
            payload = load_checkpoint(path, assemble_shards=False)
            assert "initiator_table.weight" not in payload["state"]
            assert payload["meta"]["shards"]["item_table.weight"]["n_shards"] == 3
            dst.item_table.store.load_logical(
                dst.item_table.store.logical_state() + 1.0
            )
            restore_model(dst, path)
            users = np.arange(12)
            items = np.arange(12) % tiny_dataset.n_items
            np.testing.assert_array_equal(
                self._scores(src, users, items), self._scores(dst, users, items)
            )
        finally:
            _close_stores(src)
            _close_stores(dst)

    def test_cross_layout_restore(self, tiny_dataset, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)  # float bit-parity
        """Service checkpoints restore into in-process layouts and back."""
        src = _gbmf(tiny_dataset, n_shards=2, service=True)
        dst = _gbmf(tiny_dataset, n_shards=4)  # in-process target
        try:
            path = save_checkpoint(src, tmp_path / "x.npz", shard_files=True)
            restore_model(dst, path)
            users = np.arange(10)
            items = np.arange(10) % tiny_dataset.n_items
            np.testing.assert_array_equal(
                self._scores(src, users, items), self._scores(dst, users, items)
            )
        finally:
            _close_stores(src)

    def test_save_streams_without_materialising(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        src = _gbmf(tiny_dataset, n_shards=2, service=True)
        try:
            calls = []
            original = ProcessShardedStore.logical_state
            monkeypatch.setattr(
                ProcessShardedStore, "logical_state",
                lambda self: (calls.append(1), original(self))[1],
            )
            save_checkpoint(src, tmp_path / "stream.npz", shard_files=True)
            assert not calls, "shard_files save materialised a logical table"
        finally:
            _close_stores(src)

    def test_empty_store_reshard_target(self):
        """``empty()`` + ``assign_rows`` is the reshard transport: the
        target never holds more than one source shard's stream chunk."""
        values = _table()
        with ProcessShardedStore(values.copy(), 3, io_chunk=16) as src:
            with ProcessShardedStore.empty(67, 6, n_shards=5, io_chunk=16) as dst:
                for k in range(src.n_shards):
                    ids, rows = src.shard_rows(k)
                    dst.assign_rows(ids, rows)
                np.testing.assert_array_equal(dst.logical_state(), values)
                snap = dst.stats_snapshot()
                for w in snap["workers"]:
                    assert w["max_rpc_rows"] <= 16


# ---------------------------------------------------------------------------
# Lifecycle hygiene
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_reaps_workers_and_segments(self):
        store = ProcessShardedStore(_table(), 3)
        procs = list(store._procs)
        names = [shm.name for shm in store._guard.segments]
        assert all(p.is_alive() for p in procs)
        store.close()
        assert store.closed
        assert not any(p.is_alive() for p in procs)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        store.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            store.gather(np.array([0], dtype=np.int64))

    def test_context_manager_closes(self):
        with ProcessShardedStore(_table(), 2) as store:
            procs = list(store._procs)
        assert store.closed and not any(p.is_alive() for p in procs)

    def test_garbage_collection_reaps(self):
        store = ProcessShardedStore(_table(), 2)
        procs = list(store._procs)
        names = [shm.name for shm in store._guard.segments]
        del store
        gc.collect()
        for p in procs:
            p.join(timeout=10.0)
        assert not any(p.is_alive() for p in procs)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_no_leaked_children_after_suite(self):
        """Teardown assertion: every store the module opened was reaped
        (runs last — pytest executes tests in definition order)."""
        gc.collect()
        leaked = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard")
        ]
        assert not leaked, f"leaked shard workers: {leaked}"
