"""Sparse-matrix support for graph convolutions.

The normalized adjacency matrices ``Â`` in Eq. 1-3 are constant (the
graphs are fixed before training), so only the dense right-hand operand
of ``Â @ X`` needs gradient flow.  :func:`spmm` wraps scipy CSR matrices
into the autograd graph with exactly that one-sided adjoint:
``∂L/∂X = Âᵀ (∂L/∂Y)``.

Because each adjacency is fixed for the lifetime of a model, :func:`spmm`
caches the expensive derived operands *on the matrix object itself*: the
CSR transpose (needed by every backward pass) and, per dtype, a cast
copy used by the ``float32`` inference fast path.  Training forward
passes therefore pay the CSR transpose exactly once per adjacency, not
once per layer per view per batch.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.tensor import Tensor, get_default_dtype

__all__ = ["spmm", "to_csr"]

#: Name of the per-adjacency cache attribute ``spmm`` attaches to scipy
#: matrices.  Maps ``np.dtype → (csr_in_dtype, csr_transpose_in_dtype)``.
_CACHE_ATTR = "_repro_spmm_cache"


def to_csr(matrix, dtype=None) -> sp.csr_matrix:
    """Coerce dense/sparse input into canonical CSR of ``dtype``.

    Already-canonical CSR matrices of the requested dtype are returned
    *unchanged* (no copy, no re-coercion), so repeated calls on a fixed
    adjacency are free and any cache attached to the object survives.

    Parameters
    ----------
    matrix: dense array-like or any scipy sparse matrix.
    dtype: target dtype; defaults to the substrate's current default
        dtype (``float64`` outside a ``dtype_scope``).
    """
    target = np.dtype(dtype) if dtype is not None else get_default_dtype()
    if sp.issparse(matrix):
        if isinstance(matrix, sp.csr_matrix) and matrix.dtype == target:
            return matrix
        out = matrix.tocsr()
    else:
        out = sp.csr_matrix(np.asarray(matrix, dtype=target))
    if out.dtype != target:
        out = out.astype(target)
    return out


def _cached_operands(matrix, dtype: np.dtype):
    """Return ``(csr_in_dtype, transpose_in_dtype)`` for a fixed adjacency.

    The pair is memoised on ``matrix`` (the caller-owned object, so the
    cache lives exactly as long as the adjacency).  Objects that reject
    attribute assignment (rare; e.g. slotted wrappers) silently skip
    caching and recompute.
    """
    cache = getattr(matrix, _CACHE_ATTR, None)
    if cache is not None and dtype in cache:
        return cache[dtype]
    cast = to_csr(matrix, dtype)
    pair = (cast, cast.T.tocsr())
    if cache is None:
        cache = {}
        try:
            setattr(matrix, _CACHE_ATTR, cache)
        except AttributeError:  # pragma: no cover - exotic matrix types
            return pair
    cache[dtype] = pair
    return pair


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse-dense product ``matrix @ dense`` with gradient to ``dense``.

    Parameters
    ----------
    matrix:
        A fixed (non-trainable) ``(n, m)`` scipy sparse matrix — in this
        library always a normalized adjacency with self-loops.  Its CSR
        form, transpose and dtype casts are cached on the object.
    dense:
        An ``(m, d)`` tensor of node features.  Cast to the current
        default dtype before the product, so a ``float32`` inference
        scope runs the whole propagation at half bandwidth.

    Returns
    -------
    Tensor
        ``(n, d)`` propagated features; backward applies ``matrixᵀ``.
    """
    if dense.ndim != 2:
        raise ValueError(f"spmm expects a 2-D dense operand, got shape {dense.shape}")
    if matrix.shape[1] != dense.shape[0]:
        raise ValueError(
            f"dimension mismatch: sparse {matrix.shape} @ dense {dense.shape}"
        )
    dtype = get_default_dtype()
    csr, csr_t = _cached_operands(matrix, dtype)
    value = csr @ dense.data.astype(dtype, copy=False)

    def backward(g: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(csr_t @ g)

    return Tensor._make(np.asarray(value), (dense,), backward)
