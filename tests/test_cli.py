"""Tests for the command-line entry points."""

import pytest

from repro.cli import build_model, main_bench, main_eval, main_train
from repro.data import SyntheticConfig, generate_dataset


@pytest.fixture(scope="module")
def cli_dataset():
    return generate_dataset(
        SyntheticConfig(n_users=60, n_items=20, n_groups=220, min_interactions=3),
        seed=3,
    )


class TestBuildModel:
    def test_builds_mgbr_variants(self, cli_dataset):
        for name in ("MGBR", "MGBR-M", "MGBR-D"):
            model = build_model(name, cli_dataset, dim=8, seed=0)
            assert model.n_users == cli_dataset.n_users

    def test_builds_baselines(self, cli_dataset):
        for name in ("DeepMF", "NGCF", "DiffNet", "EATNN", "GBGCN", "GBMF"):
            model = build_model(name, cli_dataset, dim=8, seed=0)
            assert model.n_items == cli_dataset.n_items

    def test_unknown_model_exits(self, cli_dataset):
        with pytest.raises(SystemExit):
            build_model("Nonsense", cli_dataset)


class TestMainTrain:
    def test_train_and_checkpoint(self, tmp_path, capsys):
        out = tmp_path / "ckpt.npz"
        code = main_train([
            "--model", "GBMF", "--users", "60", "--items", "20",
            "--groups", "220", "--epochs", "1", "--dim", "8",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "parameters" in captured
        assert "Task A" in captured

    def test_eval_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "ckpt.npz"
        main_train([
            "--model", "GBMF", "--users", "60", "--items", "20",
            "--groups", "220", "--epochs", "1", "--dim", "8",
            "--out", str(out),
        ])
        code = main_eval([
            "--checkpoint", str(out), "--model", "GBMF",
            "--users", "60", "--items", "20", "--groups", "220",
            "--dim", "8", "--max-instances", "10",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "@10" in captured and "@100" in captured


class TestMainBench:
    def test_table1_output(self, capsys):
        code = main_bench([
            "--experiment", "table1", "--users", "60", "--items", "20",
            "--groups", "220",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "TABLE I" in captured
        assert "deal group" in captured
