"""Unit tests for the data schema: DealGroup and GroupBuyingDataset."""

import pytest

from repro.data import DealGroup, GroupBuyingDataset


class TestDealGroup:
    def test_basic_fields(self):
        g = DealGroup(initiator=1, item=2, participants=(3, 4))
        assert g.size == 2
        assert g.members() == (1, 3, 4)

    def test_initiator_cannot_participate(self):
        with pytest.raises(ValueError):
            DealGroup(initiator=1, item=0, participants=(1,))

    def test_duplicate_participants_rejected(self):
        with pytest.raises(ValueError):
            DealGroup(initiator=0, item=0, participants=(2, 2))

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            DealGroup(initiator=-1, item=0, participants=())
        with pytest.raises(ValueError):
            DealGroup(initiator=0, item=-2, participants=())
        with pytest.raises(ValueError):
            DealGroup(initiator=0, item=0, participants=(-3,))

    def test_empty_group_allowed(self):
        # A freshly-launched group with no participants yet.
        g = DealGroup(initiator=0, item=1, participants=())
        assert g.size == 0

    def test_frozen(self):
        g = DealGroup(initiator=0, item=1, participants=(2,))
        with pytest.raises(AttributeError):
            g.item = 5

    def test_equality(self):
        a = DealGroup(0, 1, (2,))
        b = DealGroup(0, 1, (2,))
        assert a == b


class TestGroupBuyingDataset:
    def _dataset(self):
        return GroupBuyingDataset(
            n_users=5,
            n_items=3,
            train=[
                DealGroup(0, 0, (1, 2)),
                DealGroup(3, 1, (4,)),
                DealGroup(0, 1, (2,)),
            ],
            validation=[DealGroup(3, 2, (0,))],
            test=[DealGroup(1, 0, (3,))],
        )

    def test_counts(self):
        ds = self._dataset()
        assert ds.n_groups == 5
        assert len(ds.all_groups) == 5

    def test_unknown_user_rejected(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(
                n_users=2, n_items=2, train=[DealGroup(5, 0, ())]
            )

    def test_unknown_item_rejected(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(
                n_users=3, n_items=1, train=[DealGroup(0, 2, ())]
            )

    def test_unknown_participant_rejected(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(
                n_users=2, n_items=2, train=[DealGroup(0, 0, (7,))]
            )

    def test_user_items_train_only(self):
        ds = self._dataset()
        ui = ds.user_items(("train",))
        assert ui[0] == {0, 1}
        assert ui[1] == {0}   # participant role counts as interaction
        assert 2 not in ui.get(3, set()) and ui[3] == {1}

    def test_user_items_includes_other_splits_when_asked(self):
        ds = self._dataset()
        ui = ds.user_items(("train", "validation", "test"))
        assert 2 in ui[3]  # from the validation group

    def test_group_members_union(self):
        ds = self._dataset()
        gm = ds.group_members(("train",))
        assert gm[(0, 0)] == {1, 2}
        assert gm[(0, 1)] == {2}

    def test_interaction_counts(self):
        ds = self._dataset()
        counts = ds.user_interaction_counts(("train",))
        assert counts[0] == 2  # two launches
        assert counts[2] == 2  # two joins

    def test_bad_split_name(self):
        ds = self._dataset()
        with pytest.raises(KeyError):
            ds.user_items(("bogus",))

    def test_summary_keys(self):
        summary = self._dataset().summary()
        assert summary["user"] == 5
        assert summary["item"] == 3
        assert summary["deal group"] == 5
        assert summary["max group size"] == 2
