"""Tests for the hot-row LRU cache decorator (repro.store.lru)."""

import threading

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.nn.tensor import dtype_scope, no_grad
from repro.store import DenseStore, LRUCachedStore, ShardedStore, cache_hot_rows


@pytest.fixture()
def table(rng):
    return rng.normal(size=(200, 6))


@pytest.fixture()
def cached(table):
    return LRUCachedStore(ShardedStore(table, 4), capacity=32)


class TestConstruction:
    def test_rejects_bad_capacity(self, table):
        with pytest.raises(ValueError):
            LRUCachedStore(DenseStore(table), 0)

    def test_refuses_stacked_caches(self, table):
        inner = LRUCachedStore(DenseStore(table), 4)
        with pytest.raises(ValueError, match="stack"):
            LRUCachedStore(inner, 4)

    def test_delegates_layout_and_parameters(self, table, cached):
        assert cached.n_shards == 4
        assert (cached.num_rows, cached.dim) == table.shape
        assert [n for n, _ in cached.named_parameters()] == [
            f"shard{k}" for k in range(4)
        ]
        np.testing.assert_array_equal(cached.logical_state(), table)


class TestGatherSemantics:
    def test_values_bit_identical_to_inner(self, table, cached, rng):
        with no_grad():
            for _ in range(5):
                ids = rng.integers(len(table), size=40)
                np.testing.assert_array_equal(cached.gather(ids).data, table[ids])

    def test_sorted_unique_fast_path(self, table, cached):
        with no_grad():
            ids = np.array([3, 17, 42, 199])
            np.testing.assert_array_equal(cached.gather(ids).data, table[ids])

    def test_grad_gathers_bypass_the_cache(self, table, cached):
        out = cached.gather(np.array([1, 2, 1]))
        assert out.requires_grad
        out.sum().backward()
        snap = cached.stats_snapshot()
        assert snap["cache_hits"] == 0 and snap["cache_misses"] == 0
        # The inner store recorded the differentiable gather (and the
        # touched rows the lazy-row optimizer consumes).
        assert snap["inner"]["gathers"] == 1
        assert any(
            getattr(p, "touched_rows", None) is not None
            for _, p in cached.named_parameters()
        )

    def test_lru_eviction_order(self, table):
        store = LRUCachedStore(DenseStore(table), capacity=2)
        with no_grad():
            store.gather([0])          # cache: {0}
            store.gather([1])          # cache: {0, 1}
            store.gather([0])          # hit -> 0 becomes most recent
            store.gather([2])          # evicts 1 (the LRU), not 0
            base_hits = store.stats["cache_hits"]
            store.gather([0])          # still resident -> hit
            assert store.stats["cache_hits"] == base_hits + 1
            store.gather([1])          # was evicted -> miss again
        snap = store.stats_snapshot()
        assert snap["cache_evictions"] >= 2
        assert snap["cache_rows"] <= 2

    def test_write_invalidation(self, table, cached):
        with no_grad():
            cached.gather([5])
            cached.assign_rows(np.array([5]), np.zeros((1, table.shape[1])))
            np.testing.assert_array_equal(
                cached.gather([5]).data, np.zeros((1, table.shape[1]))
            )
            cached.load_logical(table * 2.0)
            np.testing.assert_array_equal(cached.gather([5]).data, table[[5]] * 2.0)

    def test_optimizer_style_version_bump_invalidates(self, table, cached):
        with no_grad():
            before = cached.gather([7]).data.copy()
            # An in-place weight update (what Adam.step does) bumps the
            # parameter version; the next gather must re-fetch.
            for _, param in cached.named_parameters():
                param.data[...] = param.data * 3.0
                param.bump_version()
            after = cached.gather([7]).data
        np.testing.assert_array_equal(after, before * 3.0)

    def test_dtype_scope_switch_clears_cache(self, table, cached):
        with no_grad():
            with dtype_scope("float32"):
                row32 = cached.gather([9]).data
                assert row32.dtype == np.float32
            row64 = cached.gather([9]).data
            assert row64.dtype == np.float64
            np.testing.assert_array_equal(row64, table[[9]])


class TestAccounting:
    def test_zipf_stream_hit_and_eviction_accounting(self, table, rng):
        """Exact counter algebra under a skewed id stream."""
        store = LRUCachedStore(ShardedStore(table, 4), capacity=24)
        expected_lookups = 0
        with no_grad():
            for _ in range(80):
                ids = (rng.zipf(1.5, size=48) - 1) % len(table)
                expected_lookups += len(np.unique(ids))
                np.testing.assert_array_equal(store.gather(ids).data, table[ids])
        snap = store.stats_snapshot()
        # Every unique id of every gather was either a hit or a miss...
        assert snap["cache_hits"] + snap["cache_misses"] == expected_lookups
        # ...every miss inserted one row, every eviction removed one...
        assert snap["cache_misses"] - snap["cache_evictions"] == snap["cache_rows"]
        # ...residency never exceeds capacity, and the Zipf head pays off.
        assert snap["cache_rows"] <= 24
        hit_rate = snap["cache_hits"] / expected_lookups
        assert hit_rate > 0.3, f"Zipf stream should hit the cache, got {hit_rate:.3f}"

    def test_concurrent_readers_keep_counters_consistent(self, table):
        store = LRUCachedStore(ShardedStore(table, 2), capacity=16)
        per_thread, n_threads = 40, 4
        lookups = [0] * n_threads
        errors = []

        def reader(tid):
            try:
                rng = np.random.default_rng(tid)
                with no_grad():
                    for _ in range(per_thread):
                        ids = rng.integers(len(table), size=12)
                        lookups[tid] += len(np.unique(ids))
                        np.testing.assert_array_equal(
                            store.gather(ids).data, table[ids]
                        )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        snap = store.stats_snapshot()
        assert snap["cache_hits"] + snap["cache_misses"] == sum(lookups)
        assert snap["gathers"] == per_thread * n_threads
        assert snap["cache_rows"] <= 16


class TestModelIntegration:
    def test_cache_hot_rows_wraps_and_is_idempotent(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=2,
                     n_shards=2)
        wrapped = cache_hot_rows(model, 16)
        assert set(wrapped) == {"initiator_table", "participant_table", "item_table"}
        assert cache_hot_rows(model, 16) == {}  # second pass wraps nothing
        assert all(
            isinstance(store, LRUCachedStore)
            for store in model.embedding_stores().values()
        )

    def test_cached_model_scores_match_uncached(self, tiny_dataset):
        plain = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=6,
                     n_shards=2)
        cached = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=6,
                      n_shards=2)
        cache_hot_rows(cached, 8)  # tiny capacity -> constant eviction churn
        users = np.array([0, 1, 2, 0])
        cands = np.array([[0, 1, 2], [3, 4, 0], [1, 1, 5], [0, 1, 2]])
        np.testing.assert_array_equal(
            plain.score_items_matrix(users, cands),
            cached.score_items_matrix(users, cands),
        )

    def test_checkpoint_state_unchanged_by_wrapping(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=8,
                     n_shards=2)
        state_before = model.state_dict()
        cache_hot_rows(model, 16)
        state_after = model.state_dict()
        assert set(state_before) == set(state_after)
        for key in state_before:
            np.testing.assert_array_equal(state_before[key], state_after[key])
