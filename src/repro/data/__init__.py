"""``repro.data`` — group-buying datasets, sampling, and persistence.

Provides the data substrate the paper's experiments need: a synthetic
Beibei-style generator (the real dump is proprietary — see DESIGN.md for
the substitution argument), the Sec. III-A2 preprocessing filter, task
A/B positive-sample extraction, the three negative samplers, 7:3:1
splits, batch iterators, npz/json persistence and Table-I statistics.
"""

from repro.data.batching import iter_task_a_batches, iter_task_b_batches, n_batches
from repro.data.io import export_json, import_json, load_dataset, save_dataset
from repro.data.loaders import (
    load_groups_txt,
    parse_group_line,
    read_groups_txt,
    write_groups_txt,
)
from repro.data.negative import NegativePool, NegativeSampler
from repro.data.preprocess import FilteredData, filter_min_interactions, remap_ids
from repro.data.samples import TaskASamples, TaskBSamples, extract_task_a, extract_task_b
from repro.data.schema import DealGroup, GroupBuyingDataset
from repro.data.split import split_groups
from repro.data.statistics import DatasetStatistics, compute_statistics, format_table1
from repro.data.synthetic import (
    SyntheticConfig,
    SyntheticWorld,
    generate_dataset,
    generate_world,
)

__all__ = [
    "DealGroup",
    "GroupBuyingDataset",
    "SyntheticConfig",
    "SyntheticWorld",
    "generate_dataset",
    "generate_world",
    "filter_min_interactions",
    "remap_ids",
    "FilteredData",
    "extract_task_a",
    "extract_task_b",
    "TaskASamples",
    "TaskBSamples",
    "NegativeSampler",
    "NegativePool",
    "split_groups",
    "iter_task_a_batches",
    "iter_task_b_batches",
    "n_batches",
    "save_dataset",
    "load_dataset",
    "export_json",
    "import_json",
    "load_groups_txt",
    "read_groups_txt",
    "parse_group_line",
    "write_groups_txt",
    "DatasetStatistics",
    "compute_statistics",
    "format_table1",
]
