"""Tests for the ScoringPlan architecture (dedup + factorized scoring).

Covers the plan data structure itself (dedup/scatter invariants under
random duplicate patterns), the factorized expert/gate path's numerical
agreement with the dense stack across every MGBR ablation, metric parity
of the planned evaluation protocol with the historical per-instance loop
for MGBR and two baselines, and the satellite features riding on the
plan: float32 checkpoint export and pre-sampled negative pools.
"""

import numpy as np
import pytest

from repro.baselines import GBMF, NGCF
from repro.core import MGBR, MGBRConfig, PlannedBatch, ScoringPlan
from repro.data import NegativePool, NegativeSampler
from repro.eval import EvalProtocol
from repro.nn.layers import Linear
from repro.nn.tensor import no_grad, tensor
from repro.training import TrainConfig, Trainer
from repro.training.checkpoint import restore_model, save_checkpoint


# ----------------------------------------------------------------------
# Plan construction invariants
# ----------------------------------------------------------------------
class TestPlanInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_item_plan_reconstructs_random_duplicate_patterns(self, seed):
        rng = np.random.default_rng(seed)
        n, m = rng.integers(1, 40), rng.integers(1, 30)
        # Small id spaces force heavy duplication both within and across rows.
        users = rng.integers(0, 6, size=n)
        cands = rng.integers(0, 8, size=(n, m))
        plan = ScoringPlan.for_items(users, cands)

        # Unique pairs really are unique...
        keys = set(zip(plan.users.tolist(), plan.items.tolist()))
        assert len(keys) == plan.n_pairs
        # ...and scattering the pair ids reconstructs the full request.
        np.testing.assert_array_equal(
            plan.users[plan.scatter_index].reshape(n, m),
            np.repeat(users, m).reshape(n, m),
        )
        np.testing.assert_array_equal(
            plan.items[plan.scatter_index].reshape(n, m), cands
        )
        # Entity gather maps agree with the pair ids.
        np.testing.assert_array_equal(plan.unique_users[plan.user_pos], plan.users)
        np.testing.assert_array_equal(plan.unique_items[plan.item_pos], plan.items)
        assert plan.dedup_ratio >= 1.0

    @pytest.mark.parametrize("seed", range(5))
    def test_triple_plan_reconstructs_random_duplicate_patterns(self, seed):
        rng = np.random.default_rng(100 + seed)
        n, m = rng.integers(1, 25), rng.integers(1, 20)
        users = rng.integers(0, 5, size=n)
        items = rng.integers(0, 4, size=n)
        cands = rng.integers(0, 7, size=(n, m))
        plan = ScoringPlan.for_participants(users, items, cands)
        triples = set(
            zip(plan.users.tolist(), plan.items.tolist(), plan.participants.tolist())
        )
        assert len(triples) == plan.n_pairs
        flat_u = np.repeat(users, m)
        flat_i = np.repeat(items, m)
        np.testing.assert_array_equal(plan.users[plan.scatter_index], flat_u)
        np.testing.assert_array_equal(plan.items[plan.scatter_index], flat_i)
        np.testing.assert_array_equal(
            plan.participants[plan.scatter_index], cands.ravel()
        )
        np.testing.assert_array_equal(
            plan.unique_participants[plan.part_pos], plan.participants
        )

    def test_scatter_broadcasts_unique_scores(self):
        users = np.array([0, 0, 1])
        cands = np.array([[2, 3], [2, 3], [2, 2]])
        plan = ScoringPlan.for_items(users, cands)
        assert plan.n_pairs == 3  # (0,2), (0,3), (1,2)
        scores = np.arange(plan.n_pairs, dtype=np.float64) + 10.0
        full = plan.scatter(scores)
        assert full.shape == (3, 2)
        # Duplicate requests receive the identical score value.
        assert full[0, 0] == full[1, 0] and full[0, 1] == full[1, 1]
        assert full[2, 0] == full[2, 1]

    def test_pair_slice_covers_plan_without_rededup(self):
        rng = np.random.default_rng(3)
        plan = ScoringPlan.for_items(
            rng.integers(0, 5, size=20), rng.integers(0, 6, size=(20, 9))
        )
        window = plan.pair_slice(slice(2, 7))
        assert window.n_pairs == min(5, plan.n_pairs - 2)
        np.testing.assert_array_equal(window.users, plan.users[2:7])
        assert window.scatter_index is None  # identity — pairs are unique
        scores = np.arange(window.n_pairs, dtype=np.float64)
        np.testing.assert_array_equal(window.scatter(scores), scores)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ScoringPlan.for_items(np.arange(3), np.arange(4))
        with pytest.raises(ValueError):
            ScoringPlan.from_item_pairs(np.arange(3), np.arange(4))
        plan = ScoringPlan.from_item_pairs(np.array([1, 1]), np.array([2, 2]))
        with pytest.raises(ValueError):
            plan.scatter(np.zeros(5))

    def test_negative_ids_rejected(self):
        # A negative id would collide with a valid pair in the dedup key
        # ((1, -1) keys like (0, stride-1)) — must error, never merge.
        with pytest.raises(ValueError):
            ScoringPlan.for_items(np.array([0, 1]), np.array([[5], [-1]]))
        with pytest.raises(ValueError):
            ScoringPlan.from_triples(
                np.array([0]), np.array([-2]), np.array([1])
            )


# ----------------------------------------------------------------------
# PlannedBatch: heterogeneous training segments in one plan
# ----------------------------------------------------------------------
class TestPlannedBatch:
    def _segments(self):
        return {
            "pos": (np.array([0, 1]), np.array([3, 4]), None, (2,)),
            "neg": (
                np.array([0, 0, 1, 1]), np.array([5, 3, 4, 6]), None, (2, 2)
            ),
            "aux": (
                np.array([0, 0, 1, 1]), np.array([3, 3, 4, 4]),
                np.array([2, 7, 2, 7]), (2, 2),
            ),
        }

    def test_mixed_segments_reconstruct_ids(self):
        batch = PlannedBatch.build(self._segments(), sentinel=9)
        plan = batch.plan
        assert plan.is_triple
        # The sentinel fills the pair segments and sorts last among the
        # unique participants.
        assert plan.unique_participants[-1] == 9
        flat_u = batch.scatter(plan.users)
        flat_i = batch.scatter(plan.items)
        flat_p = batch.scatter(plan.participants)
        np.testing.assert_array_equal(batch.take(flat_u, "pos"), [0, 1])
        np.testing.assert_array_equal(batch.take(flat_i, "neg"), [[5, 3], [4, 6]])
        np.testing.assert_array_equal(batch.take(flat_p, "aux"), [[2, 7], [2, 7]])
        np.testing.assert_array_equal(batch.take(flat_p, "pos"), [9, 9])
        # Duplicate (u, i, p) requests collapse: aux repeats (0,3,2) etc.
        assert plan.n_pairs < batch.n_flat

    def test_all_pair_segments_build_pair_plan(self):
        segments = {
            "pos": (np.array([0, 1]), np.array([1, 1]), None, (2,)),
            "neg": (np.array([0, 1]), np.array([2, 2]), None, (2,)),
        }
        batch = PlannedBatch.build(segments)  # no sentinel needed
        assert not batch.plan.is_triple
        assert batch.plan.participants is None

    def test_scatter_and_take_work_on_tensors(self):
        batch = PlannedBatch.build(self._segments(), sentinel=9)
        scores = tensor(
            np.arange(batch.plan.n_pairs, dtype=np.float64), requires_grad=True
        )
        flat = batch.scatter(scores)
        neg = batch.take(flat, "neg")
        assert neg.shape == (2, 2)
        neg.sum().backward()
        # Every unique request referenced by the neg segment got grad 1.
        assert scores.grad is not None and scores.grad.sum() == 4.0
        np.testing.assert_array_equal(
            neg.data, batch.scatter(scores.data.copy())[
                batch.segments["neg"][0]: batch.segments["neg"][0] + 4
            ].reshape(2, 2),
        )

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PlannedBatch.build({})
        with pytest.raises(ValueError):  # mixed segments without sentinel
            PlannedBatch.build({
                "a": (np.array([0]), np.array([1]), None, (1,)),
                "b": (np.array([0]), np.array([1]), np.array([2]), (1,)),
            })
        with pytest.raises(ValueError):  # length != prod(shape)
            PlannedBatch.build({
                "a": (np.array([0, 1]), np.array([1, 2]), None, (3,)),
            })
        with pytest.raises(ValueError):  # participants shape mismatch
            PlannedBatch.build({
                "a": (np.array([0, 1]), np.array([1, 2]), np.array([3]), (2,)),
            })


# ----------------------------------------------------------------------
# Auto dedup: the plan-aware cheap-model heuristic
# ----------------------------------------------------------------------
class TestAutoDedup:
    def test_model_cost_hints(self, tiny_dataset, tiny_mgbr):
        gbmf = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=2)
        assert gbmf.scoring_cost_hint == 1.0
        assert tiny_mgbr.scoring_cost_hint >= 8.0
        assert tiny_mgbr.prefers_planned() and not gbmf.prefers_planned()
        # Heavy duplication tips even a cheap model into planning.
        assert gbmf.prefers_planned(duplication_hint=50.0)
        assert gbmf.resolve_dedup("auto") is False
        assert gbmf.resolve_dedup(True) is True
        assert tiny_mgbr.resolve_dedup("auto") is True

    def test_protocol_auto_matches_loop_for_both_models(self, tiny_dataset, tiny_mgbr):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, max_instances=30)
        assert protocol.dedup == "auto"
        gbmf = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=2)
        assert not protocol._resolve_dedup(gbmf)
        assert protocol._resolve_dedup(tiny_mgbr)
        for model in (gbmf, tiny_mgbr):
            assert protocol.run(model).flat() == (
                protocol.run_per_instance(model).flat()
            )

    def test_matrix_scorer_auto_matches_forced_paths(self, tiny_dataset, tiny_mgbr):
        rng = np.random.default_rng(5)
        users = rng.integers(0, tiny_dataset.n_users, size=7)
        cands = rng.integers(0, tiny_dataset.n_items, size=(7, 5))
        with no_grad():
            tiny_mgbr.refresh_cache()
            auto = tiny_mgbr.score_items_matrix(users, cands)
            forced = tiny_mgbr.score_items_matrix(users, cands, dedup=True)
            flat = tiny_mgbr.score_items_matrix(users, cands, dedup=False)
        np.testing.assert_array_equal(auto, forced)
        np.testing.assert_allclose(auto, flat, rtol=1e-10, atol=1e-12)

    def test_protocol_rejects_bad_dedup(self, tiny_dataset):
        with pytest.raises(ValueError):
            EvalProtocol(tiny_dataset, dedup="maybe")


# ----------------------------------------------------------------------
# Joint planned logits: both towers from one mixed plan
# ----------------------------------------------------------------------
class TestJointPlannedLogits:
    def test_joint_matches_flat_scorers_on_mixed_plan(self, tiny_dataset, small_config):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        emb = model.compute_embeddings()
        rng = np.random.default_rng(11)
        u = rng.integers(0, tiny_dataset.n_users, size=6)
        i = rng.integers(0, tiny_dataset.n_items, size=6)
        p = rng.integers(0, tiny_dataset.n_users, size=6)
        batch = PlannedBatch.build(
            {
                "pairs": (u, i, None, (6,)),       # mean-participant slot
                "triples": (u, i, p, (6,)),        # explicit participants
            },
            sentinel=model.mean_participant_id,
        )
        logits_a, logits_b = model.planned_joint_logits(emb, batch.plan)
        flat_a = batch.scatter(logits_a)
        flat_b = batch.scatter(logits_b)
        ref_pairs = model.score_items_from(emb, u, i, raw=True)
        ref_triples_a = model.score_items_from(emb, u, i, participants=p, raw=True)
        ref_b = model.score_participants_from(emb, u, i, p, raw=True)
        np.testing.assert_allclose(
            batch.take(flat_a, "pairs").data, ref_pairs.data, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(
            batch.take(flat_a, "triples").data, ref_triples_a.data,
            rtol=1e-10, atol=1e-12,
        )
        np.testing.assert_allclose(
            batch.take(flat_b, "triples").data, ref_b.data, rtol=1e-10, atol=1e-12
        )

    def test_gradients_flow_through_joint_plan(self, tiny_dataset, small_config):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        emb = model.compute_embeddings()
        batch = PlannedBatch.build(
            {"pairs": (np.array([0, 1, 0]), np.array([2, 3, 2]), None, (3,))},
            sentinel=model.mean_participant_id,
        )
        logits_a, logits_b = model.planned_joint_logits(emb, batch.plan)
        (batch.scatter(logits_a).sum() + batch.scatter(logits_b).sum()).backward()
        grads = [p.grad is not None for p in model.parameters()]
        # Everything except the final layer's unused shared-gate
        # projection (whose g_s output is discarded) receives gradient —
        # identical to the dense path's coverage.
        assert sum(grads) >= len(grads) - 1
VARIANT_CONFIGS = {
    "full": dict(),
    "compact_first_layer": dict(first_layer_compact=True),
    "no_shared_experts": dict(use_shared_experts=False),
    "no_adjusted_gates": dict(use_adjusted_gates=False),
    "single_layer": dict(mtl_layers=1),
    "no_softmax": dict(gate_softmax=False),
}


class TestFactorizedParity:
    @pytest.mark.parametrize("name", sorted(VARIANT_CONFIGS))
    def test_planned_matches_dense_scores(self, tiny_dataset, name):
        base = dict(d=8, n_experts=2, mtl_layers=2, seed=5)
        base.update(VARIANT_CONFIGS[name])
        config = MGBRConfig.small(**base)
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items, config=config
        ).eval()
        rng = np.random.default_rng(7)
        users = rng.integers(0, tiny_dataset.n_users, size=9)
        cands = rng.integers(0, tiny_dataset.n_items, size=(9, 6))
        cands[:, 4] = cands[:, 1]  # forced duplicates
        items = rng.integers(0, tiny_dataset.n_items, size=9)
        pcands = rng.integers(0, tiny_dataset.n_users, size=(9, 6))
        with no_grad():
            model.refresh_cache()
            dense_a = model.score_items_matrix(users, cands, dedup=False)
            planned_a = model.score_items_matrix(users, cands, dedup=True)
            dense_b = model.score_participants_matrix(users, items, pcands, dedup=False)
            planned_b = model.score_participants_matrix(users, items, pcands, dedup=True)
        np.testing.assert_allclose(planned_a, dense_a, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(planned_b, dense_b, rtol=1e-10, atol=1e-12)

    def test_linear_project_blocks_rejects_bias(self):
        layer = Linear(4, 2, bias=True, seed=0)
        with pytest.raises(ValueError):
            layer.project_blocks(tensor(np.zeros((1, 2))), [(0, 2)])

    def test_linear_project_blocks_rejects_mismatched_widths(self):
        layer = Linear(4, 2, bias=False, seed=0)
        x = tensor(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            layer.project_blocks(x, [(0, 3), (3, 4)])  # widths 3 and 1
        with pytest.raises(ValueError):
            layer.project_blocks(x, [(0, 2)])  # width 2 != input width 3

    def test_linear_project_blocks_folds_duplicated_input(self):
        layer = Linear(6, 2, bias=False, seed=1)
        x = np.random.default_rng(0).normal(size=(5, 3))
        full = layer(tensor(np.concatenate([x, x], axis=1)))
        folded = layer.project_blocks(tensor(x), [(0, 3), (3, 6)])
        np.testing.assert_allclose(folded.data, full.data, rtol=1e-12)


# ----------------------------------------------------------------------
# Protocol-level parity: planned run == per-instance reference loop
# ----------------------------------------------------------------------
class TestProtocolParity:
    def test_mgbr_planned_bit_identical_metrics(self, tiny_dataset, tiny_mgbr):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, max_instances=40)
        assert protocol.dedup  # planning is the default engine
        assert protocol.run(tiny_mgbr).flat() == (
            protocol.run_per_instance(tiny_mgbr).flat()
        )

    def test_mgbr_planned_parity_on_1_99_lists(self, tiny_dataset, tiny_mgbr):
        protocol = EvalProtocol(tiny_dataset, n_negatives=99, cutoff=100, max_instances=10)
        assert protocol.run(tiny_mgbr).flat() == (
            protocol.run_per_instance(tiny_mgbr).flat()
        )

    @pytest.mark.parametrize("builder", ["gbmf", "ngcf"])
    def test_baselines_planned_bit_identical_metrics(self, tiny_dataset, builder):
        if builder == "gbmf":
            model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=2)
        else:
            model = NGCF(
                tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                dim=8, seed=2,
            )
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, max_instances=40)
        assert protocol.run(model).flat() == protocol.run_per_instance(model).flat()

    def test_chunked_planned_run_matches_single_chunk(self, tiny_dataset, tiny_mgbr):
        kwargs = dict(n_negatives=9, cutoff=10, max_instances=30)
        small = EvalProtocol(tiny_dataset, chunk_size=13, **kwargs).run(tiny_mgbr)
        large = EvalProtocol(tiny_dataset, chunk_size=100_000, **kwargs).run(tiny_mgbr)
        assert small.flat() == large.flat()

    def test_dedup_off_matches_dedup_on(self, tiny_dataset, tiny_mgbr):
        kwargs = dict(n_negatives=9, cutoff=10, max_instances=30)
        on = EvalProtocol(tiny_dataset, dedup=True, **kwargs).run(tiny_mgbr)
        off = EvalProtocol(tiny_dataset, dedup=False, **kwargs).run(tiny_mgbr)
        assert on.flat() == off.flat()


# ----------------------------------------------------------------------
# Satellite: float32 checkpoint export
# ----------------------------------------------------------------------
class TestCheckpointDtype:
    def test_float32_round_trip(self, tiny_dataset, small_config, tmp_path):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        path = save_checkpoint(model, tmp_path / "ckpt", dtype="float32")
        meta = restore_model(model, path, dtype="float32")
        assert meta["dtype"] == "float32"
        dtypes = {p.data.dtype for p in model.parameters()}
        assert dtypes == {np.dtype(np.float32)}
        # A float32-weight model still scores (serving path).
        with no_grad():
            model.invalidate_cache()
            scores = model.score_items_matrix(
                np.array([0, 1]), np.array([[0, 1], [2, 3]])
            )
        assert scores.shape == (2, 2)

    def test_default_restore_keeps_float64_training_state(
        self, tiny_dataset, small_config, tmp_path
    ):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        reference = {k: v.copy() for k, v in model.state_dict().items()}
        path = save_checkpoint(model, tmp_path / "ckpt32", dtype="float32")
        restore_model(model, path)  # no dtype: assign into float64 buffers
        for param in model.parameters():
            assert param.data.dtype == np.float64
        # Values round-tripped through float32, so they match at f32 precision.
        for key, value in model.state_dict().items():
            np.testing.assert_allclose(value, reference[key], rtol=1e-6, atol=1e-6)

    def test_invalid_dtype_rejected(self, tiny_dataset, small_config, tmp_path):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        with pytest.raises(ValueError):
            save_checkpoint(model, tmp_path / "bad", dtype="float16")


# ----------------------------------------------------------------------
# Satellite: pre-sampled negative pools
# ----------------------------------------------------------------------
class TestNegativePools:
    def test_pool_draw_rotates_across_epochs(self):
        pool = NegativePool(np.arange(12).reshape(2, 6))
        rows = np.array([0, 1])
        first = pool.draw(rows, 2, epoch=0)
        second = pool.draw(rows, 2, epoch=1)
        np.testing.assert_array_equal(first, [[0, 1], [6, 7]])
        np.testing.assert_array_equal(second, [[2, 3], [8, 9]])
        # Rotation wraps around the pool rather than running off the end.
        wrapped = pool.draw(rows, 2, epoch=3)
        assert wrapped.shape == (2, 2)
        with pytest.raises(ValueError):
            pool.draw(rows, 7)

    def test_pools_respect_exclusion_sets(self, tiny_dataset):
        sampler = NegativeSampler(tiny_dataset, seed=5)
        users = np.array([0, 1, 2, 3], dtype=np.int64)
        pool = sampler.build_item_pool(users, 16)
        owned = tiny_dataset.user_items(("train",))
        for row, user in enumerate(users):
            assert not set(pool.negatives[row]) & owned.get(int(user), set())

    def test_trainer_with_pools_matches_interface(self, tiny_dataset, small_config):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        config = TrainConfig(
            epochs=1, batch_size=16, train_negatives=3, negative_pool_size=6,
            beta_a=0.0, beta_b=0.0, seed=1,
        )
        trainer = Trainer(model, tiny_dataset, config)
        assert trainer._pool_a is not None and trainer._pool_b is not None
        record = trainer.train_epoch()
        assert np.isfinite(record.losses["total"])

    def test_pool_smaller_than_ratio_rejected(self, tiny_dataset, small_config):
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        with pytest.raises(ValueError):
            Trainer(
                model, tiny_dataset,
                TrainConfig(train_negatives=5, negative_pool_size=3),
            )
