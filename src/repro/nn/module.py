"""Module/Parameter system — the ``torch.nn.Module`` analogue.

A :class:`Module` owns :class:`Parameter` leaves and child modules;
``parameters()`` walks the tree so optimizers and the parameter-counting
analysis (Table V of the paper) see every trainable array exactly once.
State-dict save/load round-trips through plain ``dict[str, np.ndarray]``
for npz checkpointing.

Checkpoint state is *canonical*, not structural: by default a module
contributes its parameters under their registered names, but a module
may override the ``_state_names`` / ``_state_items`` /
``_load_state_items`` trio to present a logical view of its storage —
:class:`repro.nn.layers.Embedding` always checkpoints one ``weight``
table regardless of how its :mod:`repro.store` backend partitions the
rows, which is what makes checkpoints portable across shard counts.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as trainable model state.

    Parameters are pinned to ``float64`` regardless of any active
    ``dtype_scope``/``inference_mode`` — the dtype policy casts op
    *results*, never trainable state, so a model constructed inside an
    inference scope still trains and gradchecks at full precision.

    Two bookkeeping fields support the storage/caching layers:

    ``version``
        Monotonic mutation counter.  Every in-place update site in the
        repo (optimizer steps, state-dict loads, store row assignment)
        bumps it via :meth:`bump_version`; caches derived from
        parameter values (:meth:`repro.nn.layers.Linear.project_blocks`
        fold weights) key their validity on it.  Code that mutates
        ``.data`` directly must bump the version itself.
    ``touched_rows``
        Rows that received gradient this step — ``None`` (nothing /
        unknown), ``True`` (all rows), or a sorted index array.  Filled
        by :mod:`repro.store` gathers, consumed by the lazy-row
        optimizer mode, cleared by :meth:`zero_grad`.
    """

    def __init__(self, data, name: str = "") -> None:
        # dtype passed explicitly so the initial values never round-trip
        # through a narrower scope dtype.
        super().__init__(data, requires_grad=True, name=name, dtype=np.float64)
        self.requires_grad = True
        self.version = 0
        self.touched_rows = None

    def bump_version(self) -> None:
        """Mark the buffer as mutated (invalidates value-derived caches)."""
        self.version += 1

    def zero_grad(self) -> None:
        """Clear the gradient buffer and the touched-row record."""
        self.grad = None
        self.touched_rows = None


class Module:
    """Base class for all neural components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.  The
    ``training`` flag gates dropout and other train-only behaviour.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters in the tree (deduplicated by identity)."""
        seen = set()
        out: List[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)
        return out

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_path, module)`` pairs depth-first (root is ``""``)."""
        yield prefix[:-1] if prefix else "", self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count (Table V's "Para. number")."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train/eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (enables dropout etc.)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradients & state
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear every parameter's gradient buffer."""
        for param in self.parameters():
            param.zero_grad()

    def _state_names(self) -> List[str]:
        """Canonical state-entry names of this module's subtree.

        Defaults to the registered parameter names; modules with a
        non-trivial storage layout override this (with
        ``_state_items``/``_load_state_items``) to present their logical
        entries instead.
        """
        names = list(self._parameters)
        for child_name, child in self._modules.items():
            names.extend(f"{child_name}.{key}" for key in child._state_names())
        return names

    def _state_items(self, exclude=()) -> Dict[str, np.ndarray]:
        """Canonical ``name -> array copy`` state of this subtree.

        ``exclude`` names entries to skip *without materialising them* —
        the per-shard checkpoint writer leaves sharded tables out of the
        main payload this way, so their logical arrays are never built.
        """
        exclude = set(exclude)
        out = {
            name: param.data.copy()
            for name, param in self._parameters.items()
            if name not in exclude
        }
        for child_name, child in self._modules.items():
            prefix = f"{child_name}."
            child_exclude = {
                name[len(prefix):] for name in exclude if name.startswith(prefix)
            }
            for key, value in child._state_items(child_exclude).items():
                out[f"{prefix}{key}"] = value
        return out

    def _load_state_items(self, entries: Dict[str, np.ndarray], dtype=None) -> None:
        """Load (already name-validated) entries into this subtree."""
        per_child: Dict[str, Dict[str, np.ndarray]] = {}
        for name, values in entries.items():
            if name in self._parameters:
                self._assign_parameter_state(self._parameters[name], values, dtype, name)
            else:
                child_name, _, rest = name.partition(".")
                per_child.setdefault(child_name, {})[rest] = values
        for child_name, sub_entries in per_child.items():
            self._modules[child_name]._load_state_items(sub_entries, dtype)

    @staticmethod
    def _assign_parameter_state(param: Parameter, values, dtype, name: str) -> None:
        if param.data.shape != values.shape:
            raise ValueError(
                f"shape mismatch for {name}: {param.data.shape} vs {values.shape}"
            )
        if dtype is None:
            param.data[...] = values
        else:
            # np.array (not asarray): always copy, so the rebound
            # buffer never aliases the caller's state dict or a
            # sibling model loaded from the same checkpoint.
            param.data = np.array(values, dtype=dtype)
            param.grad = None
        param.bump_version()

    def state_dict(self, exclude=()) -> Dict[str, np.ndarray]:
        """Copy the canonical model state into a flat ``name -> array`` map.

        For plain modules this is exactly the parameter tree; modules
        with a storage backend (:class:`repro.nn.layers.Embedding`)
        contribute their *logical* tables, so the mapping is identical
        for every :mod:`repro.store` layout of the same model.

        ``exclude`` optionally names entries to omit without computing
        them (a sharded table's logical view is an O(num_rows·dim)
        materialisation the per-shard checkpoint path must avoid).
        """
        return self._state_items(exclude)

    def load_state_dict(
        self, state: Dict[str, np.ndarray], strict: bool = True, dtype=None
    ) -> None:
        """Load values produced by :meth:`state_dict` back into parameters.

        ``dtype=None`` assigns into the existing buffers (values are cast
        to each parameter's own dtype, the training-safe default).  An
        explicit ``dtype`` instead *rebinds* every loaded parameter's
        buffer to that precision — the float32 serving path of
        :func:`repro.training.checkpoint.restore_model`; gradients then
        also accumulate in that dtype, so only use it for inference.

        Because the state is canonical, a dict saved from one storage
        layout loads into any other (dense ↔ N-shard ↔ M-shard); each
        store re-partitions its logical table on assignment.
        """
        own = set(self._state_names())
        missing = own - set(state)
        unexpected = set(state) - own
        if strict and (missing or unexpected):
            raise KeyError(
                f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        self._load_state_items(
            {name: values for name, values in state.items() if name in own}, dtype
        )

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")
