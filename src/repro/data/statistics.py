"""Dataset statistics — regenerates the paper's Table I.

Beyond the three rows the paper reports (user / item / deal group), we
compute the derived quantities the models' behaviour depends on: group
size distribution, interaction density per view, and role-overlap (how
many users act as both initiator and participant), which the README and
EXPERIMENTS.md use to characterise the synthetic substitute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.schema import GroupBuyingDataset

__all__ = ["DatasetStatistics", "compute_statistics", "format_table1"]


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics of a group-buying dataset."""

    n_users: int
    n_items: int
    n_groups: int
    n_task_a_pairs: int
    n_task_b_triples: int
    mean_group_size: float
    max_group_size: int
    n_initiators: int
    n_participants: int
    n_dual_role_users: int
    ui_density: float
    pi_density: float
    up_density: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (stable key order for printing)."""
        return {
            "user": self.n_users,
            "item": self.n_items,
            "deal group": self.n_groups,
            "task A pairs": self.n_task_a_pairs,
            "task B triples": self.n_task_b_triples,
            "mean group size": round(self.mean_group_size, 3),
            "max group size": self.max_group_size,
            "distinct initiators": self.n_initiators,
            "distinct participants": self.n_participants,
            "dual-role users": self.n_dual_role_users,
            "G_UI density": self.ui_density,
            "G_PI density": self.pi_density,
            "G_UP density": self.up_density,
        }


def compute_statistics(dataset: GroupBuyingDataset) -> DatasetStatistics:
    """Compute :class:`DatasetStatistics` over all splits of ``dataset``."""
    groups = dataset.all_groups
    sizes: List[int] = [g.size for g in groups]
    initiators = {g.initiator for g in groups}
    participants = {p for g in groups for p in g.participants}
    ui_edges = {(g.initiator, g.item) for g in groups}
    pi_edges = {(p, g.item) for g in groups for p in g.participants}
    up_edges = {(g.initiator, p) for g in groups for p in g.participants}
    nu, ni = max(dataset.n_users, 1), max(dataset.n_items, 1)
    return DatasetStatistics(
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        n_groups=len(groups),
        n_task_a_pairs=len(groups),
        n_task_b_triples=int(np.sum(sizes)) if sizes else 0,
        mean_group_size=float(np.mean(sizes)) if sizes else 0.0,
        max_group_size=int(np.max(sizes)) if sizes else 0,
        n_initiators=len(initiators),
        n_participants=len(participants),
        n_dual_role_users=len(initiators & participants),
        ui_density=len(ui_edges) / (nu * ni),
        pi_density=len(pi_edges) / (nu * ni),
        up_density=len(up_edges) / (nu * nu),
    )


def format_table1(stats: DatasetStatistics) -> str:
    """Render the statistics as the paper's Table I layout."""
    lines = [
        "TABLE I — STATISTICS OF THE PREPROCESSED EXPERIMENT DATASET",
        f"{'Object':<16}{'Number':>12}",
        f"{'user':<16}{stats.n_users:>12,}",
        f"{'item':<16}{stats.n_items:>12,}",
        f"{'deal group':<16}{stats.n_groups:>12,}",
    ]
    return "\n".join(lines)
