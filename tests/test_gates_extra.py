"""Extra behavioural tests for the gate wiring (Eq. 11 vs Eq. 13).

These pin down the asymmetry between gate A and gate B: which expert
bank each raw-pair attention head lands on.  A regression that swapped
the banks would silently change the architecture, so the wiring is
asserted through gradient flow.
"""

import numpy as np

from repro.core.gates import TaskGate
from repro.nn import tensor


def _t(rng, *shape):
    return tensor(rng.normal(size=shape), requires_grad=True)


def _grads_after(gate, rng, own_requires=True, shared_requires=True):
    """Run the gate once; return (own_bank.grad, shared_bank.grad)."""
    own = tensor(np.random.default_rng(0).normal(size=(2, 2, 4)), requires_grad=own_requires)
    shared = tensor(np.random.default_rng(1).normal(size=(2, 2, 4)), requires_grad=shared_requires)
    state = _t(rng, 2, 6)
    e_u, e_i, e_p = _t(rng, 2, 4), _t(rng, 2, 4), _t(rng, 2, 4)
    out = gate(state, own, shared, e_u, e_i, e_p)
    out.sum().backward()
    return own.grad, shared.grad


class TestGateABankWiring:
    def test_gate_a_ui_head_hits_own_bank(self, rng):
        # With alpha > 0 the adjusted section's (u,i) head must attend
        # over the OWN bank for gate A (own_is_ui=True).  Both banks get
        # gradient anyway (generic section covers both), so instead we
        # check the adjusted head parameter shapes exist and are used.
        gate = TaskGate(6, 8, 2, own_is_ui=True, alpha=0.5, seed=0)
        own_grad, shared_grad = _grads_after(gate, rng)
        assert own_grad is not None and np.abs(own_grad).sum() > 0
        assert shared_grad is not None and np.abs(shared_grad).sum() > 0
        # All three adjusted heads received gradient.
        for head in (gate.adjusted.head_ui, gate.adjusted.head_ip, gate.adjusted.head_up):
            assert head.proj.weight.grad is not None

    def test_alpha_scales_adjusted_contribution(self, rng):
        # Doubling alpha doubles the adjusted section's share of the output.
        state = _t(rng, 1, 6)
        own = _t(rng, 1, 2, 4)
        shared = _t(rng, 1, 2, 4)
        e = [_t(rng, 1, 4) for _ in range(3)]
        g_small = TaskGate(6, 8, 2, True, alpha=0.1, seed=3)
        g_large = TaskGate(6, 8, 2, True, alpha=0.2, seed=3)
        out_small = g_small(state, own, shared, *e).data
        out_large = g_large(state, own, shared, *e).data
        # Same seed => same weights; outputs differ only through alpha.
        generic = g_small.generic(
            state, __import__("repro.nn.tensor", fromlist=["concat"]).concat([own, shared], axis=1)
        ).data
        adj_small = out_small - generic
        adj_large = out_large - generic
        np.testing.assert_allclose(adj_large, 2 * adj_small, rtol=1e-8)

    def test_gate_b_mirrored_wiring_runs(self, rng):
        gate = TaskGate(6, 8, 2, own_is_ui=False, alpha=0.3, seed=0)
        own_grad, shared_grad = _grads_after(gate, rng)
        assert own_grad is not None and shared_grad is not None


class TestGateDeterminism:
    def test_same_seed_same_output(self, rng):
        inputs = [np.random.default_rng(5).normal(size=s) for s in
                  [(2, 6), (2, 2, 4), (2, 2, 4), (2, 4), (2, 4), (2, 4)]]

        def run():
            gate = TaskGate(6, 8, 2, True, alpha=0.2, seed=11)
            ts = [tensor(x) for x in inputs]
            return gate(ts[0], ts[1], ts[2], ts[3], ts[4], ts[5]).data

        np.testing.assert_array_equal(run(), run())
