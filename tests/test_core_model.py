"""Tests for the assembled MGBR model and its ablation variants."""

import numpy as np
import pytest

from repro.core import MGBR, MGBRConfig, build_variant
from repro.core.views import HINEmbedding, MultiViewEmbedding
from repro.nn import no_grad


class TestEmbeddings:
    def test_bundle_shapes(self, tiny_dataset, tiny_mgbr, small_config):
        emb = tiny_mgbr.compute_embeddings()
        vd = small_config.view_dim
        assert emb.user.shape == (tiny_dataset.n_users, vd)
        assert emb.item.shape == (tiny_dataset.n_items, vd)
        assert emb.participant.shape == (tiny_dataset.n_users, vd)

    def test_user_and_participant_views_differ(self, tiny_mgbr):
        emb = tiny_mgbr.compute_embeddings()
        # e_u = UI||UP while e_p = PI||UP: first halves differ.
        d = emb.user.shape[1] // 2
        assert not np.allclose(emb.user.data[:, :d], emb.participant.data[:, :d])

    def test_shared_social_half(self, tiny_mgbr):
        emb = tiny_mgbr.compute_embeddings()
        d = emb.user.shape[1] // 2
        # Both roles share the UP view in their second half (Eq. 4/6).
        np.testing.assert_allclose(emb.user.data[:, d:], emb.participant.data[:, d:])

    def test_hin_variant_single_embedding(self, tiny_dataset, small_config):
        model = build_variant(
            "MGBR-D", tiny_dataset.train, tiny_dataset.n_users,
            tiny_dataset.n_items, base=small_config,
        )
        emb = model.compute_embeddings()
        assert isinstance(model.encoder, HINEmbedding)
        # Under the HIN both roles are literally the same tensor.
        np.testing.assert_array_equal(emb.user.data, emb.participant.data)

    def test_multiview_encoder_for_full_model(self, tiny_mgbr):
        assert isinstance(tiny_mgbr.encoder, MultiViewEmbedding)


class TestScoring:
    def test_score_ranges(self, tiny_mgbr):
        emb = tiny_mgbr.compute_embeddings()
        users = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        scores = tiny_mgbr.score_items_from(emb, users, items)
        assert scores.shape == (3,)
        assert np.all(scores.data > 0) and np.all(scores.data < 1)

    def test_raw_scores_are_logits(self, tiny_mgbr):
        emb = tiny_mgbr.compute_embeddings()
        users, items = np.array([0, 1]), np.array([0, 1])
        raw = tiny_mgbr.score_items_from(emb, users, items, raw=True)
        prob = tiny_mgbr.score_items_from(emb, users, items)
        np.testing.assert_allclose(1 / (1 + np.exp(-raw.data)), prob.data, atol=1e-12)

    def test_task_a_averaged_participant_slot(self, tiny_mgbr):
        # With participants=None every sample shares the same e_p; passing
        # an explicit participant changes the score.
        emb = tiny_mgbr.compute_embeddings()
        users, items = np.array([0]), np.array([0])
        averaged = tiny_mgbr.score_items_from(emb, users, items).data
        explicit = tiny_mgbr.score_items_from(
            emb, users, items, participants=np.array([3])
        ).data
        assert not np.allclose(averaged, explicit)

    def test_task_b_depends_on_participant(self, tiny_mgbr):
        emb = tiny_mgbr.compute_embeddings()
        u, i = np.array([0, 0]), np.array([0, 0])
        scores = tiny_mgbr.score_participants_from(emb, u, i, np.array([1, 2]))
        assert scores.data[0] != scores.data[1]

    def test_task_b_depends_on_item(self, tiny_mgbr):
        emb = tiny_mgbr.compute_embeddings()
        u, p = np.array([0, 0]), np.array([5, 5])
        scores = tiny_mgbr.score_participants_from(emb, u, np.array([0, 1]), p)
        assert scores.data[0] != scores.data[1]

    def test_public_scoring_uses_cache(self, tiny_dataset, small_config, monkeypatch):
        # Mutates weight.data without a version bump — the quantised
        # tier's version-keyed shadow would (correctly) not notice.
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        with no_grad():
            model.refresh_cache()
            first = model.score_items(np.array([0]), np.array([0])).data.copy()
        # Mutate a GCN feature; the cached pass must keep old scores until
        # invalidated.
        model.encoder.gcn_ui.features.weight.data += 1.0
        with no_grad():
            again = model.score_items(np.array([0]), np.array([0])).data
            np.testing.assert_array_equal(first, again)
            model.invalidate_cache()
            changed = model.score_items(np.array([0]), np.array([0])).data
        assert not np.allclose(first, changed)


class TestVariantsBehaviour:
    def test_m_variant_has_fewer_parameters(self, tiny_dataset, small_config):
        full = build_variant("MGBR", tiny_dataset.train, tiny_dataset.n_users,
                             tiny_dataset.n_items, base=small_config)
        m = build_variant("MGBR-M", tiny_dataset.train, tiny_dataset.n_users,
                          tiny_dataset.n_items, base=small_config)
        assert m.num_parameters() < full.num_parameters()

    def test_g_variant_has_fewer_parameters(self, tiny_dataset, small_config):
        full = build_variant("MGBR", tiny_dataset.train, tiny_dataset.n_users,
                             tiny_dataset.n_items, base=small_config)
        g = build_variant("MGBR-G", tiny_dataset.train, tiny_dataset.n_users,
                          tiny_dataset.n_items, base=small_config)
        assert g.num_parameters() < full.num_parameters()

    def test_r_variant_same_architecture(self, tiny_dataset, small_config):
        full = build_variant("MGBR", tiny_dataset.train, tiny_dataset.n_users,
                             tiny_dataset.n_items, base=small_config)
        r = build_variant("MGBR-R", tiny_dataset.train, tiny_dataset.n_users,
                          tiny_dataset.n_items, base=small_config)
        assert r.num_parameters() == full.num_parameters()
        assert not r.supports_aux_losses
        assert full.supports_aux_losses

    def test_all_variants_forward_and_backward(self, tiny_dataset, small_config):
        users = np.array([0, 1])
        items = np.array([0, 1])
        parts = np.array([2, 3])
        for name in ("MGBR", "MGBR-M", "MGBR-R", "MGBR-M-R", "MGBR-G", "MGBR-D"):
            model = build_variant(
                name, tiny_dataset.train, tiny_dataset.n_users,
                tiny_dataset.n_items, base=small_config,
            )
            emb = model.compute_embeddings()
            s_a = model.score_items_from(emb, users, items, raw=True)
            s_b = model.score_participants_from(emb, users, items, parts, raw=True)
            (s_a.sum() + s_b.sum()).backward()
            grads = [p for p in model.parameters() if p.grad is not None]
            assert grads, f"{name}: no gradients"

    def test_entity_embeddings_hook(self, tiny_mgbr):
        tables = tiny_mgbr.entity_embeddings()
        assert set(tables) == {"initiator", "item", "participant"}
        assert tables["initiator"].shape[0] == tiny_mgbr.n_users


class TestModelValidation:
    def test_bad_entity_counts(self, tiny_dataset, small_config):
        with pytest.raises(ValueError):
            MGBR(tiny_dataset.train, 0, 5, config=small_config)

    def test_seed_reproducibility(self, tiny_dataset, small_config):
        a = MGBR(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                 config=small_config, seed=9)
        b = MGBR(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                 config=small_config, seed=9)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self, tiny_dataset, small_config):
        a = MGBR(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                 config=small_config, seed=1)
        b = MGBR(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                 config=small_config, seed=2)
        same = all(
            np.allclose(pa.data, pb.data)
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
        )
        assert not same
