"""The multi-task learning module: L layers of experts + gates (Sec. II-D).

Layer topology (Fig. 3 of the paper): each layer holds three expert
banks (A, B, S) and three gates.  Gate states thread through the stack:

* layer-0 state: ``g⁰_A = g⁰_B = g⁰_S = e_u || e_i || e_p`` (Eq. 15);
* layer ``l``: banks read the concatenated previous gate states
  (Eq. 7-9) and gates mix the banks (Eq. 10-14);
* the final layer's ``g^L_A`` / ``g^L_B`` feed the prediction MLPs.

The MGBR-M ablation drops bank S and gate S, collapsing the module into
two independent towers (each task gate then attends only over its own
bank, and the adjusted-gate pair heads land on that bank as well).

Shape note (DESIGN.md §5): the general formulas make the first layer's
expert inputs the *duplicated* concatenation ``g⁰_A || g⁰_S`` (identical
vectors).  ``first_layer_compact=True`` feeds ``g⁰`` once instead,
matching the papers' annotated ``6d``/``9d`` first-layer sizes under its
``e_u ∈ R^d`` reading.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import MGBRConfig
from repro.core.experts import ExpertBank
from repro.core.gates import AdjustedGate, SharedGate, TaskGate
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["MTLLayer", "MultiTaskModule"]


class MTLLayer(Module):
    """One layer of the multi-task module.

    Parameters
    ----------
    task_state_dim: width of each task gate's previous output
        (``6d_view`` at layer 1, expert width afterwards).
    expert_dim: expert/gate output width (the paper's ``d``).
    pair_dim: width of the raw pair embeddings ``e_u||e_i`` (4d).
    n_experts: ``K``.
    shared: include bank S + gate S (False under MGBR-M).
    compact_input: feed the previous state once instead of the
        duplicated concatenation (only meaningful when all previous
        states are identical, i.e. at layer 1).
    alpha_a / alpha_b: adjusted-gate control coefficients.
    """

    def __init__(
        self,
        task_state_dim: int,
        expert_dim: int,
        pair_dim: int,
        n_experts: int,
        shared: bool = True,
        compact_input: bool = False,
        alpha_a: float = 0.1,
        alpha_b: float = 0.1,
        gate_softmax: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(seed, 6)
        self.shared = shared
        self.compact_input = compact_input
        if compact_input:
            in_task = task_state_dim
            in_shared = task_state_dim
        else:
            in_task = 2 * task_state_dim if shared else task_state_dim
            in_shared = 3 * task_state_dim
        self.in_task = in_task
        self.in_shared = in_shared

        self.experts_a = ExpertBank(in_task, expert_dim, n_experts, seed=rngs[0])
        self.experts_b = ExpertBank(in_task, expert_dim, n_experts, seed=rngs[1])
        self.gate_a = TaskGate(
            in_task, pair_dim, n_experts, own_is_ui=True, alpha=alpha_a,
            softmax=gate_softmax, shared=shared, seed=rngs[2],
        )
        self.gate_b = TaskGate(
            in_task, pair_dim, n_experts, own_is_ui=False, alpha=alpha_b,
            softmax=gate_softmax, shared=shared, seed=rngs[3],
        )
        if shared:
            self.experts_s = ExpertBank(in_shared, expert_dim, n_experts, seed=rngs[4])
            self.gate_s = SharedGate(in_shared, n_experts, softmax=gate_softmax, seed=rngs[5])
        else:
            self.experts_s = None
            self.gate_s = None

    def forward(
        self,
        g_a: Tensor,
        g_s: Optional[Tensor],
        g_b: Tensor,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        pairs=None,
    ) -> Tuple[Tensor, Optional[Tensor], Tensor]:
        """Advance the gate states one layer.

        Returns ``(g_a, g_s, g_b)``; ``g_s`` is ``None`` without sharing.
        ``pairs`` optionally carries the precomputed pair features (see
        :meth:`repro.core.gates.AdjustedGate.build_pairs`) so the stack
        concatenates them once instead of per gate per layer.
        """
        if self.shared:
            if self.compact_input:
                state_a = g_a
                state_b = g_b
                state_s = g_s
            else:
                state_a = concat([g_a, g_s], axis=1)      # e^l_{A,in}, Eq. 10
                state_b = concat([g_b, g_s], axis=1)
                state_s = concat([g_a, g_s, g_b], axis=1)  # e^l_{S,in}, Eq. 14
            bank_a = self.experts_a(state_a)
            bank_b = self.experts_b(state_b)
            bank_s = self.experts_s(state_s)
            new_a = self.gate_a(state_a, bank_a, bank_s, e_u, e_i, e_p, pairs=pairs)
            new_b = self.gate_b(state_b, bank_b, bank_s, e_u, e_i, e_p, pairs=pairs)
            new_s = self.gate_s(state_s, bank_a, bank_s, bank_b)
            return new_a, new_s, new_b

        bank_a = self.experts_a(g_a)
        bank_b = self.experts_b(g_b)
        new_a = self.gate_a(g_a, bank_a, None, e_u, e_i, e_p, pairs=pairs)
        new_b = self.gate_b(g_b, bank_b, None, e_u, e_i, e_p, pairs=pairs)
        return new_a, None, new_b


class MultiTaskModule(Module):
    """The full L-layer expert/gate stack mapping ``(e_u,e_i,e_p)`` to
    the task representations ``(g^L_A, g^L_B)``.

    Constructed from an :class:`MGBRConfig`; respects its ablation
    switches (``use_shared_experts``, ``use_adjusted_gates``).
    """

    def __init__(self, config: MGBRConfig, seed: SeedLike = None) -> None:
        super().__init__()
        self.config = config
        shared = config.use_shared_experts
        alpha_a = config.alpha_a if config.use_adjusted_gates else 0.0
        alpha_b = config.alpha_b if config.use_adjusted_gates else 0.0
        pair_dim = 2 * config.view_dim  # e.g. e_u||e_i is 4d wide
        rngs = spawn_rngs(seed, config.mtl_layers)
        self._layers: List[MTLLayer] = []
        for layer_idx in range(config.mtl_layers):
            if layer_idx == 0:
                state_dim = config.triple_dim  # 6d: e_u||e_i||e_p
                compact = config.first_layer_compact
            else:
                state_dim = config.d
                compact = False
            layer = MTLLayer(
                task_state_dim=state_dim,
                expert_dim=config.d,
                pair_dim=pair_dim,
                n_experts=config.n_experts,
                shared=shared,
                compact_input=compact,
                alpha_a=alpha_a,
                alpha_b=alpha_b,
                gate_softmax=config.gate_softmax,
                seed=rngs[layer_idx],
            )
            setattr(self, f"mtl{layer_idx}", layer)
            self._layers.append(layer)

    def forward(self, e_u: Tensor, e_i: Tensor, e_p: Tensor) -> Tuple[Tensor, Tensor]:
        """Run the stack; returns the final ``(g^L_A, g^L_B)``.

        Inputs are per-sample object embeddings, each ``(batch, 2d)``.
        """
        g0 = concat([e_u, e_i, e_p], axis=1)  # Eq. 15
        g_a, g_s, g_b = g0, g0, g0
        if not self.config.use_shared_experts:
            g_s = None
        # The adjusted gates' pair features depend only on the raw
        # embeddings — build them once and share across all layers and
        # both towers (three concats total instead of three per gate).
        pairs = None
        if self.config.use_adjusted_gates and (
            self.config.alpha_a > 0 or self.config.alpha_b > 0
        ):
            pairs = AdjustedGate.build_pairs(e_u, e_i, e_p)
        for layer in self._layers:
            g_a, g_s, g_b = layer(g_a, g_s, g_b, e_u, e_i, e_p, pairs=pairs)
        return g_a, g_b
