"""Table III — overall performance comparison on Task A and Task B.

Trains MGBR and the six baselines with identical budgets on the shared
synthetic dataset and reports MRR@10 / NDCG@10 (1:9 lists) and
MRR@100 / NDCG@100 (1:99 lists) for both sub-tasks — the full grid of
the paper's Table III.

Shape expectations asserted (paper Sec. III-E):

* MGBR posts the best Task-B metrics, and its Task-B margin over the
  strongest baseline exceeds its Task-A margin (no baseline has an
  item-aware participant head);
* MGBR is at least competitive on Task A (best or within a small gap).

Paper reference values (Beibei), for side-by-side shape comparison:

    model    A-MRR@10  A-NDCG@10  B-MRR@10  B-NDCG@10
    DeepMF     0.3763     0.5183    0.3070     0.4656
    NGCF       0.5607     0.6617    0.3778     0.5211
    DiffNet    0.3780     0.5206    0.3314     0.4844
    EATNN      0.5827     0.6807    0.3404     0.4929
    GBGCN      0.5095     0.6231    0.3668     0.5127
    GBMF       0.3718     0.5135    0.3254     0.4794
    MGBR       0.6401     0.7292    0.6484     0.7327
"""

import pytest
from conftest import metrics_row, train_and_evaluate, write_result

MODELS = ["DeepMF", "NGCF", "DiffNet", "EATNN", "GBGCN", "GBMF", "MGBR"]


@pytest.fixture(scope="module")
def table3_results(bench_dataset):
    """Train every model once; later tests reuse the grid."""
    results = {}
    for name in MODELS:
        _, results[name] = train_and_evaluate(name, bench_dataset)
    return results


def test_table3_overall_comparison(benchmark, bench_dataset, table3_results):
    """Regenerate Table III and check the winner structure."""

    def report():
        lines = [
            "TABLE III — OVERALL PERFORMANCE COMPARISONS",
            "(per task: MRR@10 NDCG@10 MRR@100 NDCG@100)",
        ]
        lines += [metrics_row(name, table3_results[name]) for name in MODELS]
        best_baseline_b = max(
            (n for n in MODELS if n != "MGBR"),
            key=lambda n: table3_results[n]["@10"].task_b["MRR@10"],
        )
        mgbr_b = table3_results["MGBR"]["@10"].task_b["MRR@10"]
        base_b = table3_results[best_baseline_b]["@10"].task_b["MRR@10"]
        lines.append(
            f"\nTask-B improvement over strongest baseline ({best_baseline_b}): "
            f"{100 * (mgbr_b - base_b) / base_b:+.2f}%"
        )
        return "\n".join(lines)

    text = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table3_overall.txt", text)

    mgbr = table3_results["MGBR"]["@10"]
    baselines = {n: table3_results[n]["@10"] for n in MODELS if n != "MGBR"}

    # MGBR wins Task B outright (the paper's headline result).
    best_b = max(r.task_b["MRR@10"] for r in baselines.values())
    assert mgbr.task_b["MRR@10"] > best_b, "MGBR must win Task B"

    # Task-B relative margin exceeds the Task-A one.
    best_a = max(r.task_a["MRR@10"] for r in baselines.values())
    margin_a = (mgbr.task_a["MRR@10"] - best_a) / best_a
    margin_b = (mgbr.task_b["MRR@10"] - best_b) / best_b
    assert margin_b > margin_a, "Task-B margin should dominate (paper Sec. III-E.1)"

    # MGBR competitive on Task A: best, or within 10% of the best
    # baseline.  (On Beibei MGBR wins Task A by ~10%; on the synthetic
    # world Task A sits near its learnability ceiling for all models, so
    # the spread is compressed — see EXPERIMENTS.md.)
    assert mgbr.task_a["MRR@10"] > 0.90 * best_a


def test_table3_group_buying_baselines_ordering(table3_results):
    """GBGCN (graph propagation) at least matches GBMF (plain MF) on
    Task A — paper Sec. III-E.2 ("GBGCN has better performance")."""
    gbgcn = table3_results["GBGCN"]["@10"]
    gbmf = table3_results["GBMF"]["@10"]
    assert gbgcn.task_a["MRR@10"] > 0.97 * gbmf.task_a["MRR@10"]


def test_table3_all_models_beat_random_on_task_a(table3_results):
    """Sanity: every trained model learned something on Task A."""
    random_mrr = sum(1.0 / r for r in range(1, 11)) / 10
    for name in MODELS:
        assert table3_results[name]["@10"].task_a["MRR@10"] > random_mrr, name
