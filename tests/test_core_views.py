"""Tests for the MGBR encoders: MultiViewEmbedding and HINEmbedding."""

import numpy as np
import pytest

from repro.baselines.base import EmbeddingBundle
from repro.core.views import HINEmbedding, MultiViewEmbedding
from repro.graph import build_views


class TestMultiViewEmbedding:
    def test_from_groups_builds_views(self, handmade_groups):
        encoder = MultiViewEmbedding.from_groups(
            handmade_groups, n_users=4, n_items=3, dim=6, n_layers=2, seed=0
        )
        bundle = encoder()
        assert isinstance(bundle, EmbeddingBundle)
        assert bundle.user.shape == (4, 12)       # 2d
        assert bundle.item.shape == (3, 12)
        assert bundle.participant.shape == (4, 12)

    def test_three_gcns_have_independent_parameters(self, handmade_groups):
        encoder = MultiViewEmbedding.from_groups(
            handmade_groups, 4, 3, dim=4, seed=0
        )
        w_ui = encoder.gcn_ui.features.weight.data
        w_pi = encoder.gcn_pi.features.weight.data
        assert w_ui.shape == w_pi.shape
        assert not np.allclose(w_ui, w_pi)

    def test_gradients_flow_into_all_views(self, handmade_groups):
        encoder = MultiViewEmbedding.from_groups(handmade_groups, 4, 3, dim=4, seed=0)
        bundle = encoder()
        (bundle.user.sum() + bundle.item.sum() + bundle.participant.sum()).backward()
        for gcn in (encoder.gcn_ui, encoder.gcn_pi, encoder.gcn_up):
            assert gcn.features.weight.grad is not None

    def test_eq4_to_6_concatenation_layout(self, handmade_groups):
        # e_u = UI || UP and e_p = PI || UP: the social halves coincide.
        views = build_views(handmade_groups, 4, 3)
        encoder = MultiViewEmbedding(views, dim=5, seed=0)
        bundle = encoder()
        np.testing.assert_allclose(
            bundle.user.data[:, 5:], bundle.participant.data[:, 5:]
        )
        assert not np.allclose(bundle.user.data[:, :5], bundle.participant.data[:, :5])

    def test_gain_parameter_spreads_embeddings(self, handmade_groups):
        small = MultiViewEmbedding.from_groups(handmade_groups, 4, 3, dim=6, seed=0, gain=1.0)
        large = MultiViewEmbedding.from_groups(handmade_groups, 4, 3, dim=6, seed=0, gain=6.0)
        spread = lambda e: float(e().user.data.std(axis=0).mean())
        assert spread(large) > spread(small)


class TestHINEmbedding:
    def test_roles_share_node_embedding(self, handmade_groups):
        encoder = HINEmbedding(handmade_groups, 4, 3, dim=6, seed=0)
        bundle = encoder()
        np.testing.assert_array_equal(bundle.user.data, bundle.participant.data)
        assert bundle.user.shape == (4, 12)   # 2d to match downstream dims
        assert bundle.item.shape == (3, 12)

    def test_single_gcn_structure(self, handmade_groups):
        # One GCN (at width 2d) instead of three (at width d): fewer
        # feature tables even though the layer weights are 4x wider.
        hin = HINEmbedding(handmade_groups, 4, 3, dim=6, seed=0)
        views = MultiViewEmbedding.from_groups(handmade_groups, 4, 3, dim=6, seed=0)
        hin_tables = [n for n, _ in hin.named_parameters() if "features" in n]
        view_tables = [n for n, _ in views.named_parameters() if "features" in n]
        assert len(hin_tables) == 1
        assert len(view_tables) == 3

    def test_gradients_flow(self, handmade_groups):
        encoder = HINEmbedding(handmade_groups, 4, 3, dim=4, seed=0)
        bundle = encoder()
        bundle.item.sum().backward()
        assert encoder.gcn.features.weight.grad is not None
