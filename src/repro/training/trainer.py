"""Joint two-task trainer implementing the paper's optimisation loop.

Each training step draws one mini-batch of Task-A positives and one of
Task-B positives (both with 1:``train_negatives`` negative sampling,
Sec. III-A2), shares a single encoder pass across both tasks and all
negatives, assembles Eq. 25's objective

    ``L = L_A + β L_B + β_A L'_A + β_B L'_B``

(the auxiliary terms only for models that support them), back-propagates
and takes an Adam step (Sec. II-F).  Early stopping tracks a validation
metric with patience.

Planned optimisation step (``dedup``)
-------------------------------------
A step's scoring requests are massively redundant: every Task-A/B user
is re-encoded ``1 + train_negatives`` times, and the auxiliary losses
(Eq. 21/22/24) repeat each positive triple's ``(u, i)`` / ``(u, p)``
pair ``aux_negatives`` times.  With ``dedup=True`` (or ``"auto"`` on a
model whose per-row scoring is expensive) the step compiles all of its
positive, negative and auxiliary-corruption requests into
:class:`repro.plan.PlannedBatch` — *with gradients*: unique requests
are scored once through the model's planned hooks (MGBR's factorized
expert/gate stack via ``planned_joint_logits``, pair dedup via the
``_score_*_plan`` hooks otherwise) and scattered back to the loss rows
through autograd gathers, so the backward pass flows through the dedup
maps into the encoder.  The Task-A pair requests ride in the same plan
as the explicit-participant corruption triples via the model's
``mean_participant_id`` sentinel, and the item-corrupted triples shared
by ``L'_A`` and ``L'_B`` are scored once.  Losses match the flat step
up to float re-association (bit-identical for pure pair-dedup models —
see tests/test_training.py's parity suite).

Each step's wall-clock is split into ``sampling`` / ``forward`` /
``backward`` / ``optimizer`` phases, surfaced per epoch via
:class:`repro.training.history.EpochRecord.phases`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.config import MGBRConfig
from repro.core.losses import (
    aux_loss_task_a,
    aux_loss_task_b,
    aux_losses_from_scores,
    bpr_loss,
    total_loss,
)
from repro.data.batching import iter_task_a_batches, iter_task_b_batches
from repro.data.negative import NegativeSampler
from repro.data.samples import extract_task_a, extract_task_b
from repro.data.schema import GroupBuyingDataset
from repro.eval.protocol import EvalProtocol
from repro.nn.optim import Adam, clip_grad_norm
from repro.plan import PlannedBatch
from repro.training.history import EpochRecord, History
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng, spawn_rngs

__all__ = ["TrainConfig", "Trainer"]

logger = get_logger("training")


@dataclass
class TrainConfig:
    """Loop hyper-parameters (model architecture lives in the model).

    Attributes mirror the paper's Table II where applicable:
    ``batch_size`` |B|, ``learning_rate`` ρ, ``train_negatives`` the 1:9
    sampling ratio, ``beta``/``beta_a``/``beta_b`` the loss weights, and
    ``aux_negatives`` |T|.
    """

    epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 2e-4
    train_negatives: int = 9
    negative_pool_size: int = 0  # >0 pre-samples that many negatives per
                                 # training row once and rotates through
                                 # them across epochs (ROADMAP
                                 # training-path batching); 0 keeps the
                                 # per-step rejection-sampling default
    beta: float = 1.0
    beta_a: float = 0.3
    beta_b: float = 0.3
    aux_negatives: int = 99
    aux_a_mode: str = "literal"
    grad_clip: float = 5.0
    eval_every: int = 0          # 0 disables periodic validation
    eval_max_instances: Optional[int] = 200
    patience: int = 0            # 0 disables early stopping
    monitor: str = "combined"    # validation metric for best/patience;
                                 # "combined" = A/MRR@10 + B/MRR@10 (both
                                 # sub-tasks matter, as in the paper)
    restore_best: bool = False   # reload the best-monitor weights after fit()
    eval_dtype: str = "float64"  # periodic-validation scoring precision;
                                 # "float32" opts into the inference fast
                                 # path (see repro.eval.protocol)
    dedup: object = "auto"       # route _step through the planned/dedup
                                 # scoring path: True | False | "auto"
                                 # (let the model's cost hint decide —
                                 # planned for the expert/gate stack,
                                 # flat for near-free dot-product
                                 # scorers; see the module docstring)
    sparse_updates: bool = False # lazy per-row Adam on embedding-store
                                 # tables: only rows a step's gathers
                                 # touched get moment decay + update
                                 # (repro.nn.optim.Adam(lazy_rows=True);
                                 # lazy-Adam semantics — keep False for
                                 # bit-parity with the dense optimizer)
    seed: SeedLike = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.dedup not in (True, False, "auto"):
            raise ValueError(
                f"dedup must be True, False or 'auto', got {self.dedup!r}"
            )

    @classmethod
    def from_mgbr(cls, config: MGBRConfig, **overrides) -> "TrainConfig":
        """Derive loop settings from an :class:`MGBRConfig`."""
        base = dict(
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            train_negatives=config.train_negatives,
            beta=config.beta,
            beta_a=config.beta_a,
            beta_b=config.beta_b,
            aux_negatives=config.aux_negatives,
            aux_a_mode=config.aux_a_mode,
            grad_clip=config.grad_clip,
            eval_dtype=config.inference_dtype,
            seed=config.seed,
        )
        base.update(overrides)
        return cls(**base)


class Trainer:
    """Drives joint optimisation of any :class:`GroupBuyingRecommender`.

    Parameters
    ----------
    model: the recommender (MGBR, a variant, or a baseline).
    dataset: supplies the train split, samplers and validation split.
    config: loop hyper-parameters.
    """

    def __init__(
        self,
        model,
        dataset: GroupBuyingDataset,
        config: Optional[TrainConfig] = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        rng_sampler, rng_batches = spawn_rngs(self.config.seed, 2)
        self.sampler = NegativeSampler(dataset, seed=rng_sampler)
        self._batch_rng = rng_batches
        self.task_a = extract_task_a(dataset.train)
        self.task_b = extract_task_b(dataset.train)
        if len(self.task_a) == 0 or len(self.task_b) == 0:
            raise ValueError("training split yields no samples for one of the tasks")
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            lazy_rows=self.config.sparse_updates,
        )
        self.history = History()
        self._epoch = 0
        self._pool_a = self._pool_b = None
        if self.config.negative_pool_size > 0:
            if self.config.negative_pool_size < self.config.train_negatives:
                raise ValueError(
                    f"negative_pool_size {self.config.negative_pool_size} < "
                    f"train_negatives {self.config.train_negatives}"
                )
            # One rejection-sampling pass per task for the whole run; the
            # per-step draws below become pool gathers.
            self._pool_a = self.sampler.build_item_pool(
                self.task_a.users, self.config.negative_pool_size
            )
            self._pool_b = self.sampler.build_participant_pool(
                self.task_b.users, self.task_b.items, self.config.negative_pool_size
            )
        resolver = getattr(model, "resolve_dedup", None)
        if resolver is not None and hasattr(model, "_score_item_plan"):
            # Default duplication hint: training pairs are near-unique
            # (each (u, i±) appears once per step), so a pure pair-dedup
            # model gains ~nothing from planning here; the factorized
            # stack's entity-level gains are priced into its
            # scoring_cost_hint.  See prefers_planned().
            self._use_planned = resolver(self.config.dedup)
        else:
            # Duck-typed models without the planned hooks only take the
            # planned path when explicitly asked (and then fail loudly).
            self._use_planned = self.config.dedup is True
        self._phase_totals: Dict[str, float] = {}
        self._validation_protocol: Optional[EvalProtocol] = None
        if self.config.eval_every and dataset.validation:
            self._validation_protocol = EvalProtocol(
                dataset,
                n_negatives=9,
                cutoff=10,
                split="validation",
                max_instances=self.config.eval_max_instances,
                dtype=self.config.eval_dtype,
            )

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _paired_batches(self) -> Iterator[Dict[str, Dict[str, np.ndarray]]]:
        """Zip Task-A and Task-B batches, cycling the shorter stream."""
        cfg = self.config
        n_a = max(1, (len(self.task_a) + cfg.batch_size - 1) // cfg.batch_size)
        n_b = max(1, (len(self.task_b) + cfg.batch_size - 1) // cfg.batch_size)
        steps = max(n_a, n_b)
        gen_a = itertools.cycle(
            iter_task_a_batches(self.task_a, cfg.batch_size, seed=self._batch_rng)
        )
        gen_b = itertools.cycle(
            iter_task_b_batches(self.task_b, cfg.batch_size, seed=self._batch_rng)
        )
        for _ in range(steps):
            yield {"a": next(gen_a), "b": next(gen_b)}

    # ------------------------------------------------------------------
    # One optimisation step
    # ------------------------------------------------------------------
    def _draw_negatives(
        self, batch_a: Dict[str, np.ndarray], batch_b: Dict[str, np.ndarray]
    ) -> Dict[str, Optional[np.ndarray]]:
        """Draw every random id the step needs, in one place.

        The draw order (Task-A negatives, Task-B negatives, item
        corruptions, participant corruptions) matches the historical
        interleaved step, so a fixed seed produces identical batches on
        the flat and planned paths — the basis of the parity tests.
        ``corrupted_*`` are ``None`` when the model takes no auxiliary
        losses.
        """
        cfg = self.config
        if self._pool_a is not None:
            neg_items = self._pool_a.draw(
                batch_a["index"], cfg.train_negatives, epoch=self._epoch
            )
        else:
            neg_items = self.sampler.sample_items_batch(
                batch_a["users"], cfg.train_negatives
            )
        users_b, items_b = batch_b["users"], batch_b["items"]
        if self._pool_b is not None:
            neg_parts = self._pool_b.draw(
                batch_b["index"], cfg.train_negatives, epoch=self._epoch
            )
        else:
            neg_parts = self.sampler.sample_participants_batch(
                users_b, items_b, cfg.train_negatives
            )
        corrupted_items = corrupted_parts = None
        use_aux = getattr(self.model, "supports_aux_losses", False) and (
            cfg.beta_a > 0 or cfg.beta_b > 0
        )
        if use_aux:
            corrupted_items = self.sampler.corrupt_items(
                users_b, items_b, cfg.aux_negatives
            )
            corrupted_parts = self.sampler.corrupt_participants(
                users_b, items_b, cfg.aux_negatives
            )
        return {
            "neg_items": neg_items,
            "neg_parts": neg_parts,
            "corrupted_items": corrupted_items,
            "corrupted_parts": corrupted_parts,
        }

    def _flat_losses(self, emb, batch_a, batch_b, draws) -> Tuple:
        """The historical step: score every loss row through the model."""
        cfg = self.config
        model = self.model

        # --- Task A (Eq. 19, L_A) -------------------------------------
        users_a, items_a = batch_a["users"], batch_a["items"]
        pos_a = model.score_items_from(emb, users_a, items_a, raw=True)
        neg_items = draws["neg_items"]
        neg_a = model.score_items_from(
            emb,
            np.repeat(users_a, cfg.train_negatives),
            neg_items.ravel(),
            raw=True,
        ).reshape(len(users_a), cfg.train_negatives)
        loss_a = bpr_loss(pos_a, neg_a)

        # --- Task B (Eq. 19, L_B) -------------------------------------
        users_b, items_b, parts_b = (
            batch_b["users"],
            batch_b["items"],
            batch_b["participants"],
        )
        pos_b = model.score_participants_from(emb, users_b, items_b, parts_b, raw=True)
        neg_parts = draws["neg_parts"]
        neg_b = model.score_participants_from(
            emb,
            np.repeat(users_b, cfg.train_negatives),
            np.repeat(items_b, cfg.train_negatives),
            neg_parts.ravel(),
            raw=True,
        ).reshape(len(users_b), cfg.train_negatives)
        loss_b = bpr_loss(pos_b, neg_b)

        # --- Auxiliary losses (Sec. II-G) ------------------------------
        aux_a = aux_b = None
        corrupted_items = draws["corrupted_items"]
        if corrupted_items is not None:
            if cfg.beta_a > 0:
                aux_a = aux_loss_task_a(
                    model, emb, users_b, items_b, parts_b,
                    corrupted_items, draws["corrupted_parts"], mode=cfg.aux_a_mode,
                )
            if cfg.beta_b > 0:
                aux_b = aux_loss_task_b(
                    model, emb, users_b, items_b, parts_b, corrupted_items
                )
        return loss_a, loss_b, aux_a, aux_b

    def _step_planned_batches(
        self, batch_a, batch_b, draws
    ) -> Dict[str, PlannedBatch]:
        """Compile one step's requests into its planned batch(es).

        ``{"joint": batch}`` for models with a ``planned_joint_logits``
        stack (every request of the step in one plan), else one plan per
        head (``{"task_a": ..., "task_b": ...}``).  Shared with
        benchmarks/bench_train_throughput.py so the reported plan
        statistics describe exactly what the step scores.
        """
        cfg = self.config
        n, t = cfg.train_negatives, cfg.aux_negatives
        users_a, items_a = batch_a["users"], batch_a["items"]
        users_b, items_b, parts_b = (
            batch_b["users"],
            batch_b["items"],
            batch_b["participants"],
        )
        neg_items, neg_parts = draws["neg_items"], draws["neg_parts"]
        corrupted_items = draws["corrupted_items"]
        corrupted_parts = draws["corrupted_parts"]
        if getattr(self.model, "planned_joint_logits", None) is not None:
            segments = {
                "pos_a": (users_a, items_a, None, (len(users_a),)),
                "neg_a": (
                    np.repeat(users_a, n), neg_items.ravel(), None, neg_items.shape
                ),
            }
            if corrupted_items is not None:
                u_rep = np.repeat(users_b, t)
                p_rep = np.repeat(parts_b, t)
                if cfg.beta_a > 0:
                    segments["aux_tp"] = (
                        u_rep, np.repeat(items_b, t),
                        corrupted_parts.ravel(), corrupted_parts.shape,
                    )
                segments["aux_ti"] = (
                    u_rep, corrupted_items.ravel(), p_rep, corrupted_items.shape
                )
            segments["pos_b"] = (users_b, items_b, parts_b, (len(users_b),))
            segments["neg_b"] = (
                np.repeat(users_b, n), np.repeat(items_b, n),
                neg_parts.ravel(), neg_parts.shape,
            )
            joint = PlannedBatch.build(
                segments, sentinel=getattr(self.model, "mean_participant_id", None)
            )
            return {"joint": joint}
        return {
            "task_a": PlannedBatch.build({
                "pos": (users_a, items_a, None, (len(users_a),)),
                "neg": (
                    np.repeat(users_a, n), neg_items.ravel(), None, neg_items.shape
                ),
            }),
            "task_b": PlannedBatch.build({
                "pos": (users_b, items_b, parts_b, (len(users_b),)),
                "neg": (
                    np.repeat(users_b, n), np.repeat(items_b, n),
                    neg_parts.ravel(), neg_parts.shape,
                ),
            }),
        }

    def _planned_losses(self, emb, batch_a, batch_b, draws) -> Tuple:
        """The deduplicated step: compile, score unique requests, scatter.

        With a ``planned_joint_logits`` model (the MGBR family) every
        request of the step — both tasks' positives and negatives plus
        the auxiliary corruption triples — lands in *one*
        :class:`repro.plan.PlannedBatch`: the expert/gate stack computes
        both task towers anyway, Task-A pair requests ride along via the
        mean-participant sentinel, and the ``(u, i', p)`` bank shared by
        ``L'_A`` and ``L'_B`` (and the Task-B positives shared by
        ``L_B`` and ``L'_B``) is scored once.  Pair-dedup models take
        one plan per head through the ``_score_*_plan`` hooks instead;
        auxiliary losses (no in-repo model needs this combination) fall
        back to the flat helpers.
        """
        cfg = self.config
        model = self.model
        users_b, items_b, parts_b = (
            batch_b["users"],
            batch_b["items"],
            batch_b["participants"],
        )
        corrupted_items = draws["corrupted_items"]
        corrupted_parts = draws["corrupted_parts"]
        batches = self._step_planned_batches(batch_a, batch_b, draws)

        if "joint" in batches:
            batch = batches["joint"]
            logits_a, logits_b = model.planned_joint_logits(emb, batch.plan)
            flat_a = batch.scatter(logits_a)
            flat_b = batch.scatter(logits_b)
            loss_a = bpr_loss(batch.take(flat_a, "pos_a"), batch.take(flat_a, "neg_a"))
            loss_b = bpr_loss(batch.take(flat_b, "pos_b"), batch.take(flat_b, "neg_b"))
            aux_a = aux_b = None
            if corrupted_items is not None:
                # Both auxiliary losses read the same scattered
                # corruption segments (the (u, i', p) bank is scored
                # once for L'_A and L'_B; listnet's softmax normalizer
                # is built once over that bank).
                aux_a, aux_b = aux_losses_from_scores(
                    batch.take(flat_b, "pos_b"),
                    batch.take(flat_a, "aux_tp") if cfg.beta_a > 0 else None,
                    batch.take(flat_a, "aux_ti") if cfg.beta_a > 0 else None,
                    batch.take(flat_b, "aux_ti"),
                    mode=cfg.aux_a_mode,
                    want_a=cfg.beta_a > 0,
                    want_b=cfg.beta_b > 0,
                )
            return loss_a, loss_b, aux_a, aux_b

        # Per-head pair/triple dedup for models without a joint stack.
        batch_a_plan = batches["task_a"]
        flat_a = batch_a_plan.scatter(model._score_item_plan(emb, batch_a_plan.plan))
        loss_a = bpr_loss(
            batch_a_plan.take(flat_a, "pos"), batch_a_plan.take(flat_a, "neg")
        )
        batch_b_plan = batches["task_b"]
        flat_b = batch_b_plan.scatter(
            model._score_participant_plan(emb, batch_b_plan.plan)
        )
        loss_b = bpr_loss(
            batch_b_plan.take(flat_b, "pos"), batch_b_plan.take(flat_b, "neg")
        )
        aux_a = aux_b = None
        if corrupted_items is not None:
            if cfg.beta_a > 0:
                aux_a = aux_loss_task_a(
                    model, emb, users_b, items_b, parts_b,
                    corrupted_items, corrupted_parts, mode=cfg.aux_a_mode,
                )
            if cfg.beta_b > 0:
                aux_b = aux_loss_task_b(
                    model, emb, users_b, items_b, parts_b, corrupted_items
                )
        return loss_a, loss_b, aux_a, aux_b

    def _step(self, batch_a: Dict[str, np.ndarray], batch_b: Dict[str, np.ndarray]) -> Dict[str, float]:
        cfg = self.config
        model = self.model
        t0 = time.perf_counter()
        draws = self._draw_negatives(batch_a, batch_b)
        t1 = time.perf_counter()
        # Clear grads (and last step's touched-row records) *before* the
        # forward: embedding-store gathers record touched_rows while the
        # losses are built, and the lazy-row optimizer mode consumes them
        # at step() — zeroing between forward and backward would wipe
        # them and silently degrade sparse_updates to dense updates.
        model.zero_grad()
        emb = model.compute_embeddings()
        losses_fn = self._planned_losses if self._use_planned else self._flat_losses
        loss_a, loss_b, aux_a, aux_b = losses_fn(emb, batch_a, batch_b, draws)
        loss = total_loss(loss_a, loss_b, aux_a, aux_b, cfg.beta, cfg.beta_a, cfg.beta_b)
        t2 = time.perf_counter()
        loss.backward()
        if cfg.grad_clip > 0:
            clip_grad_norm(model.parameters(), cfg.grad_clip)
        t3 = time.perf_counter()
        self.optimizer.step()
        model.invalidate_cache()
        t4 = time.perf_counter()
        for phase, spent in (
            ("sampling", t1 - t0), ("forward", t2 - t1),
            ("backward", t3 - t2), ("optimizer", t4 - t3),
        ):
            self._phase_totals[phase] = self._phase_totals.get(phase, 0.0) + spent
        return {
            "L_A": float(loss_a.data),
            "L_B": float(loss_b.data),
            "L'_A": float(aux_a.data) if aux_a is not None else 0.0,
            "L'_B": float(aux_b.data) if aux_b is not None else 0.0,
            "total": float(loss.data),
        }

    # ------------------------------------------------------------------
    # Epoch / full loop
    # ------------------------------------------------------------------
    def train_epoch(self) -> EpochRecord:
        """Run one epoch; returns (and records) its :class:`EpochRecord`."""
        self.model.train()
        started = time.perf_counter()
        totals: Dict[str, float] = {}
        self._phase_totals = {}
        steps = 0
        for pair in self._paired_batches():
            losses = self._step(pair["a"], pair["b"])
            for key, value in losses.items():
                totals[key] = totals.get(key, 0.0) + value
            steps += 1
        self._epoch += 1
        record = EpochRecord(
            epoch=self._epoch,
            losses={k: v / steps for k, v in totals.items()},
            seconds=time.perf_counter() - started,
            phases={k: round(v, 4) for k, v in self._phase_totals.items()},
        )
        if (
            self._validation_protocol is not None
            and self._epoch % self.config.eval_every == 0
        ):
            record.metrics = self._validation_protocol.run(self.model).flat()
        self.history.append(record)
        if self.config.verbose:
            logger.info(record.line())
        return record

    def fit(self) -> History:
        """Train for ``config.epochs`` epochs with optional early stopping.

        With ``restore_best=True`` (and periodic validation enabled) the
        model's parameters are rolled back to the epoch that maximised
        ``config.monitor`` — matching the paper's practice of reporting
        tuned/best results rather than the last epoch.
        """
        cfg = self.config
        best = -np.inf
        best_state = None
        stale = 0
        for _ in range(cfg.epochs):
            record = self.train_epoch()
            value = self._monitor_value(record)
            if value is not None:
                if value > best + 1e-6:
                    best, stale = value, 0
                    if cfg.restore_best:
                        best_state = self.model.state_dict()
                elif cfg.patience:
                    stale += 1
                    if stale >= cfg.patience:
                        if cfg.verbose:
                            logger.info(
                                "early stop at epoch %d (%s stalled at %.4f)",
                                record.epoch, cfg.monitor, best,
                            )
                        break
        if cfg.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
            self.model.invalidate_cache()
        return self.history

    def _monitor_value(self, record: EpochRecord) -> Optional[float]:
        """Resolve the monitored metric for ``record`` (None if absent)."""
        if not record.metrics:
            return None
        if self.config.monitor == "combined":
            a = record.metrics.get("A/MRR@10")
            b = record.metrics.get("B/MRR@10")
            if a is None or b is None:
                return None
            return a + b
        return record.metrics.get(self.config.monitor)
