"""NGCF baseline (Wang et al., SIGIR 2019) tailored to group buying.

Neural graph collaborative filtering propagates embeddings over the
user-item bipartite graph with first- and second-order terms:

``E^{l+1} = LeakyReLU( (Â + I) E^l W₁ + (Â E^l) ⊙ E^l W₂ )``

and represents each entity by the concatenation of all layer outputs.
For group buying the interaction graph merges *both* roles' edges
(launches and joins), which is how a role-agnostic CF model consumes
deal groups; per the paper this makes NGCF the strongest non-group
baseline because the GCN captures high-order connectivity while ignoring
the (noisy) social semantics.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.graph.adjacency import edges_to_adjacency, normalized_adjacency
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.sparse import spmm
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["NGCF"]


class _NGCFLayer(Module):
    """One NGCF propagation layer (bi-interaction message passing)."""

    def __init__(self, dim: int, seed=None) -> None:
        super().__init__()
        rngs = spawn_rngs(seed, 2)
        self.w1 = Linear(dim, dim, bias=False, seed=rngs[0])
        self.w2 = Linear(dim, dim, bias=False, seed=rngs[1])

    def forward(self, a_hat: sp.spmatrix, features: Tensor) -> Tensor:
        """``LeakyReLU((Â+I) X W₁ + (Â X) ⊙ X W₂)``."""
        propagated = spmm(a_hat, features)
        first_order = self.w1(propagated + features)
        second_order = self.w2(propagated * features)
        return F.leaky_relu(first_order + second_order, negative_slope=0.2)


class NGCF(GroupBuyingRecommender):
    """NGCF over the merged launch+join interaction graph.

    Parameters
    ----------
    groups: training deal groups (interaction edges come from these).
    dim: embedding width per layer.
    n_layers: propagation depth (original uses 3; 2 matches H here).
    seed: initialisation seed.
    """

    def __init__(
        self,
        groups: Sequence,
        n_users: int,
        n_items: int,
        dim: int = 32,
        n_layers: int = 2,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(n_users, n_items)
        rngs = spawn_rngs(seed, n_layers + 1)
        edges = []
        for g in groups:
            edges.append((g.initiator, n_users + g.item))
            for p in g.participants:
                edges.append((p, n_users + g.item))
        n_nodes = n_users + n_items
        # NGCF uses the Laplacian-normalized adjacency without self-loops;
        # the (Â + I) self term is added inside the layer.
        self.a_hat = normalized_adjacency(
            edges_to_adjacency(edges, n_nodes), add_self_loops=False
        )
        self.features = Embedding(n_nodes, dim, seed=rngs[0])
        self._layers: List[_NGCFLayer] = []
        for layer_idx in range(n_layers):
            layer = _NGCFLayer(dim, seed=rngs[layer_idx + 1])
            setattr(self, f"ngcf{layer_idx}", layer)
            self._layers.append(layer)

    def compute_embeddings(self) -> EmbeddingBundle:
        """Propagate and concatenate all layer outputs per entity."""
        from repro.nn.tensor import concat

        x = self.features.all()
        outputs = [x]
        for layer in self._layers:
            x = layer(self.a_hat, x)
            outputs.append(x)
        final = concat(outputs, axis=1)
        users = final[slice(0, self.n_users)]
        items = final[slice(self.n_users, None)]
        return EmbeddingBundle(user=users, item=items, participant=users)
