#!/usr/bin/env python3
"""Embedding case study — the analysis behind the paper's Fig. 6.

Trains full MGBR and the MGBR-M-R ablation on the same dataset, projects
the learned embeddings of a handful of deal groups to 2-D with PCA and
prints (a) an ASCII scatter of the projected points and (b) the
within/between-group dispersion ratio.  The paper's claim: with shared
experts + auxiliary losses, the members of one group cluster much more
tightly (lower ratio) than without them.

Run:  python examples/embedding_case_study.py  [--epochs 12]
"""

import argparse

import numpy as np

from repro.core import MGBRConfig, build_variant
from repro.data import SyntheticConfig, generate_dataset
from repro.eval import run_case_study
from repro.training import TrainConfig, Trainer


def ascii_scatter(points: np.ndarray, labels: np.ndarray, width: int = 56, height: int = 18) -> str:
    """Render labelled 2-D points as a terminal scatter plot."""
    glyphs = "ABCDEFGH"
    x, y = points[:, 0], points[:, 1]
    grid = [[" "] * width for _ in range(height)]
    span = lambda v: (v - v.min()) / (v.max() - v.min() + 1e-12)
    for px, py, label in zip(span(x), span(y), labels):
        col = min(int(px * (width - 1)), width - 1)
        row = min(int((1 - py) * (height - 1)), height - 1)
        grid[row][col] = glyphs[int(label) % len(glyphs)]
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in grid] + [border])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--groups", type=int, default=6, help="groups to visualise")
    args = parser.parse_args()

    dataset = generate_dataset(
        SyntheticConfig(n_users=250, n_items=80, n_groups=1000), seed=7
    )
    base = MGBRConfig.small(d=16, learning_rate=5e-3, gcn_gain=10.0, seed=0)

    ratios = {}
    for name in ("MGBR", "MGBR-M-R"):
        model = build_variant(name, dataset.train, dataset.n_users, dataset.n_items, base=base)
        Trainer(model, dataset, TrainConfig.from_mgbr(base, epochs=args.epochs)).fit()
        model.refresh_cache()
        study = run_case_study(model, dataset.train, n_groups=args.groups, seed=3)
        ratios[name] = study.dispersion_ratio
        print(f"\n=== {name} ===  (letters = groups; initiator+item+participants share one letter)")
        print(ascii_scatter(study.points, study.labels))
        print(f"dispersion ratio (within-group / between-group): {study.dispersion_ratio:.3f}")
        print(f"PCA explained variance: {study.explained_variance.round(3)}")

    print("\nPaper's Fig. 6 claim: full MGBR clusters each group more tightly.")
    verdict = "CONFIRMED" if ratios["MGBR"] < ratios["MGBR-M-R"] else "NOT REPRODUCED"
    print(f"MGBR ratio {ratios['MGBR']:.3f} vs MGBR-M-R ratio {ratios['MGBR-M-R']:.3f} -> {verdict}")


if __name__ == "__main__":
    main()
