"""Ranking metrics: MRR@N and NDCG@N (plus HR@N).

The paper evaluates with MRR@N (mean reciprocal rank) and NDCG@N
(normalized discounted cumulative gain), Sec. III-D.  Every test instance
has exactly one positive inside a candidate list (1 positive : 9 or 99
negatives), so per-instance:

* ``MRR@N  = 1/rank``            if ``rank <= N`` else 0
* ``NDCG@N = 1/log2(rank + 1)``  if ``rank <= N`` else 0  (IDCG = 1)
* ``HR@N   = 1``                 if ``rank <= N`` else 0

where ``rank`` is the 1-based position of the positive when candidates
are sorted by descending score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "rank_of_positive",
    "reciprocal_rank",
    "ndcg",
    "hit",
    "RankingAccumulator",
]


def rank_of_positive(scores: Sequence[float], positive_index: int = 0) -> int:
    """1-based rank of ``scores[positive_index]`` under descending sort.

    Ties are broken *against* the positive (ties with negatives count as
    ranked above it), the pessimistic convention — a model cannot earn
    metric mass by outputting constant scores.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if not 0 <= positive_index < scores.size:
        raise IndexError(
            f"positive_index {positive_index} outside candidate list of size {scores.size}"
        )
    target = scores[positive_index]
    others = np.delete(scores, positive_index)
    return int(1 + (others >= target).sum())


def reciprocal_rank(rank: int, cutoff: int) -> float:
    """``1/rank`` truncated at ``cutoff`` (the @N in MRR@N)."""
    _check_rank(rank, cutoff)
    return 1.0 / rank if rank <= cutoff else 0.0


def ndcg(rank: int, cutoff: int) -> float:
    """Single-positive NDCG@cutoff: ``1/log2(rank+1)`` inside the cutoff.

    With one relevant item the ideal DCG is 1, so DCG is already
    normalized.
    """
    _check_rank(rank, cutoff)
    return 1.0 / np.log2(rank + 1.0) if rank <= cutoff else 0.0


def hit(rank: int, cutoff: int) -> float:
    """Hit-rate indicator: 1 if the positive made the top-``cutoff``."""
    _check_rank(rank, cutoff)
    return 1.0 if rank <= cutoff else 0.0


def _check_rank(rank: int, cutoff: int) -> None:
    if rank < 1:
        raise ValueError(f"rank is 1-based, got {rank}")
    if cutoff < 1:
        raise ValueError(f"cutoff must be >= 1, got {cutoff}")


@dataclass
class RankingAccumulator:
    """Accumulates per-instance ranks and reports mean metrics.

    One accumulator per (task, protocol) pair; the evaluation protocol
    feeds it the rank of each test instance's positive and finally calls
    :meth:`result`.
    """

    cutoff: int
    _ranks: list = None

    def __post_init__(self) -> None:
        if self.cutoff < 1:
            raise ValueError(f"cutoff must be >= 1, got {self.cutoff}")
        self._ranks = []

    def add(self, rank: int) -> None:
        """Record one test instance's positive rank."""
        if rank < 1:
            raise ValueError(f"rank is 1-based, got {rank}")
        self._ranks.append(int(rank))

    def extend(self, ranks: Iterable[int]) -> None:
        """Record many ranks at once."""
        for r in ranks:
            self.add(r)

    def __len__(self) -> int:
        return len(self._ranks)

    def result(self) -> Dict[str, float]:
        """Mean MRR@cutoff / NDCG@cutoff / HR@cutoff over recorded instances."""
        if not self._ranks:
            raise ValueError("no ranks recorded")
        n = self.cutoff
        return {
            f"MRR@{n}": float(np.mean([reciprocal_rank(r, n) for r in self._ranks])),
            f"NDCG@{n}": float(np.mean([ndcg(r, n) for r in self._ranks])),
            f"HR@{n}": float(np.mean([hit(r, n) for r in self._ranks])),
        }
