#!/usr/bin/env python3
"""Quickstart: train MGBR on a synthetic group-buying dataset.

This is the 5-minute tour of the library's public API:

1. generate a Beibei-style synthetic dataset (two-phase group buying),
2. build the MGBR model from its config,
3. train jointly on both sub-tasks with the paper's Eq. 25 objective,
4. evaluate with the paper's MRR@10 / NDCG@10 protocol.

Run:  python examples/quickstart.py
"""

from repro.core import MGBR, MGBRConfig
from repro.data import SyntheticConfig, compute_statistics, format_table1, generate_dataset
from repro.eval import evaluate_model
from repro.training import TrainConfig, Trainer

# ----------------------------------------------------------------------
# 1. Data: simulate the two-phase process of Fig. 1(b) — initiators
#    launch groups on preferred items; participants join by item taste
#    plus social affinity to the initiator.
# ----------------------------------------------------------------------
dataset = generate_dataset(
    SyntheticConfig(n_users=300, n_items=100, n_groups=1200),
    seed=7,
)
print(format_table1(compute_statistics(dataset)))
print()

# ----------------------------------------------------------------------
# 2. Model: the `small()` profile scales Table II down for the NumPy
#    substrate; swap in MGBRConfig.paper() to get d=128, K=6, |T|=99.
# ----------------------------------------------------------------------
config = MGBRConfig.small(d=16, learning_rate=5e-3, seed=0)
model = MGBR(dataset.train, dataset.n_users, dataset.n_items, config=config)
print(f"MGBR with {model.num_parameters():,} parameters "
      f"(d={config.d}, K={config.n_experts}, L={config.mtl_layers})")

# ----------------------------------------------------------------------
# 3. Train: BPR on both tasks + the two auxiliary losses (Eq. 25).
# ----------------------------------------------------------------------
trainer = Trainer(model, dataset, TrainConfig.from_mgbr(config, epochs=10, verbose=True))
history = trainer.fit()
print(f"\nfinal epoch losses: { {k: round(v, 4) for k, v in history.last().losses.items()} }")

# ----------------------------------------------------------------------
# 4. Evaluate: 1:9 candidate lists, MRR@10 / NDCG@10, both sub-tasks.
# ----------------------------------------------------------------------
result = evaluate_model(model, dataset, protocols=((9, 10),), max_instances=300)["@10"]
print("\nTask A (recommend an item for an initiator):")
for metric, value in result.task_a.items():
    print(f"  {metric:10s} {value:.4f}")
print("Task B (recommend a participant for a group):")
for metric, value in result.task_b.items():
    print(f"  {metric:10s} {value:.4f}")
