"""Property-based tests (hypothesis) for the autograd substrate.

These verify algebraic identities of the differentiation engine on
randomly generated shapes and values — complementing the pointwise
finite-difference tests with structural guarantees.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import concat, gradcheck, take_rows, tensor
from repro.nn import functional as F

_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False, width=64
)


def _matrix(max_rows=4, max_cols=4):
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=_floats))


@settings(max_examples=25, deadline=None)
@given(_matrix())
def test_sum_gradient_is_ones(values):
    t = tensor(values, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(values))


@settings(max_examples=25, deadline=None)
@given(_matrix(), st.floats(min_value=-2, max_value=2, allow_nan=False))
def test_scalar_mul_gradient_scales(values, c):
    t = tensor(values, requires_grad=True)
    (t * c).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(values, c))


@settings(max_examples=25, deadline=None)
@given(_matrix())
def test_add_self_doubles_gradient(values):
    t = tensor(values, requires_grad=True)
    (t + t).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(values, 2.0))


@settings(max_examples=20, deadline=None)
@given(_matrix())
def test_sigmoid_output_in_unit_interval(values):
    out = F.sigmoid(tensor(values)).data
    assert np.all(out > 0) and np.all(out < 1)


@settings(max_examples=20, deadline=None)
@given(_matrix())
def test_softmax_is_distribution(values):
    out = F.softmax(tensor(values), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(values.shape[0]), atol=1e-9)
    assert np.all(out >= 0)


@settings(max_examples=20, deadline=None)
@given(_matrix())
def test_logsigmoid_is_negative(values):
    out = F.logsigmoid(tensor(values)).data
    assert np.all(out <= 0)


@settings(max_examples=15, deadline=None)
@given(_matrix(3, 3))
def test_gradcheck_on_random_composite(values):
    t = tensor(values, requires_grad=True)
    assert gradcheck(lambda x: F.sigmoid(x * 2 + 1).sum() + (x * x).mean(), [t])


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(1, 4)), elements=_floats),
    st.data(),
)
def test_take_rows_gradient_counts_occurrences(values, data):
    n = values.shape[0]
    idx = data.draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=6))
    idx = np.asarray(idx)
    t = tensor(values, requires_grad=True)
    take_rows(t, idx).sum().backward()
    counts = np.bincount(idx, minlength=n).astype(float)
    np.testing.assert_allclose(t.grad, counts[:, None] * np.ones_like(values))


@settings(max_examples=20, deadline=None)
@given(_matrix(), _matrix())
def test_concat_then_split_roundtrip(a, b):
    if a.shape[0] != b.shape[0]:
        a = a[: min(a.shape[0], b.shape[0])]
        b = b[: min(a.shape[0], b.shape[0])]
    ta, tb = tensor(a), tensor(b)
    joined = concat([ta, tb], axis=1)
    np.testing.assert_array_equal(joined.data[:, : a.shape[1]], a)
    np.testing.assert_array_equal(joined.data[:, a.shape[1] :], b)


@settings(max_examples=20, deadline=None)
@given(_matrix())
def test_detach_stops_gradient(values):
    t = tensor(values, requires_grad=True)
    out = (t.detach() * 2).sum()
    assert not out.requires_grad
