"""Tests for weight-initialisation schemes."""

import numpy as np
import pytest

from repro.nn import init as inits


class TestNormal:
    def test_std_scaling(self, rng):
        values = inits.normal_((2000,), rng, std=2.0)
        assert values.std() == pytest.approx(2.0, rel=0.1)

    def test_zero_mean(self, rng):
        values = inits.normal_((5000,), rng)
        assert abs(values.mean()) < 0.05


class TestXavier:
    def test_uniform_bound(self, rng):
        shape = (64, 32)
        values = inits.xavier_uniform(shape, rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert values.min() >= -bound and values.max() <= bound

    def test_uniform_gain_scales_bound(self, rng):
        shape = (50, 50)
        small = np.abs(inits.xavier_uniform(shape, rng, gain=1.0)).max()
        large = np.abs(inits.xavier_uniform(shape, rng, gain=4.0)).max()
        assert large > 2.5 * small

    def test_normal_std(self, rng):
        shape = (200, 200)
        values = inits.xavier_normal(shape, rng)
        expected = np.sqrt(2.0 / 400)
        assert values.std() == pytest.approx(expected, rel=0.1)

    def test_1d_shape_fan(self, rng):
        values = inits.xavier_uniform((100,), rng)
        assert values.shape == (100,)

    def test_empty_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            inits.xavier_uniform((), rng)


class TestKaiming:
    def test_bound_uses_fan_in(self, rng):
        values = inits.kaiming_uniform((24, 100), rng)
        bound = np.sqrt(6.0 / 24)
        assert np.abs(values).max() <= bound


class TestZeros:
    def test_all_zero(self, rng):
        assert not inits.zeros_init((3, 4), rng).any()
