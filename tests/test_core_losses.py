"""Tests for the training objectives (Eq. 18-25)."""

import numpy as np
import pytest

from repro.core import MGBRConfig, bpr_loss, listwise_aux_loss, total_loss
from repro.core.losses import LossBreakdown, aux_loss_task_a, aux_loss_task_b
from repro.data import NegativeSampler, extract_task_b
from repro.nn import gradcheck, tensor


def _t(rng, *shape):
    return tensor(rng.normal(size=shape), requires_grad=True)


class TestBPR:
    def test_zero_when_pos_far_above_neg(self, rng):
        pos = tensor(np.full(4, 30.0))
        neg = tensor(np.full((4, 3), -30.0))
        assert float(bpr_loss(pos, neg).data) == pytest.approx(0.0, abs=1e-9)

    def test_ln2_at_equality(self):
        pos = tensor(np.zeros(5))
        neg = tensor(np.zeros((5, 2)))
        assert float(bpr_loss(pos, neg).data) == pytest.approx(np.log(2.0))

    def test_monotone_in_margin(self):
        neg = tensor(np.zeros((1, 1)))
        losses = [float(bpr_loss(tensor([m]), neg).data) for m in (-1.0, 0.0, 1.0, 2.0)]
        assert losses == sorted(losses, reverse=True)

    def test_gradcheck(self, rng):
        assert gradcheck(lambda p, n: bpr_loss(p, n), [_t(rng, 3), _t(rng, 3, 4)])

    def test_gradient_directions(self, rng):
        pos = _t(rng, 2)
        neg = _t(rng, 2, 3)
        bpr_loss(pos, neg).backward()
        # Positives pushed up (negative gradient), negatives pushed down.
        assert np.all(pos.grad <= 0)
        assert np.all(neg.grad >= 0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            bpr_loss(_t(rng, 3, 1), _t(rng, 3, 4))
        with pytest.raises(ValueError):
            bpr_loss(_t(rng, 3), _t(rng, 4, 2))


class TestListwiseAux:
    def test_literal_only_uses_participant_bank(self, rng):
        tp = _t(rng, 2, 3)
        ti = _t(rng, 2, 3)
        listwise_aux_loss(tp, ti, mode="literal").backward()
        assert tp.grad is not None and np.abs(tp.grad).sum() > 0
        # Item-corrupted triples carry label 0 and no -log(1-s) term.
        assert ti.grad is None or np.abs(ti.grad).sum() == 0

    def test_literal_decreases_as_tp_scores_rise(self):
        low = listwise_aux_loss(tensor(np.zeros((1, 4))), tensor(np.zeros((1, 4))), "literal")
        high = listwise_aux_loss(tensor(np.full((1, 4), 5.0)), tensor(np.zeros((1, 4))), "literal")
        assert float(high.data) < float(low.data)

    def test_listnet_pushes_item_bank_down(self, rng):
        tp = _t(rng, 2, 3)
        ti = _t(rng, 2, 3)
        listwise_aux_loss(tp, ti, mode="listnet").backward()
        # Item-corrupted slots have target 0: softmax CE gradient is their
        # probability mass, always >= 0 (ascent direction pushes them down).
        assert np.abs(ti.grad).sum() > 0
        assert np.all(ti.grad >= -1e-12)
        # Each row's gradients sum to zero (softmax shift invariance), so
        # the participant bank absorbs the opposite (upward) pressure.
        rows = tp.grad.sum(axis=1) + ti.grad.sum(axis=1)
        np.testing.assert_allclose(rows, 0.0, atol=1e-9)

    def test_listnet_gradcheck(self, rng):
        assert gradcheck(
            lambda a, b: listwise_aux_loss(a, b, "listnet"),
            [_t(rng, 2, 3), _t(rng, 2, 3)],
        )

    def test_listnet_matches_concat_softmax_reference(self, rng):
        # The two-bank logsumexp form must equal the classic
        # "softmax over the concatenated 2|T| bank, CE against uniform
        # T_P mass" definition it replaced.
        tp = _t(rng, 5, 7)
        ti = _t(rng, 5, 7)
        value = float(listwise_aux_loss(tp, ti, mode="listnet").data)
        logits = np.concatenate([tp.data, ti.data], axis=1)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        target = np.zeros_like(logits)
        target[:, :7] = 1.0 / 7
        reference = float(-(target * log_probs).sum(axis=1).mean())
        assert value == pytest.approx(reference, rel=1e-12, abs=1e-12)

    def test_listnet_extreme_logits_stay_finite(self):
        tp = tensor(np.full((2, 3), 800.0), requires_grad=True)
        ti = tensor(np.full((2, 3), -800.0), requires_grad=True)
        loss = listwise_aux_loss(tp, ti, mode="listnet")
        assert np.isfinite(loss.data)
        loss.backward()
        assert np.all(np.isfinite(tp.grad)) and np.all(np.isfinite(ti.grad))

    def test_literal_gradcheck(self, rng):
        assert gradcheck(
            lambda a, b: listwise_aux_loss(a, b, "literal"),
            [_t(rng, 2, 3), _t(rng, 2, 3)],
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            listwise_aux_loss(_t(rng, 2, 3), _t(rng, 2, 4))

    def test_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            listwise_aux_loss(_t(rng, 1, 2), _t(rng, 1, 2), mode="magic")


class TestModelAuxLosses:
    def test_aux_losses_on_real_model(self, tiny_dataset, tiny_mgbr):
        samples = extract_task_b(tiny_dataset.train)
        sampler = NegativeSampler(tiny_dataset, seed=0)
        users = samples.users[:4]
        items = samples.items[:4]
        parts = samples.participants[:4]
        ci = sampler.corrupt_items(users, items, 3)
        cp = sampler.corrupt_participants(users, items, 3)
        emb = tiny_mgbr.compute_embeddings()
        la = aux_loss_task_a(tiny_mgbr, emb, users, items, parts, ci, cp, mode="literal")
        lb = aux_loss_task_b(tiny_mgbr, emb, users, items, parts, ci)
        assert np.isfinite(la.data) and float(la.data) > 0
        assert np.isfinite(lb.data) and float(lb.data) > 0

    def test_aux_b_is_bpr_on_item_corruption(self, tiny_dataset, tiny_mgbr):
        # L'_B must fall when the model scores the true item's triple far
        # above corrupted ones — verified via the loss's own structure.
        samples = extract_task_b(tiny_dataset.train)
        sampler = NegativeSampler(tiny_dataset, seed=0)
        users, items, parts = samples.users[:2], samples.items[:2], samples.participants[:2]
        ci = sampler.corrupt_items(users, items, 2)
        emb = tiny_mgbr.compute_embeddings()
        loss = aux_loss_task_b(tiny_mgbr, emb, users, items, parts, ci)
        assert loss.data.shape == ()


class TestTotalLoss:
    def test_eq25_weighting(self):
        la, lb = tensor(1.0), tensor(2.0)
        aux_a, aux_b = tensor(3.0), tensor(4.0)
        out = total_loss(la, lb, aux_a, aux_b, beta=0.5, beta_a=0.1, beta_b=0.2)
        assert float(out.data) == pytest.approx(1 + 0.5 * 2 + 0.1 * 3 + 0.2 * 4)

    def test_none_aux_reduces_to_eq18(self):
        out = total_loss(tensor(1.0), tensor(2.0), None, None, 1.0, 0.3, 0.3)
        assert float(out.data) == pytest.approx(3.0)

    def test_zero_weights_ignore_aux(self):
        out = total_loss(tensor(1.0), tensor(1.0), tensor(100.0), tensor(100.0), 1.0, 0.0, 0.0)
        assert float(out.data) == pytest.approx(2.0)

    def test_breakdown_dict(self):
        bd = LossBreakdown(task_a=1, task_b=2, aux_a=3, aux_b=4, total=10)
        assert bd.as_dict()["L'_A"] == 3
        assert bd.as_dict()["total"] == 10
