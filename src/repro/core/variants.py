"""Factory for MGBR's ablation variants (paper Sec. III-B, Table IV).

* **MGBR-M**   — shared expert bank S and gate S removed (two towers).
* **MGBR-R**   — auxiliary losses ``L'_A``/``L'_B`` removed.
* **MGBR-M-R** — both of the above.
* **MGBR-G**   — adjusted gated units removed (``α_A = α_B = 0``).
* **MGBR-D**   — the three divided views replaced by one GCN over the
  heterogeneous all-relations graph.

Each variant is an :class:`repro.core.model.MGBR` with the matching
config switches, so the Table IV benchmark trains them through the same
harness as the full model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import MGBRConfig
from repro.core.model import MGBR
from repro.utils.rng import SeedLike

__all__ = ["VARIANTS", "variant_config", "build_variant"]

#: Variant name -> config overrides.
VARIANTS: Dict[str, Dict[str, bool]] = {
    "MGBR": {},
    "MGBR-M": {"use_shared_experts": False},
    "MGBR-R": {"use_aux_losses": False},
    "MGBR-M-R": {"use_shared_experts": False, "use_aux_losses": False},
    "MGBR-G": {"use_adjusted_gates": False},
    "MGBR-D": {"use_hin_views": True},
}


def variant_config(name: str, base: Optional[MGBRConfig] = None) -> MGBRConfig:
    """Return ``base`` (default :class:`MGBRConfig`) with the variant's switches."""
    if name not in VARIANTS:
        raise KeyError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}")
    base = base or MGBRConfig()
    return base.replace(**VARIANTS[name])


def build_variant(
    name: str,
    groups: Sequence,
    n_users: int,
    n_items: int,
    base: Optional[MGBRConfig] = None,
    seed: Optional[SeedLike] = None,
) -> MGBR:
    """Instantiate the named ablation variant over ``groups``."""
    return MGBR(groups, n_users, n_items, config=variant_config(name, base), seed=seed)
