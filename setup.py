"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so pip's PEP 517
editable path (which builds an editable wheel) fails.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` route, which needs no wheel.  All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
