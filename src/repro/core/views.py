"""Multi-view embedding learning (paper Sec. II-C, Eq. 1-6).

Three GCNs — one per view — produce node embeddings, and each object's
final representation concatenates its two views:

* ``e_u = e_u^UI || e_u^UP``  (initiator: launch behaviour + social)
* ``e_i = e_i^UI || e_i^PI``  (item: launched-as + joined-as signal)
* ``e_p = e_p^PI || e_p^UP``  (participant: join behaviour + social)

The MGBR-D ablation swaps this module for :class:`HINEmbedding`, a
single GCN over the merged heterogeneous graph, where each object's two
view slots both come from its single HIN embedding (keeping downstream
dimensions identical, so only the view split is ablated).
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import EmbeddingBundle
from repro.graph.gcn import GCN
from repro.graph.hin import build_hin_adjacency
from repro.graph.views import GraphViews, build_views
from repro.nn.module import Module
from repro.nn.tensor import concat
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["MultiViewEmbedding", "HINEmbedding"]


class MultiViewEmbedding(Module):
    """The paper's three-GCN encoder producing ``(e_u, e_i, e_p)``.

    Parameters
    ----------
    views: pre-built normalized adjacencies (:func:`repro.graph.build_views`).
    dim: per-view embedding width ``d``.
    n_layers: GCN depth ``H``.
    feature_std: Gaussian std of the layer-0 features.
    seed: initialisation seed.
    """

    def __init__(
        self,
        views: GraphViews,
        dim: int,
        n_layers: int = 2,
        feature_std: float = 1.0,
        seed: SeedLike = None,
        gain: float = 1.0,
        n_shards: int = 0,
        partition: str = "range",
        service: bool = False,
        quantize=None,
    ) -> None:
        super().__init__()
        self.views = views
        self.dim = dim
        rng_ui, rng_pi, rng_up = spawn_rngs(seed, 3)
        n_bip = views.n_nodes_bipartite
        # Each GCN binds its fixed view adjacency at construction: the
        # CSR canonicalisation (and spmm's transpose cache) happen once,
        # not per forward pass.  ``n_shards``/``partition``/``service``
        # choose the storage layout of each GCN's layer-0 feature table
        # (see repro.store) without touching the propagation math.
        self.gcn_ui = GCN(
            n_bip, dim, n_layers, feature_std=feature_std, seed=rng_ui, gain=gain,
            adjacency=views.a_ui, n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )
        self.gcn_pi = GCN(
            n_bip, dim, n_layers, feature_std=feature_std, seed=rng_pi, gain=gain,
            adjacency=views.a_pi, n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )
        self.gcn_up = GCN(
            views.n_users, dim, n_layers, feature_std=feature_std, seed=rng_up, gain=gain,
            adjacency=views.a_up, n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )

    def forward(self) -> EmbeddingBundle:
        """Run all three GCNs and concatenate per Eq. 4-6.

        Returns an :class:`EmbeddingBundle` whose tensors are ``2d`` wide:
        ``user`` holds every user's initiator-role embedding ``e_u``,
        ``participant`` every user's participant-role embedding ``e_p``.
        """
        n_users = self.views.n_users
        x_ui = self.gcn_ui()     # (|U|+|I|, d)
        x_pi = self.gcn_pi()     # (|U|+|I|, d)
        x_up = self.gcn_up()     # (|U|, d)

        users_ui = x_ui[slice(0, n_users)]
        items_ui = x_ui[slice(n_users, None)]
        users_pi = x_pi[slice(0, n_users)]
        items_pi = x_pi[slice(n_users, None)]

        e_u = concat([users_ui, x_up], axis=1)      # e_u^UI || e_u^UP
        e_i = concat([items_ui, items_pi], axis=1)  # e_i^UI || e_i^PI
        e_p = concat([users_pi, x_up], axis=1)      # e_p^PI || e_p^UP
        return EmbeddingBundle(user=e_u, item=e_i, participant=e_p)

    @classmethod
    def from_groups(
        cls,
        groups: Sequence,
        n_users: int,
        n_items: int,
        dim: int,
        n_layers: int = 2,
        feature_std: float = 1.0,
        seed: SeedLike = None,
        include_participant_edges: bool = False,
        gain: float = 1.0,
        n_shards: int = 0,
        partition: str = "range",
        service: bool = False,
        quantize=None,
    ) -> "MultiViewEmbedding":
        """Convenience constructor building the views from deal groups."""
        views = build_views(
            groups, n_users, n_items, include_participant_edges=include_participant_edges
        )
        return cls(
            views, dim, n_layers, feature_std=feature_std, seed=seed, gain=gain,
            n_shards=n_shards, partition=partition, service=service,
            quantize=quantize,
        )


class HINEmbedding(Module):
    """MGBR-D's encoder: one GCN over the merged heterogeneous graph.

    The HIN contains all three relation types on ``|U|+|I|`` nodes.  To
    keep the downstream multi-task module unchanged (it expects ``2d``
    wide inputs), the single GCN runs at width ``2d`` and each user's
    initiator- and participant-role embeddings are the *same* node
    embedding — precisely the capacity MGBR-D loses.
    """

    def __init__(
        self,
        groups: Sequence,
        n_users: int,
        n_items: int,
        dim: int,
        n_layers: int = 2,
        feature_std: float = 1.0,
        seed: SeedLike = None,
        gain: float = 1.0,
        n_shards: int = 0,
        partition: str = "range",
        service: bool = False,
        quantize=None,
    ) -> None:
        super().__init__()
        self.n_users = n_users
        self.n_items = n_items
        self.adjacency = build_hin_adjacency(groups, n_users, n_items)
        self.gcn = GCN(
            n_users + n_items, 2 * dim, n_layers, feature_std=feature_std, seed=seed,
            gain=gain, adjacency=self.adjacency, n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )

    def forward(self) -> EmbeddingBundle:
        """One GCN pass; users serve as both roles, items are item nodes."""
        x = self.gcn()
        users = x[slice(0, self.n_users)]
        items = x[slice(self.n_users, None)]
        return EmbeddingBundle(user=users, item=items, participant=users)
