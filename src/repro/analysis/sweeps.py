"""Hyper-parameter sweep drivers — the machinery behind Figs. 4 and 5.

Fig. 4 varies the auxiliary-loss weights ``β_A = β_B`` over
{0.1, …, 0.5}; Fig. 5 varies the adjusted-gate coefficients
``α_A = α_B`` over {0.05, 0.1, 0.2, 0.3}.  Each sweep point retrains a
fresh MGBR from the same seed and reports both tasks' MRR/NDCG, exactly
the curves the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import MGBRConfig
from repro.core.model import MGBR
from repro.data.schema import GroupBuyingDataset
from repro.eval.protocol import evaluate_model
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.logging import get_logger

__all__ = ["SweepPoint", "SweepResult", "run_sweep", "aux_weight_sweep", "gate_coefficient_sweep"]

logger = get_logger("analysis.sweeps")


@dataclass(frozen=True)
class SweepPoint:
    """One retrained configuration and its evaluation metrics."""

    value: float
    metrics: Dict[str, float]


@dataclass
class SweepResult:
    """All points of one sweep, ordered by the swept value."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> List[float]:
        """The metric values across the sweep (figure y-axis)."""
        return [p.metrics[metric] for p in self.points]

    def values(self) -> List[float]:
        """The swept parameter values (figure x-axis)."""
        return [p.value for p in self.points]

    def best(self, metric: str) -> SweepPoint:
        """Sweep point maximising ``metric``."""
        return max(self.points, key=lambda p: p.metrics[metric])


def run_sweep(
    parameter: str,
    values: Sequence[float],
    dataset: GroupBuyingDataset,
    base_config: MGBRConfig,
    epochs: int = 10,
    eval_max_instances: Optional[int] = 200,
    tie_parameters: Sequence[str] = (),
) -> SweepResult:
    """Retrain MGBR for each value of ``parameter`` and evaluate.

    Parameters
    ----------
    parameter: MGBRConfig field to vary (e.g. ``"beta_a"``).
    values: swept values.
    dataset: train/evaluate source.
    base_config: all other hyper-parameters (seed included — every point
        starts from identical initialisation, isolating the parameter).
    epochs: training epochs per point.
    eval_max_instances: evaluation subsample cap (None = all).
    tie_parameters: additional config fields set to the same value
        (Fig. 4 ties β_A=β_B; Fig. 5 ties α_A=α_B).
    """
    result = SweepResult(parameter=parameter)
    for value in values:
        overrides = {parameter: value}
        for tied in tie_parameters:
            overrides[tied] = value
        config = base_config.replace(**overrides)
        model = MGBR(dataset.train, dataset.n_users, dataset.n_items, config=config)
        trainer = Trainer(model, dataset, TrainConfig.from_mgbr(config, epochs=epochs))
        trainer.fit()
        evaluation = evaluate_model(
            model, dataset, protocols=((9, 10),), max_instances=eval_max_instances
        )["@10"]
        metrics = evaluation.flat()
        logger.info("sweep %s=%.3g -> %s", parameter, value, metrics)
        result.points.append(SweepPoint(value=value, metrics=metrics))
    return result


def aux_weight_sweep(
    dataset: GroupBuyingDataset,
    base_config: MGBRConfig,
    values: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    epochs: int = 10,
    eval_max_instances: Optional[int] = 200,
) -> SweepResult:
    """Fig. 4: sweep the tied auxiliary-loss weights β_A = β_B."""
    return run_sweep(
        "beta_a", values, dataset, base_config,
        epochs=epochs, eval_max_instances=eval_max_instances,
        tie_parameters=("beta_b",),
    )


def gate_coefficient_sweep(
    dataset: GroupBuyingDataset,
    base_config: MGBRConfig,
    values: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
    epochs: int = 10,
    eval_max_instances: Optional[int] = 200,
) -> SweepResult:
    """Fig. 5: sweep the tied adjusted-gate coefficients α_A = α_B."""
    return run_sweep(
        "alpha_a", values, dataset, base_config,
        epochs=epochs, eval_max_instances=eval_max_instances,
        tie_parameters=("alpha_b",),
    )
