"""Gated units of the multi-task learning module (Eq. 10-14).

Each sub-module's gate mixes expert outputs into one embedding.  Task
gates (A and B) combine two sections:

* **Generic section** (Eq. 10): attention weights come from the gate's
  own previous state — ``g^l_{A1} = (g^{l-1}_A || g^{l-1}_S) W_A [E^l_A; E^l_S]``.
  This is the MMoE-style self-gating the paper calls the generic gated
  unit.
* **Adjusted section** (Eq. 11): attention weights come from the *raw
  pair embeddings* of the current sample.  For gate A:
  ``g^l_{A2} = (e_u||e_i) W_{A,ui} E^l_A + (e_i||e_p) W_{A,ip} E^l_S
  + (e_u||e_p) W_{A,up} E^l_S`` — task A's own pair ``(u,i)`` attends
  over A's experts while the ``(i,p)``/``(u,p)`` information arrives via
  the shared bank.  Gate B mirrors this with the banks swapped (Eq. 13).

The two sections mix as ``g^l_A = g^l_{A1} + α_A · g^l_{A2}`` (Eq. 12).
The shared gate S has only a generic section over all three banks
(Eq. 14).  Following the self-attention principle the paper cites, the
attention logits are softmax-normalized (disable with
``gate_softmax=False`` to use raw linear weights).
"""

from __future__ import annotations

from typing import Optional

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, take_rows

__all__ = ["GateAttention", "GenericGate", "AdjustedGate", "TaskGate", "SharedGate"]


class GateAttention(Module):
    """One attention head: ``weights(query) × bank``.

    Computes ``softmax(query W) @ bank`` where ``W ∈ (query_dim, K)``
    and ``bank ∈ (batch, K, d)`` → ``(batch, d)``.
    """

    def __init__(self, query_dim: int, n_slots: int, softmax: bool = True, seed=None) -> None:
        super().__init__()
        self.proj = Linear(query_dim, n_slots, bias=False, seed=seed)
        self.softmax = softmax
        self.n_slots = n_slots

    def forward(self, query: Tensor, bank: Tensor, logits: Optional[Tensor] = None) -> Tensor:
        """Attend ``query`` over ``bank`` slots.

        ``logits`` optionally supplies precomputed attention logits (the
        factorized scoring plan assembles them from per-entity partial
        projections, see :meth:`project_blocks`); ``query`` is then
        ignored and may be ``None``.
        """
        if bank.shape[1] != self.n_slots:
            raise ValueError(
                f"bank has {bank.shape[1]} slots, attention expects {self.n_slots}"
            )
        if logits is None:
            logits = self.proj(query)
        weights = F.softmax(logits, axis=-1) if self.softmax else logits
        batch = weights.shape[0]
        mixed = weights.reshape(batch, 1, self.n_slots) @ bank
        return mixed.reshape(batch, bank.shape[2])

    def project_blocks(self, x: Tensor, blocks) -> Tensor:
        """Partial attention logits from the given weight-row blocks of ``W``.

        Logit projections distribute over query concatenations exactly
        like expert weights (:meth:`repro.nn.layers.Linear
        .project_blocks`); the planned path computes these once per
        unique entity, gathers per pair, and feeds the summed logits back
        through :meth:`forward`.
        """
        return self.proj.project_blocks(x, blocks)


class GenericGate(Module):
    """Eq. 10's generic section: self-state query over the expert banks."""

    def __init__(self, state_dim: int, n_slots: int, softmax: bool = True, seed=None) -> None:
        super().__init__()
        self.attention = GateAttention(state_dim, n_slots, softmax=softmax, seed=seed)

    def forward(self, state: Tensor, bank: Tensor, logits: Optional[Tensor] = None) -> Tensor:
        """``state`` is the concatenated previous gate outputs (e^l_in).

        ``logits`` optionally carries factorized attention logits; see
        :meth:`GateAttention.forward`.
        """
        return self.attention(state, bank, logits=logits)


class AdjustedGate(Module):
    """Eq. 11/13's adjusted section: raw-pair queries over expert banks.

    Parameters
    ----------
    pair_dim: width of each pair embedding (``e_u||e_i`` etc. = 4d).
    n_experts: ``K`` — each of the three heads attends over one bank.
    """

    def __init__(self, pair_dim: int, n_experts: int, softmax: bool = True, seed=None) -> None:
        super().__init__()
        self.head_ui = GateAttention(pair_dim, n_experts, softmax=softmax, seed=seed)
        self.head_ip = GateAttention(pair_dim, n_experts, softmax=softmax, seed=seed)
        self.head_up = GateAttention(pair_dim, n_experts, softmax=softmax, seed=seed)

    def pair_logits(
        self,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        user_pos,
        item_pos,
        part_pos,
    ):
        """Factorized attention logits for all three heads → ``(l_ui, l_ip, l_up)``.

        ``e_u``/``e_i``/``e_p`` hold one row per *unique* entity and the
        ``*_pos`` arrays map each unique request onto them (see
        :class:`repro.plan.ScoringPlan`).  Each head's query is a
        pair concatenation, so its logits split into two per-entity
        partial projections computed once per unique entity and
        gather-added per request — replacing a ``(rows, 4d)`` query
        build + matmul with ``(unique, 2d)`` matmuls.
        """
        v = e_u.shape[-1]
        lo, hi = [(0, v)], [(v, 2 * v)]
        l_ui = take_rows(self.head_ui.project_blocks(e_u, lo), user_pos) + take_rows(
            self.head_ui.project_blocks(e_i, hi), item_pos
        )
        l_ip = take_rows(self.head_ip.project_blocks(e_i, lo), item_pos) + take_rows(
            self.head_ip.project_blocks(e_p, hi), part_pos
        )
        l_up = take_rows(self.head_up.project_blocks(e_u, lo), user_pos) + take_rows(
            self.head_up.project_blocks(e_p, hi), part_pos
        )
        return l_ui, l_ip, l_up

    @staticmethod
    def build_pairs(e_u: Tensor, e_i: Tensor, e_p: Tensor):
        """Concatenate the three pair features ``(e_u||e_i, e_i||e_p, e_u||e_p)``.

        The pairs depend only on the raw object embeddings, so one
        triple serves every adjusted gate of every MTL layer — the
        multi-task module builds it once per forward instead of paying
        three large concatenations per gate per layer.
        """
        return (
            concat([e_u, e_i], axis=1),
            concat([e_i, e_p], axis=1),
            concat([e_u, e_p], axis=1),
        )

    def forward(
        self,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        bank_ui: Tensor,
        bank_ip: Tensor,
        bank_up: Tensor,
        pairs=None,
        logits=None,
    ) -> Tensor:
        """Sum the three pair-attention terms.

        Which bank each pair attends over differs between gate A and
        gate B; the caller (:class:`TaskGate`) wires them per Eq. 11/13.
        ``pairs`` optionally supplies precomputed :meth:`build_pairs`
        output (the hot path); ``logits`` optionally supplies fully
        factorized :meth:`pair_logits` output (the planned path), in
        which case the embeddings and pairs are not touched at all.
        """
        if logits is not None:
            l_ui, l_ip, l_up = logits
            return (
                self.head_ui(None, bank_ui, logits=l_ui)
                + self.head_ip(None, bank_ip, logits=l_ip)
                + self.head_up(None, bank_up, logits=l_up)
            )
        if pairs is None:
            pairs = self.build_pairs(e_u, e_i, e_p)
        pair_ui, pair_ip, pair_up = pairs
        term_ui = self.head_ui(pair_ui, bank_ui)
        term_ip = self.head_ip(pair_ip, bank_ip)
        term_up = self.head_up(pair_up, bank_up)
        return term_ui + term_ip + term_up


class TaskGate(Module):
    """A full task gate: generic + α-scaled adjusted section (Eq. 12/13).

    Parameters
    ----------
    state_dim: width of the gate's previous-state concatenation.
    pair_dim: width of the raw pair embeddings (4d).
    n_experts: ``K``.
    own_is_ui: True for gate A (the (u,i) pair attends over the gate's
        *own* bank, the other two pairs over the shared bank), False for
        gate B (reversed wiring).
    alpha: the control coefficient α_A / α_B; 0 disables the adjusted
        section entirely (the MGBR-G ablation).
    shared: whether a shared bank exists (False under MGBR-M — all
        adjusted heads then attend over the gate's own bank).
    """

    def __init__(
        self,
        state_dim: int,
        pair_dim: int,
        n_experts: int,
        own_is_ui: bool,
        alpha: float,
        softmax: bool = True,
        shared: bool = True,
        seed=None,
    ) -> None:
        super().__init__()
        n_slots = 2 * n_experts if shared else n_experts
        self.generic = GenericGate(state_dim, n_slots, softmax=softmax, seed=seed)
        self.alpha = alpha
        self.own_is_ui = own_is_ui
        self.shared = shared
        self.adjusted: Optional[AdjustedGate] = (
            AdjustedGate(pair_dim, n_experts, softmax=softmax, seed=seed)
            if alpha > 0
            else None
        )

    def forward(
        self,
        state: Tensor,
        own_bank: Tensor,
        shared_bank: Optional[Tensor],
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        pairs=None,
        adj_logits=None,
        generic_logits=None,
    ) -> Tensor:
        """Produce ``g^l`` for this task.

        ``state`` is ``g^{l-1}_task || g^{l-1}_S`` (or just the task state
        when no shared bank exists).  ``pairs`` optionally carries the
        precomputed pair features shared across layers and towers.  On
        the planned path ``generic_logits`` / ``adj_logits`` carry
        factorized attention logits, making ``state`` and the raw
        embeddings unnecessary (pass ``None``).
        """
        if self.shared:
            if shared_bank is None:
                raise ValueError("TaskGate built with shared=True needs a shared bank")
            generic_bank = concat([own_bank, shared_bank], axis=1)
        else:
            generic_bank = own_bank
        out = self.generic(state, generic_bank, logits=generic_logits)
        if self.adjusted is not None:
            other = shared_bank if self.shared else own_bank
            if self.own_is_ui:
                # Gate A: (u,i) -> own bank; (i,p), (u,p) -> shared bank.
                adj = self.adjusted(
                    e_u, e_i, e_p, own_bank, other, other, pairs=pairs, logits=adj_logits
                )
            else:
                # Gate B: (u,i) -> shared bank; (i,p), (u,p) -> own bank.
                adj = self.adjusted(
                    e_u, e_i, e_p, other, own_bank, own_bank, pairs=pairs, logits=adj_logits
                )
            out = out + self.alpha * adj
        return out


class SharedGate(Module):
    """Gate S (Eq. 14): generic attention over all three expert banks."""

    def __init__(self, state_dim: int, n_experts: int, softmax: bool = True, seed=None) -> None:
        super().__init__()
        self.attention = GateAttention(state_dim, 3 * n_experts, softmax=softmax, seed=seed)

    def forward(
        self,
        state: Tensor,
        bank_a: Tensor,
        bank_s: Tensor,
        bank_b: Tensor,
        logits: Optional[Tensor] = None,
    ) -> Tensor:
        """``state`` is ``g^{l-1}_A || g^{l-1}_S || g^{l-1}_B``.

        ``logits`` optionally carries factorized attention logits from
        the planned path; ``state`` may then be ``None``.
        """
        return self.attention(state, concat([bank_a, bank_s, bank_b], axis=1), logits=logits)
