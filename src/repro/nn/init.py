"""Weight initialisation schemes.

The paper initialises the layer-0 GCN embeddings from a standard Gaussian
(Sec. II-C2); the dense projection weights use Xavier/Glorot, the default
in the PyTorch reference implementations of NGCF/GBGCN that the paper
compares against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "normal_",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "zeros_init",
]


def normal_(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 1.0) -> np.ndarray:
    """Gaussian ``N(0, std²)`` initial values (paper's embedding init)."""
    return rng.normal(0.0, std, size=shape)


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight shape."""
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: ``U(-a, a)`` with ``a = gain * sqrt(6/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: ``N(0, gain² * 2/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform for ReLU fan-in scaling."""
    fan_in, _ = _fan(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros_init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero values (bias default)."""
    del rng
    return np.zeros(shape)
