"""Model-scale analysis — the parameter counts of Table V.

The paper reports per-model trainable-parameter totals; with a
:class:`repro.nn.module.Module` tree this is a walk over
``named_parameters`` with optional per-component grouping, which the
Table V benchmark prints alongside epoch timings.
"""

from __future__ import annotations

from typing import Dict

from repro.nn.module import Module

__all__ = ["count_parameters", "parameter_breakdown", "format_param_table"]


def count_parameters(model: Module) -> int:
    """Total scalar parameter count of ``model``."""
    return model.num_parameters()


def parameter_breakdown(model: Module, depth: int = 1) -> Dict[str, int]:
    """Parameter counts grouped by the first ``depth`` name components.

    ``depth=1`` groups by top-level submodule (encoder / mtl / heads…),
    which is how DESIGN.md attributes MGBR's size to its components.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    groups: Dict[str, int] = {}
    for name, param in model.named_parameters():
        key = ".".join(name.split(".")[:depth])
        groups[key] = groups.get(key, 0) + param.data.size
    return dict(sorted(groups.items(), key=lambda kv: -kv[1]))


def format_param_table(counts: Dict[str, int], title: str = "") -> str:
    """Render a name→count mapping as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(k) for k in counts), default=10)
    for name, count in counts.items():
        lines.append(f"{name:<{width}}  {count:>12,}")
    lines.append(f"{'TOTAL':<{width}}  {sum(counts.values()):>12,}")
    return "\n".join(lines)
