"""Embedding case study — reproduces the analysis behind Fig. 6.

The paper projects learned object embeddings (initiators, items,
participants of sampled groups) to 2-D with PCA and observes that under
full MGBR the members of one group cluster together much more tightly
than under MGBR-M-R.  We reproduce this quantitatively: alongside the
2-D coordinates we report the *dispersion ratio* — mean within-group
distance to the group centroid divided by mean distance between group
centroids — which is the scalar the visual argument rests on (lower is
tighter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.schema import DealGroup

__all__ = ["pca_project", "GroupEmbeddingStudy", "run_case_study"]


def pca_project(matrix: np.ndarray, n_components: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Centre ``matrix`` and project onto its top principal components.

    Returns ``(projected, explained_variance_ratio)``.  Implemented with
    an SVD so it handles ``n_samples < n_features`` gracefully.
    """
    x = np.asarray(matrix, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {x.shape}")
    if n_components < 1 or n_components > min(x.shape):
        raise ValueError(
            f"n_components must lie in [1, {min(x.shape)}], got {n_components}"
        )
    centred = x - x.mean(axis=0, keepdims=True)
    u, s, _ = np.linalg.svd(centred, full_matrices=False)
    projected = u[:, :n_components] * s[:n_components]
    total = float((s**2).sum())
    ratio = (s[:n_components] ** 2) / total if total > 0 else np.zeros(n_components)
    return projected, ratio


@dataclass
class GroupEmbeddingStudy:
    """Per-model output of the case study.

    Attributes
    ----------
    points: ``(n_points, 2)`` PCA coordinates.
    labels: group index of each point.
    roles: "initiator" / "item" / "participant" per point.
    dispersion_ratio: within-group spread / between-centroid spread
        (Fig. 6's tightness, as a number; lower = tighter groups).
    explained_variance: PCA explained-variance ratio of the 2 components.
    """

    points: np.ndarray
    labels: np.ndarray
    roles: List[str]
    dispersion_ratio: float
    explained_variance: np.ndarray


def _dispersion_ratio(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean within-group centroid distance over mean between-centroid distance."""
    groups = np.unique(labels)
    if groups.size < 2:
        raise ValueError("need at least two groups for a dispersion ratio")
    centroids = np.stack([points[labels == g].mean(axis=0) for g in groups])
    within = float(
        np.mean(
            [
                np.linalg.norm(points[labels == g] - centroids[k], axis=1).mean()
                for k, g in enumerate(groups)
            ]
        )
    )
    diffs = centroids[:, None, :] - centroids[None, :, :]
    pair_d = np.linalg.norm(diffs, axis=-1)
    between = float(pair_d[np.triu_indices(groups.size, k=1)].mean())
    if between == 0:
        return np.inf
    return within / between


def run_case_study(
    model,
    groups: Sequence[DealGroup],
    n_groups: int = 6,
    seed: int = 0,
) -> GroupEmbeddingStudy:
    """Project the embeddings of ``n_groups`` sampled deal groups.

    ``model`` must expose ``entity_embeddings()`` returning a dict with
    ``"initiator"``, ``"item"``, ``"participant"`` embedding matrices
    (the MGBR family and all baselines in this repo do).
    """
    rng = np.random.default_rng(seed)
    eligible = [g for g in groups if g.size >= 2]
    if len(eligible) < n_groups:
        raise ValueError(
            f"need {n_groups} groups with >=2 participants, found {len(eligible)}"
        )
    chosen_idx = rng.choice(len(eligible), size=n_groups, replace=False)
    chosen = [eligible[int(k)] for k in chosen_idx]

    tables = model.entity_embeddings()
    rows: List[np.ndarray] = []
    labels: List[int] = []
    roles: List[str] = []
    for g_idx, group in enumerate(chosen):
        rows.append(tables["initiator"][group.initiator])
        labels.append(g_idx)
        roles.append("initiator")
        rows.append(tables["item"][group.item])
        labels.append(g_idx)
        roles.append("item")
        for p in group.participants:
            rows.append(tables["participant"][p])
            labels.append(g_idx)
            roles.append("participant")
    matrix = np.stack(rows)
    points, explained = pca_project(matrix, n_components=2)
    labels_arr = np.asarray(labels)
    return GroupEmbeddingStudy(
        points=points,
        labels=labels_arr,
        roles=roles,
        dispersion_ratio=_dispersion_ratio(points, labels_arr),
        explained_variance=explained,
    )
