"""Shared infrastructure for the experiment benchmarks.

Each ``bench_table*.py`` / ``bench_fig*.py`` regenerates one table or
figure of the paper on the synthetic Beibei-style dataset (see DESIGN.md
for the per-experiment index and the scale note).  All experiments share
one dataset and one training budget so their numbers are comparable the
way the paper's are; candidate lists use a fixed seed so every model is
ranked on identical instances.

Environment knobs (for quick smoke runs):

* ``REPRO_BENCH_EPOCHS``  — training epochs per model (default 24)
* ``REPRO_BENCH_USERS/ITEMS/GROUPS`` — synthetic dataset scale
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.baselines import EATNN, GBGCN, GBMF, NGCF, DeepMF, DiffNet
from repro.core import MGBR, MGBRConfig, build_variant
from repro.data import SyntheticConfig, generate_dataset
from repro.eval import evaluate_model
from repro.training import TrainConfig, Trainer

BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "18"))
BENCH_USERS = int(os.environ.get("REPRO_BENCH_USERS", "150"))
BENCH_ITEMS = int(os.environ.get("REPRO_BENCH_ITEMS", "50"))
BENCH_GROUPS = int(os.environ.get("REPRO_BENCH_GROUPS", "800"))
DATA_SEED = 7
MODEL_SEED = 1
EVAL_MAX = 150
DIM = 16

RESULTS_DIR = Path(__file__).parent / "results"


def mgbr_bench_config(**overrides) -> MGBRConfig:
    """The MGBR profile every benchmark uses (scaled Table II)."""
    base = dict(
        d=DIM,
        learning_rate=5e-3,
        gcn_gain=10.0,
        aux_a_mode="listnet",
        aux_negatives=8,
        train_negatives=9,
        batch_size=32,
        seed=MODEL_SEED,
    )
    base.update(overrides)
    return MGBRConfig.small(**base)


def baseline_train_config(**overrides) -> TrainConfig:
    """Uniform loop settings for the six baselines."""
    base = dict(
        epochs=BENCH_EPOCHS,
        batch_size=32,
        learning_rate=5e-3,
        train_negatives=9,
        eval_every=4,
        restore_best=True,
        eval_max_instances=100,
        seed=MODEL_SEED,
    )
    base.update(overrides)
    return TrainConfig(**base)


def build_model(name: str, dataset):
    """Instantiate any Table III/IV model by its paper name."""
    graph_kwargs = dict(dim=DIM, seed=MODEL_SEED)
    if name in ("MGBR", "MGBR-M", "MGBR-R", "MGBR-M-R", "MGBR-G", "MGBR-D"):
        return build_variant(
            name, dataset.train, dataset.n_users, dataset.n_items,
            base=mgbr_bench_config(),
        )
    builders = {
        "DeepMF": lambda: DeepMF(dataset.n_users, dataset.n_items, **graph_kwargs),
        "NGCF": lambda: NGCF(dataset.train, dataset.n_users, dataset.n_items, **graph_kwargs),
        "DiffNet": lambda: DiffNet(dataset.train, dataset.n_users, dataset.n_items, **graph_kwargs),
        "EATNN": lambda: EATNN(dataset.n_users, dataset.n_items, **graph_kwargs),
        "GBGCN": lambda: GBGCN(dataset.train, dataset.n_users, dataset.n_items, **graph_kwargs),
        "GBMF": lambda: GBMF(dataset.n_users, dataset.n_items, **graph_kwargs),
    }
    return builders[name]()


def train_and_evaluate(name: str, dataset, epochs: int = None):
    """Full train → best-epoch restore → @10 and @100 evaluation."""
    epochs = epochs or BENCH_EPOCHS
    model = build_model(name, dataset)
    if name.startswith("MGBR"):
        config = model.config
        tc = TrainConfig.from_mgbr(
            config, epochs=epochs,
            eval_every=4, restore_best=True, eval_max_instances=100,
        )
    else:
        tc = baseline_train_config(epochs=epochs)
    Trainer(model, dataset, tc).fit()
    results = evaluate_model(
        model, dataset, protocols=((9, 10), (99, 100)), max_instances=EVAL_MAX
    )
    return model, results


def metrics_row(name: str, results) -> str:
    """One Table III/IV row: tasks × {MRR@10, NDCG@10, MRR@100, NDCG@100}."""
    r10, r100 = results["@10"], results["@100"]
    return (
        f"{name:10s} "
        f"A: {r10.task_a['MRR@10']:.4f} {r10.task_a['NDCG@10']:.4f} "
        f"{r100.task_a['MRR@100']:.4f} {r100.task_a['NDCG@100']:.4f}  "
        f"B: {r10.task_b['MRR@10']:.4f} {r10.task_b['NDCG@10']:.4f} "
        f"{r100.task_b['MRR@100']:.4f} {r100.task_b['NDCG@100']:.4f}"
    )


def write_result(filename: str, text: str) -> Path:
    """Persist a benchmark artifact under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_dataset():
    """The shared synthetic Beibei-style dataset for all experiments."""
    return generate_dataset(
        SyntheticConfig(n_users=BENCH_USERS, n_items=BENCH_ITEMS, n_groups=BENCH_GROUPS),
        seed=DATA_SEED,
    )
