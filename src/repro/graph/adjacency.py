"""Adjacency-matrix construction and GCN normalization.

The paper's propagation rule (Eq. 1-3) uses "normalized adjacency
matrices with self-loops".  We implement the standard Kipf-Welling
symmetric normalization ``Â = D̃^{-1/2} (A + I) D̃^{-1/2}`` where
``D̃`` is the degree matrix of ``A + I``; isolated nodes therefore
propagate only their own features (their row of ``Â`` is the self-loop).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["edges_to_adjacency", "normalized_adjacency", "degree_vector"]


def edges_to_adjacency(
    edges: Sequence[Tuple[int, int]],
    n_nodes: int,
    symmetric: bool = True,
    weights: Iterable[float] = None,
) -> sp.csr_matrix:
    """Build an ``(n_nodes, n_nodes)`` adjacency matrix from an edge list.

    Parameters
    ----------
    edges: iterable of ``(src, dst)`` node-index pairs.  Duplicate edges
        collapse to weight 1 (binary adjacency) unless ``weights`` given,
        in which case duplicates sum.
    n_nodes: total node count (matrix dimension).
    symmetric: also insert the reverse edge (the paper's graphs are
        undirected).
    weights: optional per-edge weights (default all ones).
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    edge_arr = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
    if edge_arr.size:
        lo, hi = int(edge_arr.min()), int(edge_arr.max())
        if lo < 0 or hi >= n_nodes:
            raise IndexError(
                f"edge endpoints outside [0, {n_nodes}): min={lo}, max={hi}"
            )
    if weights is None:
        w = np.ones(len(edge_arr), dtype=np.float64)
    else:
        w = np.asarray(list(weights), dtype=np.float64)
        if w.shape[0] != edge_arr.shape[0]:
            raise ValueError("weights length must match edges length")
    rows, cols = edge_arr[:, 0], edge_arr[:, 1]
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        w = np.concatenate([w, w])
    adj = sp.coo_matrix((w, (rows, cols)), shape=(n_nodes, n_nodes)).tocsr()
    if weights is None:
        # Binary adjacency: repeated (or reciprocal duplicate) edges clip to 1.
        adj.data = np.minimum(adj.data, 1.0)
    adj.eliminate_zeros()
    return adj


def normalized_adjacency(adj: sp.spmatrix, add_self_loops: bool = True) -> sp.csr_matrix:
    """Symmetrically normalize ``adj``: ``D̃^{-1/2}(A+I)D̃^{-1/2}``.

    This is the ``Â`` of Eq. 1-3.  With ``add_self_loops=False`` it
    normalizes the bare adjacency (used by NGCF's Laplacian term).
    Zero-degree rows map to zero rows rather than NaNs.
    """
    a = adj.tocsr().astype(np.float64)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got {a.shape}")
    if add_self_loops:
        a = a + sp.identity(a.shape[0], format="csr")
    degree = np.asarray(a.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degree)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv = sp.diags(inv_sqrt)
    return (d_inv @ a @ d_inv).tocsr()


def degree_vector(adj: sp.spmatrix) -> np.ndarray:
    """Row-degree vector of an adjacency matrix."""
    return np.asarray(adj.tocsr().sum(axis=1)).ravel()
