"""Tests for the multi-task module internals: experts, gates, stack."""

import numpy as np
import pytest

from repro.core import MGBRConfig
from repro.core.experts import ExpertBank
from repro.core.gates import AdjustedGate, GateAttention, SharedGate, TaskGate
from repro.core.mtl import MTLLayer, MultiTaskModule
from repro.nn import tensor


def _t(rng, *shape):
    return tensor(rng.normal(size=shape), requires_grad=True)


class TestExpertBank:
    def test_output_shape(self, rng):
        bank = ExpertBank(in_dim=6, out_dim=4, n_experts=3, seed=0)
        out = bank(_t(rng, 5, 6))
        assert out.shape == (5, 3, 4)

    def test_each_expert_is_distinct(self, rng):
        bank = ExpertBank(4, 4, 2, seed=0)
        out = bank(_t(rng, 3, 4)).data
        assert not np.allclose(out[:, 0, :], out[:, 1, :])

    def test_wrong_input_width(self, rng):
        bank = ExpertBank(4, 4, 2, seed=0)
        with pytest.raises(ValueError):
            bank(_t(rng, 3, 5))

    def test_needs_experts(self):
        with pytest.raises(ValueError):
            ExpertBank(4, 4, 0)

    def test_gradients_reach_all_experts(self, rng):
        bank = ExpertBank(4, 3, 3, seed=0)
        bank(_t(rng, 2, 4)).sum().backward()
        assert all(p.grad is not None for p in bank.parameters())


class TestGateAttention:
    def test_output_is_convex_combination(self, rng):
        # With softmax weights the output lies inside the experts' span:
        # for identical experts the output equals them exactly.
        att = GateAttention(query_dim=4, n_slots=3, softmax=True, seed=0)
        row = rng.normal(size=(1, 1, 5))
        bank = tensor(np.repeat(row, 3, axis=1))
        out = att(_t(rng, 1, 4), bank)
        np.testing.assert_allclose(out.data, row[:, 0, :], atol=1e-12)

    def test_shapes(self, rng):
        att = GateAttention(6, 4, seed=0)
        out = att(_t(rng, 7, 6), _t(rng, 7, 4, 5))
        assert out.shape == (7, 5)

    def test_slot_mismatch(self, rng):
        att = GateAttention(6, 4, seed=0)
        with pytest.raises(ValueError):
            att(_t(rng, 2, 6), _t(rng, 2, 3, 5))

    def test_no_softmax_mode(self, rng):
        att = GateAttention(6, 2, softmax=False, seed=0)
        out = att(_t(rng, 3, 6), _t(rng, 3, 2, 4))
        assert out.shape == (3, 4)


class TestAdjustedGate:
    def test_shapes_and_grads(self, rng):
        d = 4  # view_dim 8 => pair dim 16
        gate = AdjustedGate(pair_dim=16, n_experts=3, seed=0)
        e_u, e_i, e_p = _t(rng, 5, 8), _t(rng, 5, 8), _t(rng, 5, 8)
        banks = [_t(rng, 5, 3, d) for _ in range(3)]
        out = gate(e_u, e_i, e_p, *banks)
        assert out.shape == (5, d)
        out.sum().backward()
        assert all(p.grad is not None for p in gate.parameters())

    def test_depends_on_all_pairs(self, rng):
        gate = AdjustedGate(pair_dim=8, n_experts=2, seed=0)
        e_u, e_i, e_p = (_t(rng, 2, 4) for _ in range(3))
        banks = [_t(rng, 2, 2, 3) for _ in range(3)]
        base = gate(e_u, e_i, e_p, *banks).data.copy()
        e_p2 = tensor(e_p.data + 1.0)
        changed = gate(e_u, e_i, e_p2, *banks).data
        assert not np.allclose(base, changed)


class TestTaskGate:
    def test_alpha_zero_skips_adjusted(self, rng):
        gate = TaskGate(
            state_dim=6, pair_dim=8, n_experts=2, own_is_ui=True, alpha=0.0, seed=0
        )
        assert gate.adjusted is None

    def test_alpha_positive_builds_adjusted(self):
        gate = TaskGate(6, 8, 2, own_is_ui=True, alpha=0.1, seed=0)
        assert gate.adjusted is not None

    def test_shared_false_needs_no_shared_bank(self, rng):
        gate = TaskGate(4, 8, 2, own_is_ui=False, alpha=0.1, shared=False, seed=0)
        out = gate(
            _t(rng, 3, 4), _t(rng, 3, 2, 5), None,
            _t(rng, 3, 4), _t(rng, 3, 4), _t(rng, 3, 4),
        )
        assert out.shape == (3, 5)

    def test_shared_true_requires_shared_bank(self, rng):
        gate = TaskGate(8, 8, 2, own_is_ui=True, alpha=0.0, shared=True, seed=0)
        with pytest.raises(ValueError):
            gate(_t(rng, 3, 8), _t(rng, 3, 2, 5), None,
                 _t(rng, 3, 4), _t(rng, 3, 4), _t(rng, 3, 4))


class TestSharedGate:
    def test_attends_over_three_banks(self, rng):
        gate = SharedGate(state_dim=9, n_experts=2, seed=0)
        out = gate(
            _t(rng, 4, 9), _t(rng, 4, 2, 5), _t(rng, 4, 2, 5), _t(rng, 4, 2, 5)
        )
        assert out.shape == (4, 5)


class TestMTLLayerShapes:
    def _config(self, **kw):
        return MGBRConfig.small(d=4, n_experts=2, mtl_layers=2, **kw)

    def test_full_stack_output(self, rng):
        config = self._config()
        module = MultiTaskModule(config, seed=0)
        vd = config.view_dim
        e_u, e_i, e_p = (_t(rng, 6, vd) for _ in range(3))
        g_a, g_b = module(e_u, e_i, e_p)
        assert g_a.shape == (6, config.d)
        assert g_b.shape == (6, config.d)

    def test_no_shared_stack(self, rng):
        config = self._config(use_shared_experts=False)
        module = MultiTaskModule(config, seed=0)
        vd = config.view_dim
        g_a, g_b = module(_t(rng, 3, vd), _t(rng, 3, vd), _t(rng, 3, vd))
        assert g_a.shape == (3, config.d)
        # No layer owns shared experts.
        assert all(layer.experts_s is None for layer in module._layers)

    def test_first_layer_compact_dims(self):
        config = self._config(first_layer_compact=True)
        module = MultiTaskModule(config, seed=0)
        first, second = module._layers
        assert first.in_task == config.triple_dim          # 6d (compact)
        assert second.in_task == 2 * config.d              # general at l>=2

    def test_first_layer_general_dims(self):
        config = self._config(first_layer_compact=False)
        module = MultiTaskModule(config, seed=0)
        first = module._layers[0]
        assert first.in_task == 2 * config.triple_dim      # g0_A || g0_S
        assert first.in_shared == 3 * config.triple_dim    # g0_A || g0_S || g0_B

    def test_gradients_flow_to_inputs(self, rng):
        config = self._config()
        module = MultiTaskModule(config, seed=0)
        vd = config.view_dim
        e_u, e_i, e_p = (_t(rng, 2, vd) for _ in range(3))
        g_a, g_b = module(e_u, e_i, e_p)
        (g_a.sum() + g_b.sum()).backward()
        for t in (e_u, e_i, e_p):
            assert t.grad is not None and np.abs(t.grad).sum() > 0

    def test_single_layer_stack(self, rng):
        config = MGBRConfig.small(d=4, n_experts=2, mtl_layers=1)
        module = MultiTaskModule(config, seed=0)
        vd = config.view_dim
        g_a, g_b = module(_t(rng, 2, vd), _t(rng, 2, vd), _t(rng, 2, vd))
        assert g_a.shape == (2, 4)

    def test_task_outputs_differ(self, rng):
        # Gate A and gate B have independent parameters; outputs diverge.
        config = self._config()
        module = MultiTaskModule(config, seed=0)
        vd = config.view_dim
        g_a, g_b = module(_t(rng, 4, vd), _t(rng, 4, vd), _t(rng, 4, vd))
        assert not np.allclose(g_a.data, g_b.data)

    def test_adjusted_gates_disabled_have_no_extra_params(self):
        on = MultiTaskModule(self._config(), seed=0)
        off = MultiTaskModule(self._config(use_adjusted_gates=False), seed=0)
        assert off.num_parameters() < on.num_parameters()
