"""Tests for the batched inference engine (PR: vectorized evaluation).

Covers the batched evaluation protocol's parity with the historical
per-instance loop, the float32 inference fast path, the vectorized
ranking/sampling primitives, and the spmm adjacency caches.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import MGBR, MGBRConfig
from repro.data import NegativeSampler
from repro.eval import EvalProtocol, evaluate_model, rank_of_positive, ranks_of_positives
from repro.graph.gcn import GCN
from repro.nn import (
    dtype_scope,
    get_default_dtype,
    gradcheck,
    inference_mode,
    spmm,
    tensor,
    to_csr,
    zeros,
)
from repro.utils.rng import choice_excluding_batch


class TestBatchedProtocolParity:
    def test_batched_matches_per_instance_bit_identical(self, tiny_dataset, tiny_mgbr):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, max_instances=40)
        batched = protocol.run(tiny_mgbr)
        looped = protocol.run_per_instance(tiny_mgbr)
        assert batched.task_a == looped.task_a
        assert batched.task_b == looped.task_b

    def test_parity_on_1_99_lists(self, tiny_dataset, tiny_mgbr):
        protocol = EvalProtocol(tiny_dataset, n_negatives=99, cutoff=100, max_instances=10)
        assert protocol.run(tiny_mgbr).flat() == protocol.run_per_instance(tiny_mgbr).flat()

    def test_chunk_size_does_not_change_metrics(self, tiny_dataset, tiny_mgbr):
        kwargs = dict(n_negatives=9, cutoff=10, max_instances=30)
        small = EvalProtocol(tiny_dataset, chunk_size=7, **kwargs).run(tiny_mgbr)
        large = EvalProtocol(tiny_dataset, chunk_size=100_000, **kwargs).run(tiny_mgbr)
        assert small.flat() == large.flat()

    def test_float32_matches_float64_within_tolerance(self, tiny_dataset, tiny_mgbr):
        kwargs = dict(n_negatives=9, cutoff=10, max_instances=40)
        f64 = EvalProtocol(tiny_dataset, dtype="float64", **kwargs).run(tiny_mgbr)
        f32 = EvalProtocol(tiny_dataset, dtype="float32", **kwargs).run(tiny_mgbr)
        for key, value in f64.flat().items():
            assert f32.flat()[key] == pytest.approx(value, abs=0.05), key

    def test_float32_does_not_leak_into_cached_bundle(self, tiny_dataset, tiny_mgbr):
        EvalProtocol(tiny_dataset, dtype="float32", max_instances=5).run(tiny_mgbr)
        assert tiny_mgbr._cached is None  # invalidated after the f32 pass
        tiny_mgbr.refresh_cache()
        assert tiny_mgbr._cached.user.data.dtype == np.float64

    def test_invalid_protocol_options_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            EvalProtocol(tiny_dataset, chunk_size=0)
        with pytest.raises(ValueError):
            EvalProtocol(tiny_dataset, dtype="float16")

    def test_evaluate_model_forwards_dtype(self, tiny_dataset, tiny_mgbr):
        out = evaluate_model(
            tiny_mgbr, tiny_dataset, protocols=((9, 10),), max_instances=5,
            dtype="float32",
        )
        assert "@10" in out


class TestMatrixScoring:
    def test_score_items_matrix_matches_flat_logits(self, tiny_dataset, tiny_mgbr):
        rng = np.random.default_rng(0)
        users = rng.integers(0, tiny_dataset.n_users, size=6)
        cands = rng.integers(0, tiny_dataset.n_items, size=(6, 5))
        tiny_mgbr.refresh_cache()
        matrix = tiny_mgbr.score_items_matrix(users, cands)
        assert matrix.shape == (6, 5)
        bundle = tiny_mgbr._bundle()
        for row in range(6):
            flat = tiny_mgbr.score_items_from(
                bundle, np.full(5, users[row]), cands[row], raw=True
            )
            # BLAS may differ in the last ulp across batch shapes.
            np.testing.assert_allclose(matrix[row], np.asarray(flat.data), rtol=1e-12)

    def test_score_participants_matrix_matches_flat_logits(self, tiny_dataset, tiny_mgbr):
        rng = np.random.default_rng(1)
        users = rng.integers(0, tiny_dataset.n_users, size=4)
        items = rng.integers(0, tiny_dataset.n_items, size=4)
        cands = rng.integers(0, tiny_dataset.n_users, size=(4, 7))
        matrix = tiny_mgbr.score_participants_matrix(users, items, cands)
        assert matrix.shape == (4, 7)
        bundle = tiny_mgbr._bundle()
        for row in range(4):
            flat = tiny_mgbr.score_participants_from(
                bundle, np.full(7, users[row]), np.full(7, items[row]), cands[row],
                raw=True,
            )
            np.testing.assert_allclose(matrix[row], np.asarray(flat.data), rtol=1e-12)

    def test_confident_model_survives_float32_sigmoid_saturation(self, tiny_dataset):
        # A confident model's σ-probabilities all round to exactly 1.0
        # under float32, which would tie every candidate and (with the
        # pessimistic tie-break) bury the positive.  The matrix path
        # ranks on raw logits, so metrics must stay perfect.
        from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
        from repro.nn import Embedding
        from repro.nn.tensor import Tensor

        class _Confident(GroupBuyingRecommender):
            """Inner-product oracle with huge, saturating logit scale."""

            def __init__(self, dataset):
                super().__init__(dataset.n_users, dataset.n_items)
                self.table = Embedding(2, 2, seed=0)
                rng = np.random.default_rng(5)
                self._user_items = dataset.user_items(("train", "validation", "test"))
                user = np.zeros((dataset.n_users, dataset.n_items))
                for u, items in self._user_items.items():
                    user[u, list(items)] = 1.0
                # Positives get logit 60, negatives logits in [40, 50):
                # all σ-probabilities are exactly 1.0 in float32.
                self._logits = 40.0 + 10.0 * rng.random(user.shape) + 20.0 * user

            def compute_embeddings(self):
                d = self.n_items
                return EmbeddingBundle(
                    user=Tensor(self._logits),
                    item=Tensor(np.eye(d)),
                    participant=Tensor(self._logits[:, :d]),
                )

        model = _Confident(tiny_dataset)
        result = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, dtype="float32").run(model)
        assert result.task_a["MRR@10"] == 1.0

    def test_shape_validation(self, tiny_mgbr):
        with pytest.raises(ValueError):
            tiny_mgbr.score_items_matrix(np.arange(3), np.arange(4))
        with pytest.raises(ValueError):
            tiny_mgbr.score_participants_matrix(
                np.arange(3), np.arange(2), np.zeros((3, 4), dtype=np.int64)
            )


class TestVectorizedRanks:
    def test_matches_scalar_rank(self, rng):
        scores = rng.normal(size=(50, 10))
        ranks = ranks_of_positives(scores)
        for row in range(50):
            assert ranks[row] == rank_of_positive(scores[row], 0)

    def test_tie_convention_is_pessimistic(self):
        scores = np.array([[0.5, 0.5, 0.1], [1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(ranks_of_positives(scores), [2, 3])

    def test_positive_index_respected(self, rng):
        scores = rng.normal(size=(20, 8))
        ranks = ranks_of_positives(scores, positive_index=3)
        for row in range(20):
            assert ranks[row] == rank_of_positive(scores[row], 3)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ranks_of_positives(rng.normal(size=5))
        with pytest.raises(IndexError):
            ranks_of_positives(rng.normal(size=(3, 4)), positive_index=4)


class TestBatchSampling:
    def test_shapes_and_bounds(self, rng):
        out = choice_excluding_batch(rng, 50, [{1, 2}, set(), {10}], 8)
        assert out.shape == (3, 8)
        assert out.min() >= 0 and out.max() < 50

    def test_exclusions_respected(self, rng):
        excludes = [set(range(0, 20)), {5, 7}, set(range(30, 49))]
        out = choice_excluding_batch(rng, 50, excludes, 200)
        for row, exc in enumerate(excludes):
            assert not set(out[row].tolist()) & exc

    def test_dense_exclusion_fallback(self, rng):
        # >50% excluded forces the exact complement path per row.
        excludes = [set(range(9)), set(range(1, 10))]
        out = choice_excluding_batch(rng, 10, excludes, 40)
        assert set(out[0].tolist()) == {9}
        assert set(out[1].tolist()) == {0}

    def test_nothing_left_raises(self, rng):
        with pytest.raises(ValueError):
            choice_excluding_batch(rng, 3, [set(range(3))], 2)

    def test_empty_batch(self, rng):
        assert choice_excluding_batch(rng, 5, [], 3).shape == (0, 3)

    def test_sampler_batch_extra_exclude(self, tiny_dataset):
        sampler = NegativeSampler(
            tiny_dataset, seed=0, splits=("train", "validation", "test")
        )
        users = np.array([0, 1, 2], dtype=np.int64)
        positives = np.array([3, 4, 5], dtype=np.int64)
        negs = sampler.sample_items_batch(users, 12, extra_exclude=positives)
        for row in range(3):
            assert positives[row] not in negs[row]
            owned = sampler._user_items.get(int(users[row]), set())
            assert not set(negs[row].tolist()) & owned

    def test_candidate_lists_still_exclude_positives(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10)
        lists_a, lists_b = protocol._candidate_lists()
        for row in lists_a["candidates"]:
            assert row[0] not in row[1:]
        for row in lists_b["candidates"]:
            assert row[0] not in row[1:]


class TestSpmmCache:
    def test_transpose_cached_per_adjacency(self, rng):
        a = sp.random(6, 5, density=0.5, random_state=0, format="csr")
        x = tensor(rng.normal(size=(5, 3)))
        spmm(a, x)
        cache = getattr(a, "_repro_spmm_cache")
        first = cache[np.dtype(np.float64)]
        spmm(a, x)
        assert cache[np.dtype(np.float64)][1] is first[1]  # same transpose object

    def test_cached_gradient_still_transpose_product(self, rng):
        a = sp.random(4, 3, density=0.6, random_state=2, format="csr")
        x = tensor(rng.normal(size=(3, 2)), requires_grad=True)
        spmm(a, x)  # warm the cache
        out = spmm(a, x)
        g = rng.normal(size=out.shape)
        out.backward(g)
        np.testing.assert_allclose(x.grad, a.toarray().T @ g)

    def test_gradcheck_with_cache(self, rng):
        a = sp.random(6, 5, density=0.5, random_state=1, format="csr")
        x = tensor(rng.normal(size=(5, 4)), requires_grad=True)
        assert gradcheck(lambda t: spmm(a, t), [x])

    def test_to_csr_passthrough_is_identity(self):
        a = sp.random(5, 5, density=0.4, random_state=3, format="csr")
        assert to_csr(a) is a

    def test_to_csr_casts_dtype(self):
        a = sp.identity(3, dtype=np.float32, format="csr")
        assert to_csr(a).dtype == np.float64
        assert to_csr(a, dtype=np.float32) is a

    def test_float32_scope_uses_float32_operands(self, rng):
        a = sp.random(6, 6, density=0.4, random_state=4, format="csr")
        x = tensor(rng.normal(size=(6, 2)))
        with inference_mode():
            out = spmm(a, x)
            assert out.data.dtype == np.float32
        cache = getattr(a, "_repro_spmm_cache")
        assert np.dtype(np.float32) in cache


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert tensor([1.0, 2.0]).data.dtype == np.float64

    def test_dtype_scope_casts_and_restores(self):
        with dtype_scope("float32"):
            assert get_default_dtype() == np.float32
            assert tensor([1.0]).data.dtype == np.float32
            assert zeros(2, 3).data.dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with dtype_scope(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            with dtype_scope("int32"):
                pass  # pragma: no cover

    def test_inference_mode_disables_grad(self):
        with inference_mode():
            t = tensor([1.0], requires_grad=True)
            assert not t.requires_grad
            assert t.data.dtype == np.float32

    def test_ops_cast_results_inside_scope(self, rng):
        x = tensor(rng.normal(size=(3, 4)))  # float64 constant
        with dtype_scope(np.float32):
            y = (x * 2.0 + 1.0) @ tensor(rng.normal(size=(4, 2)))
            assert y.data.dtype == np.float32

    def test_parameters_stay_float64_inside_scope(self):
        from repro.nn import Linear

        with inference_mode():
            layer = Linear(4, 3, seed=0)
        assert layer.weight.data.dtype == np.float64
        assert layer.weight.requires_grad

    def test_parameter_values_not_truncated_by_scope(self):
        from repro.nn import Parameter

        value = np.array([0.1234567891234567])
        with dtype_scope(np.float32):
            param = Parameter(value)
        assert param.data[0] == value[0]  # no float32 round-trip

    def test_gcn_adjacency_pinned_float64_inside_scope(self):
        adj = sp.random(6, 6, density=0.4, random_state=7, format="csr")
        with inference_mode():
            gcn = GCN(6, 3, seed=0, adjacency=adj)
        assert gcn.adjacency.dtype == np.float64

    def test_nan_positive_matches_scalar_convention(self):
        scores = np.array([[np.nan, 0.5, 0.2], [1.0, 0.5, 0.2]])
        ranks = ranks_of_positives(scores)
        assert ranks[0] == rank_of_positive(scores[0], 0) == 1
        assert ranks[1] == 1

    def test_batch_sampler_ignores_out_of_range_exclusions(self, rng):
        # Out-of-range ids must not alias into a neighbour row's key
        # space (row*high+value encoding).
        out = choice_excluding_batch(rng, 10, [{12}, {2}], 500)
        assert set(out[0].tolist()) == set(range(10))  # row 0 unrestricted
        assert 2 not in out[1]

    def test_config_inference_dtype_validated(self):
        with pytest.raises(ValueError):
            MGBRConfig.small(inference_dtype="bfloat16")
        assert MGBRConfig.small(inference_dtype="float32").inference_dtype == "float32"


class TestGCNBoundAdjacency:
    def test_forward_without_argument_matches_explicit(self):
        adj = sp.random(8, 8, density=0.3, random_state=5, format="csr")
        bound = GCN(8, 4, n_layers=2, seed=0, adjacency=adj)
        free = GCN(8, 4, n_layers=2, seed=0)
        np.testing.assert_array_equal(bound().data, free(adj).data)
        np.testing.assert_array_equal(bound().data, bound(adj).data)

    def test_missing_adjacency_raises(self):
        gcn = GCN(5, 3, seed=0)
        with pytest.raises(ValueError):
            gcn()

    def test_bad_shape_rejected_at_construction(self):
        with pytest.raises(ValueError):
            GCN(5, 3, seed=0, adjacency=sp.identity(4, format="csr"))

    def test_oracle_model_uses_default_matrix_path(self, tiny_dataset):
        # A model overriding only the flat scorers inherits the batched
        # path — regression guard for duck-typed custom models.
        from tests.test_eval_protocol import _OracleModel

        result = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10).run(
            _OracleModel(tiny_dataset)
        )
        assert result.task_a["MRR@10"] == 1.0
        assert result.task_b["MRR@10"] == 1.0
