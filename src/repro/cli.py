"""Command-line entry points: ``repro-train``, ``repro-eval``, ``repro-bench``.

These wrap the library for quick terminal use::

    repro-train --model MGBR --epochs 10 --users 400 --items 120 \
                --groups 1600 --out run/mgbr.npz
    repro-eval  --checkpoint run/mgbr.npz --users 400 --items 120 --groups 1600
    repro-bench --experiment table1

All commands regenerate the synthetic dataset from ``--data-seed``, so a
checkpoint is reproducible from its command line alone.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.params import count_parameters
from repro.baselines import EATNN, GBGCN, GBMF, NGCF, DeepMF, DiffNet
from repro.core import MGBR, MGBRConfig, build_variant
from repro.core.variants import VARIANTS
from repro.data import SyntheticConfig, compute_statistics, format_table1, generate_dataset
from repro.eval import evaluate_model
from repro.training import TrainConfig, Trainer, restore_model, save_checkpoint
from repro.utils.logging import configure_logging

__all__ = ["main_train", "main_eval", "main_bench", "build_model"]

_BASELINES = {
    "DeepMF": DeepMF,
    "NGCF": NGCF,
    "DiffNet": DiffNet,
    "EATNN": EATNN,
    "GBGCN": GBGCN,
    "GBMF": GBMF,
}

_GRAPH_BASELINES = {"NGCF", "DiffNet", "GBGCN"}


def _data_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=400, help="synthetic user count")
    parser.add_argument("--items", type=int, default=120, help="synthetic item count")
    parser.add_argument("--groups", type=int, default=1600, help="synthetic deal groups")
    parser.add_argument("--data-seed", type=int, default=7, help="dataset RNG seed")


def _make_dataset(args):
    return generate_dataset(
        SyntheticConfig(n_users=args.users, n_items=args.items, n_groups=args.groups),
        seed=args.data_seed,
    )


def build_model(name: str, dataset, dim: int = 16, seed: int = 0):
    """Instantiate any model/variant by its paper name over ``dataset``."""
    if name in VARIANTS:
        config = MGBRConfig.small(d=dim, seed=seed)
        return build_variant(name, dataset.train, dataset.n_users, dataset.n_items, base=config)
    if name in _BASELINES:
        cls = _BASELINES[name]
        if name in _GRAPH_BASELINES:
            return cls(dataset.train, dataset.n_users, dataset.n_items, dim=dim, seed=seed)
        return cls(dataset.n_users, dataset.n_items, dim=dim, seed=seed)
    known = sorted(VARIANTS) + sorted(_BASELINES)
    raise SystemExit(f"unknown model {name!r}; choose from {known}")


def main_train(argv: Optional[List[str]] = None) -> int:
    """Train a model on a synthetic dataset and optionally checkpoint it."""
    parser = argparse.ArgumentParser(prog="repro-train", description=main_train.__doc__)
    _data_args(parser)
    parser.add_argument("--model", default="MGBR", help="model or variant name")
    parser.add_argument("--dim", type=int, default=16, help="embedding dimension d")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0, help="model init seed")
    parser.add_argument("--out", default="", help="checkpoint path (.npz)")
    args = parser.parse_args(argv)
    configure_logging()

    dataset = _make_dataset(args)
    model = build_model(args.model, dataset, dim=args.dim, seed=args.seed)
    print(f"{args.model}: {count_parameters(model):,} parameters")
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(
            epochs=args.epochs,
            batch_size=32,
            learning_rate=5e-3,
            train_negatives=4,
            aux_negatives=8,
            verbose=True,
            seed=args.seed,
        ),
    )
    history = trainer.fit()
    print(f"final losses: {history.last().losses}")
    result = evaluate_model(model, dataset, protocols=((9, 10),), max_instances=300)["@10"]
    print(f"Task A: {result.task_a}")
    print(f"Task B: {result.task_b}")
    if args.out:
        path = save_checkpoint(model, args.out, extra={"model": args.model})
        print(f"checkpoint written to {path}")
    return 0


def main_eval(argv: Optional[List[str]] = None) -> int:
    """Evaluate a checkpoint under the paper's @10 and @100 protocols."""
    parser = argparse.ArgumentParser(prog="repro-eval", description=main_eval.__doc__)
    _data_args(parser)
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--model", default="MGBR")
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-instances", type=int, default=300)
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=["float32", "float64"],
        help="scoring precision; float32 enables the inference fast path",
    )
    args = parser.parse_args(argv)
    configure_logging()

    dataset = _make_dataset(args)
    model = build_model(args.model, dataset, dim=args.dim, seed=args.seed)
    restore_model(model, args.checkpoint, strict=False)
    results = evaluate_model(
        model, dataset, max_instances=args.max_instances, dtype=args.dtype
    )
    for cutoff, result in results.items():
        print(f"--- {cutoff} ---")
        print(f"Task A: {result.task_a}")
        print(f"Task B: {result.task_b}")
    return 0


def main_bench(argv: Optional[List[str]] = None) -> int:
    """Print quick experiment artefacts (currently: table1 statistics)."""
    parser = argparse.ArgumentParser(prog="repro-bench", description=main_bench.__doc__)
    _data_args(parser)
    parser.add_argument(
        "--experiment",
        default="table1",
        choices=["table1"],
        help="which artefact to print (full experiments live in benchmarks/)",
    )
    args = parser.parse_args(argv)
    dataset = _make_dataset(args)
    stats = compute_statistics(dataset)
    print(format_table1(stats))
    for key, value in stats.as_dict().items():
        print(f"{key:>22}: {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution helper
    sys.exit(main_train())
