"""Tests for the gradcheck utility itself (the verifier must be verifiable)."""

import numpy as np
import pytest

from repro.nn import gradcheck, numerical_gradient, tensor


class TestNumericalGradient:
    def test_matches_known_derivative(self, rng):
        x = tensor(rng.normal(size=4), requires_grad=True)
        num = numerical_gradient(lambda t: (t * t).sum(), [x], 0)
        np.testing.assert_allclose(num, 2 * x.data, atol=1e-5)

    def test_second_argument(self, rng):
        a = tensor(rng.normal(size=3), requires_grad=True)
        b = tensor(rng.normal(size=3), requires_grad=True)
        num = numerical_gradient(lambda x, y: (x * y).sum(), [a, b], 1)
        np.testing.assert_allclose(num, a.data, atol=1e-5)


class TestGradcheck:
    def test_passes_for_correct_gradient(self, rng):
        x = tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert gradcheck(lambda t: (t * 3.0 + 1.0).sum(), [x])

    def test_catches_wrong_gradient(self, rng):
        from repro.nn.tensor import Tensor

        def buggy_double(t):
            # Claims d/dt = 1 while computing 2t.
            def backward(g):
                if t.requires_grad:
                    t._accumulate(g)  # WRONG: should be 2*g

            return Tensor._make(t.data * 2.0, (t,), backward)

        x = tensor(rng.normal(size=3), requires_grad=True)
        with pytest.raises(AssertionError, match="gradient mismatch"):
            gradcheck(buggy_double, [x])

    def test_skips_non_grad_inputs(self, rng):
        x = tensor(rng.normal(size=3), requires_grad=True)
        const = tensor(rng.normal(size=3), requires_grad=False)
        assert gradcheck(lambda a, b: (a * b).sum(), [x, const])
