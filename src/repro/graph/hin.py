"""Heterogeneous information network for the MGBR-D ablation.

MGBR-D (paper Sec. III-B) replaces the three divided views with a single
heterogeneous graph containing *all* node types and relations: launch
edges (u-i), join edges (p-i) and co-group social edges (u-p), all in one
``(|U|+|I|)``-node index space.  A single GCN over this graph produces
one embedding per node; the ablation shows the divided views win.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import scipy.sparse as sp

from repro.graph.adjacency import edges_to_adjacency, normalized_adjacency

__all__ = ["build_hin_adjacency"]


def build_hin_adjacency(
    groups: Sequence,
    n_users: int,
    n_items: int,
) -> sp.csr_matrix:
    """Build the normalized all-relations HIN adjacency.

    Node layout matches :class:`repro.graph.views.GraphViews`: users are
    nodes ``[0, |U|)`` and item ``i`` is node ``|U| + i``.

    Parameters
    ----------
    groups: deal groups with ``initiator``/``item``/``participants``.
    n_users / n_items: entity counts.
    """
    edges: List[Tuple[int, int]] = []
    for group in groups:
        u, i = int(group.initiator), int(group.item)
        edges.append((u, n_users + i))
        for p in group.participants:
            p = int(p)
            edges.append((p, n_users + i))
            edges.append((u, p))
    n_nodes = n_users + n_items
    return normalized_adjacency(edges_to_adjacency(edges, n_nodes))
