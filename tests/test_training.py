"""Tests for the trainer, histories and checkpoints."""

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.training import (
    EpochRecord,
    History,
    TrainConfig,
    Trainer,
    load_checkpoint,
    restore_model,
    save_checkpoint,
)


def _fast_config(**kw):
    base = dict(
        epochs=2, batch_size=32, learning_rate=5e-3, train_negatives=3,
        aux_negatives=3, seed=0,
    )
    base.update(kw)
    return TrainConfig(**base)


class TestTrainConfig:
    def test_from_mgbr_copies_table2_fields(self):
        m = MGBRConfig.small(batch_size=48, learning_rate=1e-3, beta=0.7)
        tc = TrainConfig.from_mgbr(m, epochs=5)
        assert tc.batch_size == 48
        assert tc.learning_rate == pytest.approx(1e-3)
        assert tc.beta == 0.7
        assert tc.epochs == 5

    def test_override_wins(self):
        m = MGBRConfig.small(batch_size=48)
        tc = TrainConfig.from_mgbr(m, batch_size=8)
        assert tc.batch_size == 8


class TestTrainerLoop:
    @pytest.mark.slow
    def test_loss_decreases_over_epochs(self, tiny_dataset, small_config):
        model = MGBR(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                     config=small_config)
        trainer = Trainer(model, tiny_dataset, _fast_config(epochs=3))
        first = trainer.train_epoch().losses["total"]
        trainer.train_epoch()
        third = trainer.train_epoch().losses["total"]
        assert third < first

    def test_baseline_without_aux_losses(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        trainer = Trainer(model, tiny_dataset, _fast_config())
        record = trainer.train_epoch()
        assert record.losses["L'_A"] == 0.0
        assert record.losses["L'_B"] == 0.0
        assert record.losses["L_A"] > 0

    def test_mgbr_gets_aux_losses(self, tiny_dataset, small_config):
        model = MGBR(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
                     config=small_config)
        trainer = Trainer(model, tiny_dataset, _fast_config())
        record = trainer.train_epoch()
        assert record.losses["L'_A"] > 0
        assert record.losses["L'_B"] > 0

    def test_mgbr_r_variant_skips_aux(self, tiny_dataset, small_config):
        from repro.core import build_variant

        model = build_variant("MGBR-R", tiny_dataset.train, tiny_dataset.n_users,
                              tiny_dataset.n_items, base=small_config)
        trainer = Trainer(model, tiny_dataset, _fast_config())
        record = trainer.train_epoch()
        assert record.losses["L'_A"] == 0.0

    def test_parameters_actually_move(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        Trainer(model, tiny_dataset, _fast_config(epochs=1)).train_epoch()
        moved = any(
            not np.allclose(before[k], v) for k, v in model.state_dict().items()
        )
        assert moved

    def test_periodic_validation_records_metrics(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        trainer = Trainer(
            model, tiny_dataset,
            _fast_config(epochs=2, eval_every=1, eval_max_instances=5),
        )
        history = trainer.fit()
        assert all("B/MRR@10" in r.metrics for r in history.records)

    def test_restore_best_rolls_back(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        trainer = Trainer(
            model, tiny_dataset,
            _fast_config(epochs=3, eval_every=1, eval_max_instances=5,
                         restore_best=True, monitor="B/MRR@10"),
        )
        history = trainer.fit()
        best = history.best_epoch("B/MRR@10")
        assert best is not None  # roll-back happened without error

    def test_early_stopping_halts(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        trainer = Trainer(
            model, tiny_dataset,
            _fast_config(epochs=50, eval_every=1, eval_max_instances=3, patience=1),
        )
        history = trainer.fit()
        assert len(history) < 50

    def test_empty_training_split_rejected(self, tiny_dataset):
        from repro.data import GroupBuyingDataset

        empty = GroupBuyingDataset(
            n_users=tiny_dataset.n_users, n_items=tiny_dataset.n_items,
            train=[g for g in tiny_dataset.train if g.size == 0][:0],
        )
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, empty, _fast_config())


def _clone_pair(builder, dataset, **config_kw):
    """Two identically-initialised (model, trainer) pairs, flat vs planned."""
    out = []
    for dedup in (False, True):
        model = builder()
        config = _fast_config(epochs=1, dedup=dedup, **config_kw)
        out.append((model, Trainer(model, dataset, config)))
    return out


def _epoch_grads_and_state(model, trainer):
    record = trainer.train_epoch()
    grads = {
        name: param.grad.copy()
        for name, param in model.named_parameters()
        if param.grad is not None
    }
    return record, grads, model.state_dict()


class TestPlannedStepParity:
    """The tentpole guarantee: the planned (dedup + factorized) _step is
    the same optimisation as the flat _step.

    GBMF's planned path is pure pair dedup — every loss row is the same
    float computation on the same operands, so its losses are
    *bit-identical* and grads/weights differ only by gradient
    accumulation order (single-ulp).  MGBR's factorized layer-0
    re-associates ``W·[e_u;e_i;e_p]`` into per-entity partial sums, so
    its parity is float-re-association-tight instead of bitwise.
    """

    def test_gbmf_losses_bit_identical_grads_to_ulp(self, tiny_dataset):
        (m_flat, t_flat), (m_plan, t_plan) = _clone_pair(
            lambda: GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0),
            tiny_dataset,
        )
        rec_flat, grads_flat, state_flat = _epoch_grads_and_state(m_flat, t_flat)
        rec_plan, grads_plan, state_plan = _epoch_grads_and_state(m_plan, t_plan)
        assert rec_plan.losses == rec_flat.losses  # bitwise, a full epoch
        assert grads_plan.keys() == grads_flat.keys()
        for name in grads_flat:
            np.testing.assert_allclose(
                grads_plan[name], grads_flat[name], rtol=1e-12, atol=1e-14,
                err_msg=f"grad {name}",
            )
        for name in state_flat:
            np.testing.assert_allclose(
                state_plan[name], state_flat[name], rtol=1e-12, atol=1e-14,
                err_msg=f"post-Adam weight {name}",
            )

    @pytest.mark.parametrize("aux_a_mode", ["literal", "listnet"])
    def test_mgbr_parity_with_aux_losses(self, tiny_dataset, small_config, aux_a_mode):
        builder = lambda: MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        (m_flat, t_flat), (m_plan, t_plan) = _clone_pair(
            builder, tiny_dataset, aux_a_mode=aux_a_mode
        )
        assert not t_flat._use_planned and t_plan._use_planned
        rec_flat, grads_flat, state_flat = _epoch_grads_and_state(m_flat, t_flat)
        rec_plan, grads_plan, state_plan = _epoch_grads_and_state(m_plan, t_plan)
        assert rec_plan.losses["L'_A"] > 0  # aux losses actually engaged
        for key in rec_flat.losses:
            assert rec_plan.losses[key] == pytest.approx(
                rec_flat.losses[key], rel=1e-10, abs=1e-12
            ), key
        assert grads_plan.keys() == grads_flat.keys()
        for name in grads_flat:
            np.testing.assert_allclose(
                grads_plan[name], grads_flat[name], rtol=1e-6, atol=1e-9,
                err_msg=f"grad {name}",
            )
        for name in state_flat:
            np.testing.assert_allclose(
                state_plan[name], state_flat[name], rtol=1e-6, atol=1e-9,
                err_msg=f"post-Adam weight {name}",
            )

    def test_mgbr_r_variant_parity_without_aux(self, tiny_dataset, small_config):
        # No corruption segments: the joint plan still mixes sentinel
        # (Task-A) and explicit (Task-B) participant slots.
        from repro.core import build_variant

        builder = lambda: build_variant(
            "MGBR-R", tiny_dataset.train, tiny_dataset.n_users,
            tiny_dataset.n_items, base=small_config,
        )
        (m_flat, t_flat), (m_plan, t_plan) = _clone_pair(builder, tiny_dataset)
        rec_flat = t_flat.train_epoch()
        rec_plan = t_plan.train_epoch()
        assert rec_plan.losses["L'_A"] == rec_flat.losses["L'_A"] == 0.0
        for key in rec_flat.losses:
            assert rec_plan.losses[key] == pytest.approx(
                rec_flat.losses[key], rel=1e-10, abs=1e-12
            ), key

    def test_auto_dedup_resolution(self, tiny_dataset, small_config):
        mgbr = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        gbmf = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        assert Trainer(mgbr, tiny_dataset, _fast_config())._use_planned
        assert not Trainer(gbmf, tiny_dataset, _fast_config())._use_planned
        assert Trainer(gbmf, tiny_dataset, _fast_config(dedup=True))._use_planned
        assert not Trainer(mgbr, tiny_dataset, _fast_config(dedup=False))._use_planned
        with pytest.raises(ValueError):
            _fast_config(dedup="sometimes")

    def test_phase_timing_recorded_and_rendered(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        record = Trainer(model, tiny_dataset, _fast_config(epochs=1)).train_epoch()
        assert set(record.phases) == {"sampling", "forward", "backward", "optimizer"}
        assert all(v >= 0.0 for v in record.phases.values())
        # Phases are rounded to 4 decimals, so their sum may exceed the
        # epoch wall-clock by up to n_phases * 5e-5 of rounding.
        assert sum(record.phases.values()) <= record.seconds + 1e-3
        line = record.line()
        assert "sam" in line and "opt" in line

    def test_phase_timing_json_round_trip(self, tmp_path):
        h = History()
        h.append(EpochRecord(1, {"total": 1.0}, seconds=2.0,
                             phases={"sampling": 0.5, "forward": 1.5}))
        loaded = History.from_json(h.to_json(tmp_path / "hist.json"))
        assert loaded.records[0].phases == {"sampling": 0.5, "forward": 1.5}


class TestHistory:
    def test_append_monotone_epochs(self):
        h = History()
        h.append(EpochRecord(epoch=1, losses={"total": 1.0}))
        with pytest.raises(ValueError):
            h.append(EpochRecord(epoch=1, losses={"total": 0.9}))

    def test_best_epoch(self):
        h = History()
        h.append(EpochRecord(1, {"total": 1.0}, {"m": 0.5}))
        h.append(EpochRecord(2, {"total": 0.9}, {"m": 0.8}))
        h.append(EpochRecord(3, {"total": 0.8}, {"m": 0.6}))
        assert h.best_epoch("m").epoch == 2
        assert h.best_epoch("absent") is None

    def test_loss_curve(self):
        h = History()
        for e, v in enumerate([1.0, 0.7, 0.5], start=1):
            h.append(EpochRecord(e, {"total": v}))
        assert h.loss_curve("total") == [1.0, 0.7, 0.5]

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            History().last()

    def test_json_roundtrip(self, tmp_path):
        h = History()
        h.append(EpochRecord(1, {"total": 1.0}, {"m": 0.2}, seconds=2.5))
        path = h.to_json(tmp_path / "hist.json")
        loaded = History.from_json(path)
        assert loaded.records[0].metrics["m"] == 0.2
        assert loaded.records[0].seconds == 2.5

    def test_record_line_format(self):
        line = EpochRecord(3, {"total": 0.5}, {"m": 0.25}, seconds=1.0).line()
        assert "epoch   3" in line and "total=0.5000" in line and "m=0.2500" in line


class TestCheckpoints:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        path = save_checkpoint(model, tmp_path / "model", extra={"note": "unit"})
        clone = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=99)
        meta = restore_model(clone, path)
        assert meta["extra"]["note"] == "unit"
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_class_mismatch_rejected(self, tmp_path, tiny_dataset, tiny_mgbr):
        path = save_checkpoint(tiny_mgbr, tmp_path / "mgbr")
        other = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        with pytest.raises(ValueError):
            restore_model(other, path)

    def test_load_checkpoint_structure(self, tmp_path, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        path = save_checkpoint(model, tmp_path / "m")
        payload = load_checkpoint(path)
        assert payload["meta"]["model_class"] == "GBMF"
        assert set(payload["state"]) == set(model.state_dict())

    def test_suffix_added(self, tmp_path, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        path = save_checkpoint(model, tmp_path / "noext")
        assert path.suffix == ".npz"
