"""Standard neural layers built on the autograd substrate.

These are the building blocks the paper's architecture composes:
``Linear`` (every ``W`` in Eq. 1-14), ``MLP`` (the prediction heads of
Eq. 16/17), ``Embedding`` (layer-0 node features and the MF baselines),
and ``Dropout``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init as inits
from repro.nn.backend import get_backend
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng

if False:  # pragma: no cover - import-time cycle guard (nn -> store -> nn);
    # Embedding imports repro.store lazily at construction instead.
    from repro.store import EmbeddingStore  # noqa: F401

__all__ = ["Linear", "Embedding", "Dropout", "MLP", "Sequential", "Identity"]

Activation = Callable[[Tensor], Tensor]

_ACTIVATIONS = {
    "sigmoid": F.sigmoid,
    "relu": F.relu,
    "leaky_relu": F.leaky_relu,
    "tanh": F.tanh,
    "identity": lambda x: x,
    "none": lambda x: x,
}


def resolve_activation(activation) -> Activation:
    """Map an activation name (or callable) to a callable."""
    if callable(activation):
        return activation
    try:
        return _ACTIVATIONS[str(activation).lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {activation!r}; known: {sorted(_ACTIVATIONS)}"
        ) from exc


class Identity(Module):
    """No-op module, useful as a placeholder in ablations."""

    def forward(self, x: Tensor) -> Tensor:
        """Return the input unchanged."""
        return x


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-initialised ``W``.

    Parameters
    ----------
    in_features / out_features: matrix dimensions (``W ∈ R^{in×out}``).
    bias: include the additive bias term.
    seed: RNG for initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
        gain: float = 1.0,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Linear dims must be positive, got {in_features}x{out_features}"
            )
        rng = as_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            inits.xavier_uniform((in_features, out_features), rng, gain=gain), "weight"
        )
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._fold_cache = {}  # blocks -> (weight version, folded ndarray)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map to the trailing dimension of ``x``."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def check_blocks(self, x: Tensor, blocks: Sequence[Sequence[int]]) -> Tuple[Tuple[int, int], ...]:
        """Validate a ``project_blocks`` request; return a hashable key."""
        if self.bias is not None:
            raise ValueError("project_blocks() requires a bias-free Linear")
        if not blocks:
            raise ValueError("project_blocks() needs at least one (start, stop) block")
        widths = {stop - start for start, stop in blocks}
        if len(widths) != 1 or widths != {x.shape[-1]}:
            # Checked up front: Tensor addition broadcasts, so unequal
            # blocks would otherwise sum into a wrong (but well-shaped)
            # partial projection instead of failing.
            raise ValueError(
                f"block widths {sorted(stop - start for start, stop in blocks)} "
                f"must all equal the input width {x.shape[-1]}"
            )
        return tuple((int(start), int(stop)) for start, stop in blocks)

    def folded_blocks(self, blocks: Tuple[Tuple[int, int], ...]) -> Tensor:
        """The summed weight-row blocks as a differentiable tensor, cached.

        The fold values (``W[s0:e0] + W[s1:e1] + …``) are cached per
        block set and keyed on :attr:`repro.nn.module.Parameter.version`
        — the optimizer's in-place ``step()`` (and any state-dict load)
        bumps the version, so a planned call after a weight update can
        never read stale folds, while the calls *within* one step (and
        every chunk of an evaluation sweep) reuse the fold for free.

        Each call returns a *fresh* graph node over the cached values
        whose backward adds the incoming gradient into every block of
        ``weight.grad`` directly: nodes are never shared between
        forward graphs, so reuse cannot double-count gradients and a
        cached node can never carry a stale ``.grad`` into a later
        backward pass.

        The cache dict itself is **not** locked: correctness relies on
        the single-scorer-thread invariant — only one thread runs the
        model's forward at a time.  The serving engine
        (:class:`repro.serving.engine.ServingEngine`) enforces this by
        construction (every flush and refresh happens on its worker
        thread, asserted there); code that shares one model across
        threads without such serialization is out of contract.
        """
        weight = self.weight
        folded = self.folded_blocks_raw(blocks)

        def backward(g: np.ndarray) -> None:
            if not weight.requires_grad:
                return
            grad = np.zeros_like(weight.data)
            for start, stop in blocks:
                grad[start:stop] += g
            weight._accumulate(grad)

        return Tensor._make(folded, (weight,), backward)

    def folded_blocks_raw(self, blocks: Tuple[Tuple[int, int], ...]) -> np.ndarray:
        """The cached fold values as a raw array (no graph node).

        Shares the version-keyed cache with :meth:`folded_blocks`; the
        fused no-tape executor reads folds through this accessor so both
        executors see the identical cached array (a prerequisite for the
        float64 bit-parity guarantee).  Callers must not mutate the
        returned array.
        """
        weight = self.weight
        entry = self._fold_cache.get(blocks)
        if entry is None or entry[0] != weight.version:
            folded = get_backend().ensure_contiguous(
                weight.data[blocks[0][0] : blocks[0][1]]
            )
            for start, stop in blocks[1:]:
                folded = folded + weight.data[start:stop]
            entry = (weight.version, folded)
            self._fold_cache[blocks] = entry
        return entry[1]

    def project_blocks(self, x: Tensor, blocks: Sequence[Sequence[int]]) -> Tensor:
        """Apply the *sum* of weight-row blocks to ``x`` — a partial map.

        When this layer's input is a concatenation ``[a; b; c]`` (possibly
        with repeated segments), ``x W = a W_a + b W_b + c W_c`` where
        ``W_s`` are row blocks of ``W``.  ``project_blocks(a, [(s, e)])``
        computes one such per-segment partial projection; passing several
        ``(start, stop)`` blocks folds segments that receive the *same*
        input (e.g. the duplicated ``g⁰ || g⁰`` layer-0 gate state) into
        a single matmul.  The factorized scoring plan computes these
        partials once per unique entity instead of once per flat request
        row.  Only valid for bias-free layers — a bias cannot be split
        across partial sums unambiguously.  Fold weights are cached via
        :meth:`folded_blocks` (invalidated by parameter-version bumps).
        """
        return x @ self.folded_blocks(self.check_blocks(x, blocks))


class Embedding(Module):
    """Learnable lookup table ``(num_embeddings, dim)``.

    The paper's layer-0 GCN features ``X⁰`` are exactly such a table,
    initialised from a standard Gaussian (Sec. II-C2).

    Storage is delegated to a :class:`repro.store.EmbeddingStore`: the
    default :class:`repro.store.DenseStore` keeps the historical single
    ``weight`` parameter (``emb.weight`` / ``emb.all()`` behave exactly
    as before), while ``n_shards >= 2`` partitions the *same* initial
    values across a :class:`repro.store.ShardedStore` whose per-shard
    parameters register here as ``shard0..shardN-1``.  ``service=True``
    moves those shards into worker *processes*
    (:class:`repro.store.ProcessShardedStore`) behind the identical
    contract.  ``quantize="int8"|"fp16"`` adds the quantised memory
    tier on any layout (:class:`repro.store.QuantizedStore` /
    worker-side quantisation — see docs/quantization.md).  Checkpoint
    state is canonical either way — one logical ``weight`` table — so a
    model saved under any layout restores under any other (see
    ``Module.state_dict``).
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        seed: SeedLike = None,
        std: float = 0.1,
        store: Optional["EmbeddingStore"] = None,
        n_shards: int = 0,
        partition: str = "range",
        service: bool = False,
        quantize: Optional[str] = None,
    ) -> None:
        super().__init__()
        from repro.store import make_store  # deferred: breaks the nn<->store cycle

        if num_embeddings <= 0 or dim <= 0:
            raise ValueError(
                f"Embedding dims must be positive, got {num_embeddings}x{dim}"
            )
        self.num_embeddings = num_embeddings
        self.dim = dim
        if store is None:
            rng = as_rng(seed)
            store = make_store(
                inits.normal_((num_embeddings, dim), rng, std=std),
                n_shards=n_shards,
                partition=partition,
                service=service,
                quantize=quantize,
            )
        if (store.num_rows, store.dim) != (num_embeddings, dim):
            raise ValueError(
                f"store holds a ({store.num_rows}, {store.dim}) table, "
                f"embedding expects ({num_embeddings}, {dim})"
            )
        self.store = store
        for name, param in store.named_parameters():
            setattr(self, name, param)

    def forward(self, index) -> Tensor:
        """Gather rows for integer ``index`` (1-D array-like)."""
        return self.store.gather(np.asarray(index, dtype=np.int64))

    def all(self) -> Tensor:
        """The full logical table as a tensor (input to full-graph GCNs)."""
        return self.store.all()

    # ------------------------------------------------------------------
    # Canonical (layout-independent) checkpoint state
    # ------------------------------------------------------------------
    def _state_names(self) -> List[str]:
        return ["weight"]

    def _state_items(self, exclude=()):
        if "weight" in set(exclude):
            return {}
        return {"weight": self.store.logical_state()}

    def _load_state_items(self, entries, dtype=None) -> None:
        for name, values in entries.items():
            if name != "weight":  # pragma: no cover - filtered upstream
                raise KeyError(f"unexpected embedding state entry {name!r}")
            self.store.load_logical(np.asarray(values), dtype)


class Dropout(Module):
    """Inverted dropout active only in training mode."""

    def __init__(self, p: float = 0.5, seed: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero elements of ``x`` when training."""
        return F.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_list: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self._layer_list.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        """Chain the layers left to right."""
        for layer in self._layer_list:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layer_list)

    def __len__(self) -> int:
        return len(self._layer_list)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes.

    ``MLP(d_in, [h1, h2], 1)`` builds ``d_in→h1→h2→1`` with the hidden
    activation between layers and no activation after the last layer
    (Eq. 16/17 apply the sigmoid outside the MLP).
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        activation="relu",
        dropout: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        self.activation = resolve_activation(activation)
        dims = [in_features, *hidden, out_features]
        self._linears: List[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, seed=rng)
            setattr(self, f"fc{i}", layer)
            self._linears.append(layer)
        self.drop: Optional[Dropout] = Dropout(dropout, seed=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        """Run the stack; hidden activations (and dropout) between layers."""
        last = len(self._linears) - 1
        for i, layer in enumerate(self._linears):
            x = layer(x)
            if i != last:
                x = self.activation(x)
                if self.drop is not None:
                    x = self.drop(x)
        return x
