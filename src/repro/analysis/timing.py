"""Epoch-timing measurement — the minutes/epoch column of Table V.

Wall-clock timing of complete training epochs through the real
:class:`repro.training.Trainer` (not microbenchmarks), so the relative
ordering reflects exactly what the paper measured: MGBR slowest (expert
/gate stack), MF models fastest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.data.schema import GroupBuyingDataset
from repro.training.trainer import TrainConfig, Trainer

__all__ = ["EpochTiming", "time_training_epoch"]


@dataclass(frozen=True)
class EpochTiming:
    """Result of timing ``n_epochs`` real training epochs."""

    model_name: str
    n_parameters: int
    seconds_per_epoch: float
    n_epochs: int

    @property
    def minutes_per_epoch(self) -> float:
        """Table V reports minutes; convert for the printed row."""
        return self.seconds_per_epoch / 60.0


def time_training_epoch(
    model,
    dataset: GroupBuyingDataset,
    config: Optional[TrainConfig] = None,
    n_epochs: int = 1,
    warmup_epochs: int = 0,
) -> EpochTiming:
    """Measure mean wall-clock seconds per training epoch.

    Parameters
    ----------
    model / dataset / config: as for :class:`repro.training.Trainer`.
    n_epochs: epochs to average over.
    warmup_epochs: untimed epochs first (JIT-free NumPy makes warmup
        nearly irrelevant, but cache effects exist on first touch).
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    trainer = Trainer(model, dataset, config)
    for _ in range(warmup_epochs):
        trainer.train_epoch()
    started = time.perf_counter()
    for _ in range(n_epochs):
        trainer.train_epoch()
    elapsed = (time.perf_counter() - started) / n_epochs
    return EpochTiming(
        model_name=type(model).__name__,
        n_parameters=model.num_parameters(),
        seconds_per_epoch=elapsed,
        n_epochs=n_epochs,
    )
