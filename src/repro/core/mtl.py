"""The multi-task learning module: L layers of experts + gates (Sec. II-D).

Layer topology (Fig. 3 of the paper): each layer holds three expert
banks (A, B, S) and three gates.  Gate states thread through the stack:

* layer-0 state: ``g⁰_A = g⁰_B = g⁰_S = e_u || e_i || e_p`` (Eq. 15);
* layer ``l``: banks read the concatenated previous gate states
  (Eq. 7-9) and gates mix the banks (Eq. 10-14);
* the final layer's ``g^L_A`` / ``g^L_B`` feed the prediction MLPs.

The MGBR-M ablation drops bank S and gate S, collapsing the module into
two independent towers (each task gate then attends only over its own
bank, and the adjusted-gate pair heads land on that bank as well).

Shape note (DESIGN.md §5): the general formulas make the first layer's
expert inputs the *duplicated* concatenation ``g⁰_A || g⁰_S`` (identical
vectors).  ``first_layer_compact=True`` feeds ``g⁰`` once instead,
matching the papers' annotated ``6d``/``9d`` first-layer sizes under its
``e_u ∈ R^d`` reading.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import MGBRConfig
from repro.core.experts import ExpertBank
from repro.core.gates import AdjustedGate, SharedGate, TaskGate
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, take_rows
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["MTLLayer", "MultiTaskModule"]


class MTLLayer(Module):
    """One layer of the multi-task module.

    Parameters
    ----------
    task_state_dim: width of each task gate's previous output
        (``6d_view`` at layer 1, expert width afterwards).
    expert_dim: expert/gate output width (the paper's ``d``).
    pair_dim: width of the raw pair embeddings ``e_u||e_i`` (4d).
    n_experts: ``K``.
    shared: include bank S + gate S (False under MGBR-M).
    compact_input: feed the previous state once instead of the
        duplicated concatenation (only meaningful when all previous
        states are identical, i.e. at layer 1).
    alpha_a / alpha_b: adjusted-gate control coefficients.
    """

    def __init__(
        self,
        task_state_dim: int,
        expert_dim: int,
        pair_dim: int,
        n_experts: int,
        shared: bool = True,
        compact_input: bool = False,
        alpha_a: float = 0.1,
        alpha_b: float = 0.1,
        gate_softmax: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(seed, 6)
        self.shared = shared
        self.compact_input = compact_input
        if compact_input:
            in_task = task_state_dim
            in_shared = task_state_dim
        else:
            in_task = 2 * task_state_dim if shared else task_state_dim
            in_shared = 3 * task_state_dim
        self.in_task = in_task
        self.in_shared = in_shared

        self.experts_a = ExpertBank(in_task, expert_dim, n_experts, seed=rngs[0])
        self.experts_b = ExpertBank(in_task, expert_dim, n_experts, seed=rngs[1])
        self.gate_a = TaskGate(
            in_task, pair_dim, n_experts, own_is_ui=True, alpha=alpha_a,
            softmax=gate_softmax, shared=shared, seed=rngs[2],
        )
        self.gate_b = TaskGate(
            in_task, pair_dim, n_experts, own_is_ui=False, alpha=alpha_b,
            softmax=gate_softmax, shared=shared, seed=rngs[3],
        )
        if shared:
            self.experts_s = ExpertBank(in_shared, expert_dim, n_experts, seed=rngs[4])
            self.gate_s = SharedGate(in_shared, n_experts, softmax=gate_softmax, seed=rngs[5])
        else:
            self.experts_s = None
            self.gate_s = None

    def forward(
        self,
        g_a: Tensor,
        g_s: Optional[Tensor],
        g_b: Tensor,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        pairs=None,
        adj_logits=None,
    ) -> Tuple[Tensor, Optional[Tensor], Tensor]:
        """Advance the gate states one layer.

        Returns ``(g_a, g_s, g_b)``; ``g_s`` is ``None`` without sharing.
        ``pairs`` optionally carries the precomputed pair features (see
        :meth:`repro.core.gates.AdjustedGate.build_pairs`) so the stack
        concatenates them once instead of per gate per layer.
        ``adj_logits`` optionally carries the two gates' factorized
        adjusted-gate logit triples ``(logits_a, logits_b)`` (the planned
        path); the raw embeddings are then unused and may be ``None``.
        """
        la, lb = adj_logits if adj_logits is not None else (None, None)
        if self.shared:
            if self.compact_input:
                state_a = g_a
                state_b = g_b
                state_s = g_s
            else:
                state_a = concat([g_a, g_s], axis=1)      # e^l_{A,in}, Eq. 10
                state_b = concat([g_b, g_s], axis=1)
                state_s = concat([g_a, g_s, g_b], axis=1)  # e^l_{S,in}, Eq. 14
            bank_a = self.experts_a(state_a)
            bank_b = self.experts_b(state_b)
            bank_s = self.experts_s(state_s)
            new_a = self.gate_a(state_a, bank_a, bank_s, e_u, e_i, e_p, pairs=pairs, adj_logits=la)
            new_b = self.gate_b(state_b, bank_b, bank_s, e_u, e_i, e_p, pairs=pairs, adj_logits=lb)
            new_s = self.gate_s(state_s, bank_a, bank_s, bank_b)
            return new_a, new_s, new_b

        bank_a = self.experts_a(g_a)
        bank_b = self.experts_b(g_b)
        new_a = self.gate_a(g_a, bank_a, None, e_u, e_i, e_p, pairs=pairs, adj_logits=la)
        new_b = self.gate_b(g_b, bank_b, None, e_u, e_i, e_p, pairs=pairs, adj_logits=lb)
        return new_a, None, new_b

    # ------------------------------------------------------------------
    # Factorized layer-0 (planned scoring path)
    # ------------------------------------------------------------------
    def _entity_blocks(self, view_dim: int, entity: int, folds: int):
        """Weight-row blocks one entity occupies in the concat gate state.

        The layer-0 state is ``folds`` copies of ``g⁰ = e_u||e_i||e_p``;
        entity ``j``'s segment sits at offset ``j·view_dim`` inside each
        copy.  Folding the copies sums their weight blocks, which is
        exactly what the duplicated concatenation computes.
        """
        triple = 3 * view_dim
        off = entity * view_dim
        return [(f * triple + off, f * triple + off + view_dim) for f in range(folds)]

    def forward_planned_first(
        self,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        user_pos,
        item_pos,
        part_pos,
        adj_logits=None,
    ) -> Tuple[Tensor, Optional[Tensor], Tensor]:
        """Layer-0 forward with ``g⁰`` factorized over unique entities.

        ``e_u``/``e_i``/``e_p`` hold one row per *unique* entity of a
        :class:`repro.plan.ScoringPlan` (gathered upstream — from a
        dense tensor or per-shard from a :class:`repro.store
        .ShardedStore`, the stack is layout-blind); the ``*_pos`` arrays
        map each unique request onto them.  Every layer-0 linear (expert
        and generic-gate, Eq. 7-10/14) reads a concatenation of ``g⁰``
        copies, so ``W·[e_u; e_i; e_p] = W_u·e_u + W_i·e_i + W_p·e_p``
        distributes into per-entity partial projections computed once
        per unique entity and gather-added per request — the FLOP cut
        that makes candidate-matrix scoring cheap.  Each bank's partial
        projection is a single stacked matmul over cached fold weights
        (:meth:`repro.core.experts.ExpertBank.project_blocks`), so the
        per-entity work is one GEMM per bank rather than ``K``.
        """
        if self.compact_input:
            folds_task, folds_shared = 1, 1
        elif self.shared:
            folds_task, folds_shared = 2, 3
        else:
            folds_task, folds_shared = 1, 0
        v = e_u.shape[-1]
        blocks_task = [self._entity_blocks(v, j, folds_task) for j in range(3)]

        def per_pair(project, blocks):
            """Partial-project each entity table, then gather-add per request."""
            return (
                take_rows(project(e_u, blocks[0]), user_pos)
                + take_rows(project(e_i, blocks[1]), item_pos)
                + take_rows(project(e_p, blocks[2]), part_pos)
            )

        bank_a = per_pair(self.experts_a.project_blocks, blocks_task)
        bank_b = per_pair(self.experts_b.project_blocks, blocks_task)
        logits_a = per_pair(self.gate_a.generic.attention.project_blocks, blocks_task)
        logits_b = per_pair(self.gate_b.generic.attention.project_blocks, blocks_task)
        la, lb = adj_logits if adj_logits is not None else (None, None)
        if self.shared:
            blocks_shared = [self._entity_blocks(v, j, folds_shared) for j in range(3)]
            bank_s = per_pair(self.experts_s.project_blocks, blocks_shared)
            logits_s = per_pair(self.gate_s.attention.project_blocks, blocks_shared)
            new_a = self.gate_a(
                None, bank_a, bank_s, None, None, None,
                adj_logits=la, generic_logits=logits_a,
            )
            new_b = self.gate_b(
                None, bank_b, bank_s, None, None, None,
                adj_logits=lb, generic_logits=logits_b,
            )
            new_s = self.gate_s(None, bank_a, bank_s, bank_b, logits=logits_s)
            return new_a, new_s, new_b
        new_a = self.gate_a(
            None, bank_a, None, None, None, None,
            adj_logits=la, generic_logits=logits_a,
        )
        new_b = self.gate_b(
            None, bank_b, None, None, None, None,
            adj_logits=lb, generic_logits=logits_b,
        )
        return new_a, None, new_b


class MultiTaskModule(Module):
    """The full L-layer expert/gate stack mapping ``(e_u,e_i,e_p)`` to
    the task representations ``(g^L_A, g^L_B)``.

    Constructed from an :class:`MGBRConfig`; respects its ablation
    switches (``use_shared_experts``, ``use_adjusted_gates``).
    """

    def __init__(self, config: MGBRConfig, seed: SeedLike = None) -> None:
        super().__init__()
        self.config = config
        shared = config.use_shared_experts
        alpha_a = config.alpha_a if config.use_adjusted_gates else 0.0
        alpha_b = config.alpha_b if config.use_adjusted_gates else 0.0
        pair_dim = 2 * config.view_dim  # e.g. e_u||e_i is 4d wide
        rngs = spawn_rngs(seed, config.mtl_layers)
        self._layers: List[MTLLayer] = []
        for layer_idx in range(config.mtl_layers):
            if layer_idx == 0:
                state_dim = config.triple_dim  # 6d: e_u||e_i||e_p
                compact = config.first_layer_compact
            else:
                state_dim = config.d
                compact = False
            layer = MTLLayer(
                task_state_dim=state_dim,
                expert_dim=config.d,
                pair_dim=pair_dim,
                n_experts=config.n_experts,
                shared=shared,
                compact_input=compact,
                alpha_a=alpha_a,
                alpha_b=alpha_b,
                gate_softmax=config.gate_softmax,
                seed=rngs[layer_idx],
            )
            setattr(self, f"mtl{layer_idx}", layer)
            self._layers.append(layer)

    def forward(self, e_u: Tensor, e_i: Tensor, e_p: Tensor) -> Tuple[Tensor, Tensor]:
        """Run the stack; returns the final ``(g^L_A, g^L_B)``.

        Inputs are per-sample object embeddings, each ``(batch, 2d)``.
        """
        g0 = concat([e_u, e_i, e_p], axis=1)  # Eq. 15
        g_a, g_s, g_b = g0, g0, g0
        if not self.config.use_shared_experts:
            g_s = None
        # The adjusted gates' pair features depend only on the raw
        # embeddings — build them once and share across all layers and
        # both towers (three concats total instead of three per gate).
        pairs = None
        if self.config.use_adjusted_gates and (
            self.config.alpha_a > 0 or self.config.alpha_b > 0
        ):
            pairs = AdjustedGate.build_pairs(e_u, e_i, e_p)
        for layer in self._layers:
            g_a, g_s, g_b = layer(g_a, g_s, g_b, e_u, e_i, e_p, pairs=pairs)
        return g_a, g_b

    def forward_planned(
        self,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        user_pos,
        item_pos,
        part_pos,
    ) -> Tuple[Tensor, Tensor]:
        """Run the stack over a deduplicated scoring plan.

        Inputs are *unique-entity* embedding rows plus the per-request
        gather maps of a :class:`repro.plan.ScoringPlan` (Task A
        passes the single mean-participant row with an all-zero
        ``part_pos``).  Layer 0 — the bulk of the stack's FLOPs, its
        linears being 6d/12d/18d wide — runs factorized per unique
        entity (:meth:`MTLLayer.forward_planned_first`), and every
        adjusted gate's pair logits are likewise assembled from
        per-entity partials, so no ``(requests, 4d)`` pair feature is
        ever materialised.  Later layers run densely over the unique
        requests, which the plan has already collapsed.  Returns
        ``(g^L_A, g^L_B)`` with one row per unique request; numerically
        this matches :meth:`forward` up to float re-association.

        Every op here (gathers, weight-block partial projections,
        combines) records on the autograd tape, so the same path serves
        both inference (under ``no_grad``) and the planned *training*
        step, where gradients flow back through the ``*_pos`` gather
        maps into the unique-entity embeddings (and, for store-backed
        tables, onward through the per-shard scatter-add).  The fold
        weights behind every ``project_blocks`` call are cached across
        the step's planned calls and evaluation chunks, keyed on
        parameter versions so an optimizer step can never serve stale
        folds (tests/test_fold_cache.py).
        """
        adj_logits = []
        for layer in self._layers:
            logits_for = lambda gate: (
                gate.adjusted.pair_logits(e_u, e_i, e_p, user_pos, item_pos, part_pos)
                if gate.adjusted is not None
                else None
            )
            adj_logits.append((logits_for(layer.gate_a), logits_for(layer.gate_b)))
        first = self._layers[0]
        g_a, g_s, g_b = first.forward_planned_first(
            e_u, e_i, e_p, user_pos, item_pos, part_pos, adj_logits=adj_logits[0]
        )
        for layer, logits in zip(self._layers[1:], adj_logits[1:]):
            g_a, g_s, g_b = layer(
                g_a, g_s, g_b, None, None, None, adj_logits=logits
            )
        return g_a, g_b
