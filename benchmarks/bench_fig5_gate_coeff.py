"""Fig. 5 — MGBR's performance vs adjusted-gate coefficient (α_A = α_B).

Sweeps α over the paper's grid {0.05, 0.1, 0.2, 0.3}, retraining MGBR
per point.

Shape expectations (paper Sec. III-H.2): moderate α beats the extremes —
large α drowns the expert-network information in raw (u,i,p) pair
signal, tiny α under-uses it.  As with Fig. 4 the asserted structure is
interior-or-flat, not the exact paper optimum of 0.1.
"""

from conftest import BENCH_EPOCHS, bench_dataset, mgbr_bench_config, write_result

from repro.analysis import gate_coefficient_sweep

VALUES = (0.05, 0.1, 0.2, 0.3)


def test_fig5_gate_coefficient_sweep(benchmark, bench_dataset):
    """Regenerate Fig. 5's curves."""

    def run():
        return gate_coefficient_sweep(
            bench_dataset,
            mgbr_bench_config(),
            values=VALUES,
            epochs=max(BENCH_EPOCHS // 2, 6),
            eval_max_instances=150,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["FIG. 5 — PERFORMANCE VS ADJUSTED-GATE CONTROL COEFFICIENT (alpha_A = alpha_B)"]
    lines.append(f"{'alpha':>6s} {'A MRR@10':>10s} {'A NDCG@10':>10s} {'B MRR@10':>10s} {'B NDCG@10':>10s}")
    for point in sweep.points:
        lines.append(
            f"{point.value:6.2f} {point.metrics['A/MRR@10']:10.4f} "
            f"{point.metrics['A/NDCG@10']:10.4f} {point.metrics['B/MRR@10']:10.4f} "
            f"{point.metrics['B/NDCG@10']:10.4f}"
        )
    best = sweep.best("B/MRR@10")
    lines.append(f"best alpha by Task-B MRR@10: {best.value} ({best.metrics['B/MRR@10']:.4f})")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig5_gate_coeff.txt", text)

    assert len(sweep.points) == len(VALUES)
    series = sweep.series("B/MRR@10")
    assert all(0.0 <= v <= 1.0 for v in series)
    # All-alpha configurations remain trainable: no collapsed runs.
    random_mrr = sum(1.0 / r for r in range(1, 11)) / 10
    assert max(series) > random_mrr
