"""Asynchronous serving engine: a worker thread owns the flush clock.

:class:`repro.serving.frontend.RequestBatcher` is synchronous by design
— the caller decides when to flush.  Production traffic has no such
caller: requests arrive concurrently from many submitters and *someone*
must trade latency against batch size.  :class:`ServingEngine` is that
someone — a dedicated worker thread that flushes the shared
:class:`repro.serving.core.RequestQueue` when the first of three
triggers fires:

* **deadline** — the oldest pending request has waited ``max_delay_ms``
  (the latency budget: no request waits longer than one deadline plus
  one flush);
* **size** — a task's pending flat rows reached ``max_pending`` (the
  batch-size budget: planned calls stay bounded no matter the arrival
  rate);
* **drain** — :meth:`drain` / :meth:`stop` asked for the queue to empty
  now (shutdown and checkpoint swaps never strand tickets).

Threading model — the single-scorer invariant
---------------------------------------------
``submit_items`` / ``submit_participants`` are safe from **any**
thread: they validate, enqueue under the engine lock, and return a
:class:`repro.serving.core.PendingScores` ticket whose
:meth:`~repro.serving.core.PendingScores.wait` blocks on an event until
the worker's clock fires.  The **model** is only ever touched by the
worker thread (asserted in ``_flush``): the encoder cache
(``refresh_cache``), the version-keyed fold cache
(:meth:`repro.nn.layers.Linear.folded_blocks`) and the plan entity
caches are all plain dicts that rely on this serialization — that is
what makes them safe without per-call locking.  Store gather *counters*
are additionally lock-guarded (see :mod:`repro.store.base`) so
:meth:`stats` can snapshot them from any thread mid-flush.  Weight
swaps route through :meth:`refresh`, which the worker executes between
flushes — never concurrently with one.

Scores are **bit-identical** to a synchronous
``RequestBatcher.flush`` over the same co-batched requests: both shells
drive the same :class:`repro.serving.core.ScoringCore`, so the plan,
the model call and the scatter are literally the same computation.

A flush whose model call raises fails that task's tickets with the
captured exception (submitters see the real error from ``wait()``) and
the worker keeps serving subsequent batches — one poisoned batch never
takes the engine down.

Overload behaviour
------------------
Past saturation an unbounded queue makes latency a function of how long
the overload has lasted.  Three optional mechanisms make the engine fail
*predictably* instead (see :mod:`repro.serving.errors` and
``docs/serving.md``):

* **admission control** — ``max_queue_rows`` bounds total pending flat
  rows; a submit past the budget raises
  :class:`repro.serving.errors.OverloadError` synchronously (no ticket,
  no waiting);
* **load shedding** — ``max_queue_age_ms`` bounds queue wait; the worker
  fails requests that aged past it with
  :class:`repro.serving.errors.DeadlineExceeded` *before* planning them,
  so shed rate — not latency — absorbs the excess;
* **graceful degradation** — a
  :class:`repro.serving.degrade.DegradationPolicy` truncates candidate
  lists to a top-K and/or routes flushes to a cheap fallback model once
  queue depth has stayed above a watermark for N consecutive flushes;
  degraded tickets carry ``degraded=True``.

``stats()["overload"]`` accounts for every path: ``accepted ==`` scored
``+ shed + aborted``, and ``rejected`` submits never created a ticket.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.nn.backend import ArrayBackend, backend_scope, get_backend, resolve_backend
from repro.serving.core import PendingScores, RequestQueue, ScoringCore, split_expired
from repro.serving.degrade import DegradationPolicy
from repro.serving.errors import DeadlineExceeded, EngineStopped

__all__ = ["ServingEngine"]


class ServingEngine:
    """Thread-safe serving front-end with a worker-owned flush clock.

    Parameters
    ----------
    model: any :class:`repro.baselines.base.GroupBuyingRecommender`.
    dtype: scoring precision (``"float32"`` for the inference fast path).
    max_pending: flat request rows per task that trigger a size flush.
    max_delay_ms: latency deadline — the oldest pending request is
        flushed at most this many milliseconds after submission (plus
        one flush duration).
    max_queue_rows: admission (depth) budget — total pending flat rows
        beyond which ``submit_*`` raises
        :class:`repro.serving.errors.OverloadError` instead of
        enqueueing.  ``None`` (default) admits everything.
    max_queue_age_ms: shedding (age) budget — requests that waited
        longer than this in the queue are failed with
        :class:`repro.serving.errors.DeadlineExceeded` by the worker
        before planning, instead of being scored late.  ``None``
        (default) never sheds.
    degradation: optional
        :class:`repro.serving.degrade.DegradationPolicy` — under
        sustained queue pressure, truncate candidate lists and/or score
        via a registered fallback model; served tickets carry
        ``degraded=True``.
    executor: planned-call executor knob (``"auto"``/``"fused"``/
        ``"tape"``, see ``docs/backends.md``) applied to the model (and
        the degradation fallback, if any).  ``"auto"`` (default) serves
        fused unless ``REPRO_EXECUTOR=tape`` overrides it.
    backend: array-backend knob for the flush thread — a registered
        name (``"numpy"``/``"parallel"``), an
        :class:`repro.nn.ArrayBackend` instance, or ``"auto"``
        (default).  ``"auto"`` inherits whatever backend the thread
        calling :meth:`start` is using (which is itself seeded from
        ``REPRO_BACKEND``) — the worker thread would otherwise silently
        reset to the process default.  Resolved once per :meth:`start`;
        every flush runs under it.

    Usage::

        engine = ServingEngine(model, max_delay_ms=2.0)
        with engine:                       # start()/stop() lifecycle
            ticket = engine.submit_items(user=3, candidate_items=[1, 2])
            scores = ticket.wait(timeout=1.0)

    ``stop()`` drains: every pending ticket resolves before the worker
    exits.  ``stop(drain=False)`` instead fails still-pending tickets
    with :class:`repro.serving.errors.EngineStopped` — either way, no
    waiter is ever left to hit its own timeout.
    """

    def __init__(
        self,
        model,
        dtype: str = "float64",
        max_pending: int = 65536,
        max_delay_ms: float = 2.0,
        max_queue_rows: Optional[int] = None,
        max_queue_age_ms: Optional[float] = None,
        degradation: Optional[DegradationPolicy] = None,
        executor: str = "auto",
        backend: object = "auto",
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if not max_delay_ms > 0:
            raise ValueError(f"max_delay_ms must be > 0, got {max_delay_ms}")
        if max_queue_age_ms is not None and not max_queue_age_ms > 0:
            raise ValueError(
                f"max_queue_age_ms must be > 0, got {max_queue_age_ms}"
            )
        if not isinstance(backend, ArrayBackend) and backend != "auto":
            get_backend(backend)  # fail fast on unknown names
        self._backend_mode = backend
        self._worker_backend: Optional[ArrayBackend] = None
        self._core = ScoringCore(model, dtype, executor=executor)
        self.max_pending = max_pending
        self.max_delay_ms = float(max_delay_ms)
        self.max_queue_age_ms = (
            None if max_queue_age_ms is None else float(max_queue_age_ms)
        )
        self.degradation = degradation
        self._fallback_core: Optional[ScoringCore] = None
        if degradation is not None:
            degradation.check_compatible(model)
            if degradation.fallback_model is not None:
                self._fallback_core = ScoringCore(
                    degradation.fallback_model, dtype, executor=executor
                )
        self._cv = threading.Condition()
        self._queue = RequestQueue(max_rows=max_queue_rows)
        self._seq = 0              # newest submitted request
        self._served_seq = 0       # newest request a finished flush covered
        self._size_due = False
        self._drain_requested = False
        self._refresh_requested = False
        self._stopping = False
        self._worker: Optional[threading.Thread] = None
        self._worker_error: Optional[BaseException] = None
        self._flush_causes = {"deadline": 0, "size": 0, "drain": 0, "stop": 0}
        self._flush_count = 0
        self._flush_seconds_total = 0.0
        self._max_flush_seconds = 0.0
        # Overload accounting: accepted == scored + shed + aborted, and
        # rejected submits never created a ticket.
        self._accepted = 0         # submits the admission controller let in
        self._shed = 0             # requests failed with DeadlineExceeded
        self._aborted = 0          # requests failed with EngineStopped
        self._degraded_served = 0  # requests resolved by a degraded flush
        self._pressure_streak = 0  # consecutive flushes at/above watermark
        self._degraded_active = False

    @property
    def model(self):
        return self._core.model

    @property
    def dtype(self) -> str:
        return self._core.dtype

    @property
    def executor(self) -> str:
        """The executor knob both cores serve with (see docs/backends.md)."""
        return self._core.executor

    @property
    def backend(self) -> str:
        """The array backend the flush thread runs under.

        The resolved backend's name once the engine has started; before
        that, the knob as configured (``"auto"`` resolves at
        :meth:`start` against the starting thread's active backend).
        """
        if self._worker_backend is not None:
            return self._worker_backend.name
        mode = self._backend_mode
        return mode.name if isinstance(mode, ArrayBackend) else str(mode)

    @property
    def max_queue_rows(self) -> Optional[int]:
        """The admission depth budget (``None`` = admit everything)."""
        return self._queue.max_rows

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingEngine":
        """Spawn the worker thread that owns the flush clock."""
        with self._cv:
            if self._worker is not None and self._worker.is_alive():
                raise RuntimeError("serving engine is already running")
            self._stopping = False
            self._worker_error = None
            # Capture the starting thread's backend NOW: the worker
            # thread starts at the process default, which would silently
            # drop an enclosing backend_scope (the thread-local does not
            # cross spawns).  An explicit knob wins over inheritance.
            self._worker_backend = resolve_backend(
                self._backend_mode, inherited=get_backend()
            )
            self._worker = threading.Thread(
                target=self._run_worker, name="repro-serving-engine", daemon=True
            )
            self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker, resolving every outstanding ticket (idempotent).

        With ``drain=True`` (default) pending requests are flushed
        first: every outstanding ticket resolves with scores (or with
        its flush's exception) before this returns.  With
        ``drain=False`` still-pending tickets are **failed immediately**
        with :class:`repro.serving.errors.EngineStopped` — the fast path
        out of a saturated queue.  Either way no waiter is left to hit
        its own timeout, and submits arriving after ``stop()`` raise
        :class:`repro.serving.errors.EngineStopped` synchronously.
        """
        with self._cv:
            worker = self._worker
            self._stopping = True
            if not drain and self._queue.has_pending:
                items, participants, last_seq = self._queue.swap()
                self._served_seq = max(self._served_seq, last_seq)
                self._aborted += len(items) + len(participants)
                exc = EngineStopped(
                    "serving engine stopped (drain=False) before this "
                    "request was scored"
                )
                for request in items + participants:
                    request[-2]._fail(exc)
            self._cv.notify_all()
        if worker is not None:
            worker.join()
        with self._cv:
            self._worker = None

    @property
    def running(self) -> bool:
        """Whether the worker is alive and accepting submissions."""
        with self._cv:
            return self._running_locked()

    def _running_locked(self) -> bool:
        return (
            self._worker is not None
            and self._worker.is_alive()
            and not self._stopping
        )

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def release(self) -> None:
        """Stop (draining) and drop the model's serving cache.

        The float32 analogue of ``RequestBatcher.release()``: call
        before handing the model back to training or analysis code.
        """
        self.stop()
        self._core.release()
        if self._fallback_core is not None:
            self._fallback_core.release()

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit_items(self, user: int, candidate_items: Sequence[int]) -> PendingScores:
        """Queue a Task-A request: rank ``candidate_items`` for ``user``.

        Raises :class:`repro.serving.errors.EngineStopped` when the
        engine is not serving and
        :class:`repro.serving.errors.OverloadError` when the admission
        depth budget is exhausted — both synchronously, before any
        ticket exists.
        """
        candidates = self._core.check_item_request(user, candidate_items)
        ticket = PendingScores(self)
        with self._cv:
            self._require_running_locked()
            self._queue.admit(candidates.size)
            self._seq += 1
            self._queue.add_items(user, candidates, ticket, seq=self._seq)
            self._note_submit_locked()
        return ticket

    def submit_participants(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> PendingScores:
        """Queue a Task-B request: rank ``candidate_users`` for ``(user, item)``.

        Same typed-failure contract as :meth:`submit_items`.
        """
        candidates = self._core.check_participant_request(user, item, candidate_users)
        ticket = PendingScores(self)
        with self._cv:
            self._require_running_locked()
            self._queue.admit(candidates.size)
            self._seq += 1
            self._queue.add_participants(user, item, candidates, ticket, seq=self._seq)
            self._note_submit_locked()
        return ticket

    def _note_submit_locked(self) -> None:
        self._core.stats["requests"] += 1
        self._accepted += 1
        if self._queue.max_task_rows >= self.max_pending:
            self._size_due = True
        self._cv.notify_all()

    def _require_running_locked(self) -> None:
        if not self._running_locked():
            if self._worker_error is not None:
                raise EngineStopped(
                    "serving engine worker died"
                ) from self._worker_error
            raise EngineStopped("serving engine is not running — call start()")

    def score_items(self, user: int, candidate_items: Sequence[int],
                    timeout: Optional[float] = None) -> np.ndarray:
        """Submit a Task-A request and block until its flush resolves it."""
        return self.submit_items(user, candidate_items).wait(timeout)

    def score_participants(self, user: int, item: int,
                           candidate_users: Sequence[int],
                           timeout: Optional[float] = None) -> np.ndarray:
        """Submit a Task-B request and block until its flush resolves it."""
        return self.submit_participants(user, item, candidate_users).wait(timeout)

    def _wait_ticket(self, ticket: PendingScores, timeout: Optional[float]) -> None:
        """Ticket resolution hook: block until the worker's clock fires."""
        ticket._event.wait(timeout)

    # ------------------------------------------------------------------
    # Explicit drain / weight swap (any thread)
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every request submitted so far has been flushed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            target = self._seq
            if self._served_seq >= target:
                return
            self._require_running_locked()
            self._drain_requested = True
            self._cv.notify_all()
            while self._served_seq < target:
                if self._worker is None or not self._worker.is_alive():
                    raise EngineStopped(
                        "serving engine worker exited with requests pending"
                    ) from self._worker_error
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"drain() timed out after {timeout}s")
                self._cv.wait(0.05 if remaining is None else min(0.05, remaining))

    def refresh(self) -> None:
        """Re-run the encoder after a weight update (checkpoint swap).

        The refresh is executed *by the worker thread between flushes*
        — the single-scorer invariant covers cache rebuilds too — and
        this call blocks until it completed.  The request is routed to
        the worker whenever it is **alive**, even mid-``stop()`` (the
        worker serves refresh requests before exiting, and a stopping
        worker may still be scoring its final drain flush — an inline
        refresh would race it).  Only with the worker fully gone does
        the refresh run inline, where no concurrent scorer can exist.
        """
        with self._cv:
            worker = self._worker
            if worker is not None and worker.is_alive():
                self._refresh_requested = True
                self._cv.notify_all()
                while self._refresh_requested:
                    if not worker.is_alive():
                        # The worker exited (stop or crash) before
                        # serving the request; it is no longer scoring,
                        # so falling through to inline is safe.
                        self._refresh_requested = False
                        break
                    self._cv.wait(0.05)
                else:
                    return  # the worker performed the refresh
        self._refresh_cores()

    def _refresh_cores(self) -> None:
        """Rebuild the primary (and fallback, if any) serving caches."""
        self._core.refresh()
        if self._fallback_core is not None:
            self._fallback_core.refresh()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _due_cause_locked(self) -> Optional[str]:
        """Which flush trigger (if any) fired, in priority order."""
        if not self._queue.has_pending:
            self._drain_requested = False  # nothing left to drain
            return None
        if self._size_due:
            return "size"
        if self._drain_requested:
            return "drain"
        anchored = self._queue.first_enqueued_at
        if anchored is not None and (
            time.monotonic() - anchored
        ) * 1000.0 >= self.max_delay_ms:
            return "deadline"
        return None

    def _poll_timeout_locked(self) -> Optional[float]:
        """Seconds until the deadline trigger could fire (None = idle)."""
        anchored = self._queue.first_enqueued_at
        if anchored is None:
            return None
        remaining = self.max_delay_ms / 1000.0 - (time.monotonic() - anchored)
        return max(remaining, 0.0)

    def _run_worker(self) -> None:
        """Worker entry: install the backend captured at start()."""
        with backend_scope(self._worker_backend):
            self._run()

    def _run(self) -> None:
        try:
            while True:
                with self._cv:
                    while True:
                        cause = self._due_cause_locked()
                        if cause or self._stopping or self._refresh_requested:
                            break
                        self._cv.wait(self._poll_timeout_locked())
                    refresh = self._refresh_requested
                    batch = None
                    if cause or (self._stopping and self._queue.has_pending):
                        depth = self._queue.total_rows
                        items, participants, last_seq = self._queue.swap()
                        self._size_due = False
                        self._drain_requested = False
                        degraded = self._update_pressure_locked(depth)
                        batch = (items, participants, last_seq,
                                 cause or "stop", degraded)
                    elif self._stopping and not refresh:
                        return
                if refresh:
                    self._refresh_cores()
                    with self._cv:
                        self._refresh_requested = False
                        self._cv.notify_all()
                if batch is not None:
                    self._flush(*batch)
        except BaseException as exc:  # failsafe: never strand tickets
            with self._cv:
                self._worker_error = exc
                items, participants, last_seq = self._queue.swap()
                self._served_seq = max(self._served_seq, last_seq)
                for request in items + participants:
                    request[-2]._fail(exc)
                self._cv.notify_all()
            raise

    def _update_pressure_locked(self, depth: int) -> bool:
        """Advance the degradation hysteresis with one flush's queue depth.

        Degradation engages after ``trigger_flushes`` consecutive
        flushes drained a queue at/above ``watermark_rows`` and
        disengages on the first shallower flush.
        """
        policy = self.degradation
        if policy is None:
            return False
        if depth >= policy.watermark_rows:
            self._pressure_streak += 1
        else:
            self._pressure_streak = 0
        self._degraded_active = self._pressure_streak >= policy.trigger_flushes
        return self._degraded_active

    def _shed_expired(self, items, participants):
        """Fail requests that aged past ``max_queue_age_ms``; return the rest.

        Runs on the worker *before* planning: a request that already
        outlived its queue-age budget would resolve after its caller
        gave up, so its ticket gets a typed
        :class:`repro.serving.errors.DeadlineExceeded` instead of
        consuming scoring capacity.
        """
        now = time.monotonic()
        items, shed_items = split_expired(items, now, self.max_queue_age_ms)
        participants, shed_parts = split_expired(
            participants, now, self.max_queue_age_ms
        )
        shed = shed_items + shed_parts
        for request in shed:
            age_ms = (now - request[-1]) * 1000.0
            request[-2]._fail(
                DeadlineExceeded(
                    f"request shed after {age_ms:.1f}ms in queue "
                    f"(age budget {self.max_queue_age_ms}ms)",
                    age_ms=age_ms,
                    budget_ms=self.max_queue_age_ms,
                )
            )
        return items, participants, len(shed)

    def _flush(self, items, participants, last_seq: int, cause: str,
               degraded: bool = False) -> None:
        # The single-scorer invariant: ONLY this thread may touch the
        # model (encoder cache, fold caches, plan caches) while the
        # engine runs.
        assert threading.current_thread() is self._worker, (
            "ServingEngine._flush must run on the engine worker thread"
        )
        started = time.perf_counter()
        items, participants, n_shed = self._shed_expired(items, participants)
        core = self._core
        n_degraded = 0
        if degraded and (items or participants):
            policy = self.degradation
            items, participants = policy.truncate(items, participants)
            for request in items + participants:
                request[-2].degraded = True
            n_degraded = len(items) + len(participants)
            if self._fallback_core is not None:
                core = self._fallback_core
        try:
            core.execute(items, participants)
        except Exception:
            # Tickets already carry the captured exception; the engine
            # keeps serving subsequent batches.
            pass
        duration = time.perf_counter() - started
        with self._cv:
            self._served_seq = max(self._served_seq, last_seq)
            self._flush_causes[cause] += 1
            self._flush_count += 1
            self._flush_seconds_total += duration
            self._max_flush_seconds = max(self._max_flush_seconds, duration)
            self._shed += n_shed
            self._degraded_served += n_degraded
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def shard_stats(self) -> Dict[str, dict]:
        """Per-store gather/cache counters (see ``ScoringCore.shard_stats``)."""
        return self._core.shard_stats()

    def stats(self) -> dict:
        """One JSON-serializable snapshot across every serving layer.

        Unifies the engine's clock counters (flush causes, flush
        durations, queue depth), the overload counters
        (accepted/rejected/shed/aborted/degraded plus the live
        degradation state — ``accepted == scored + shed + aborted``),
        the batching core's request/dedup counters (plus the fallback
        core's under ``"fallback"`` when a degradation fallback is
        registered), each store's gather counters, and — for
        :class:`repro.store.LRUCachedStore`-fronted tables — aggregate
        cache hit rates.  Safe to call from any thread while the engine
        serves.
        """
        with self._cv:
            flushes = self._flush_count
            engine = {
                "running": self._running_locked(),
                "dtype": self._core.dtype,
                "executor": self._core.executor,
                "backend": self.backend,
                "max_pending": self.max_pending,
                "max_delay_ms": self.max_delay_ms,
                "pending_rows": dict(self._queue.pending_rows),
                "submitted": self._seq,
                "served": self._served_seq,
                "flushes": flushes,
                "flush_causes": dict(self._flush_causes),
                "avg_flush_seconds": (
                    self._flush_seconds_total / flushes if flushes else 0.0
                ),
                "max_flush_seconds": self._max_flush_seconds,
            }
            overload = {
                "max_queue_rows": self._queue.max_rows,
                "max_queue_age_ms": self.max_queue_age_ms,
                "accepted": self._accepted,
                "rejected": self._queue.rejected,
                "shed": self._shed,
                "aborted": self._aborted,
                "degraded": self._degraded_served,
                "degraded_active": self._degraded_active,
                "pressure_streak": self._pressure_streak,
            }
            batcher = dict(self._core.stats)
            fallback = (
                dict(self._fallback_core.stats)
                if self._fallback_core is not None
                else None
            )
        stores = self._core.shard_stats()
        hits = sum(s.get("cache_hits", 0) for s in stores.values())
        misses = sum(s.get("cache_misses", 0) for s in stores.values())
        cache = {
            "stores": sum(1 for s in stores.values() if "cache_hits" in s),
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

        def tier_bytes(snap: dict) -> int:
            # A wrapper's resident_bytes covers only its own tier; walk
            # the nested inner snapshots so the aggregate counts every
            # tier (LRU payloads + quantised shadow + float master).
            total = snap.get("resident_bytes", 0)
            inner = snap.get("inner")
            return total + (tier_bytes(inner) if inner else 0)

        memory = {
            "resident_bytes": sum(tier_bytes(s) for s in stores.values()),
            "stores": {name: tier_bytes(s) for name, s in stores.items()},
        }
        out = {
            "engine": engine,
            "overload": overload,
            "batcher": batcher,
            "stores": stores,
            "cache": cache,
            "memory": memory,
        }
        if fallback is not None:
            out["fallback"] = fallback
        return out
