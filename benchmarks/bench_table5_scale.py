"""Table V — model scale (parameter counts) and time per training epoch.

Counts every model's trainable parameters and times one real training
epoch through the shared trainer.

Shape expectations asserted (paper Sec. III-G):

* MGBR is the slowest per epoch (expert/gate stack dominates);
* EATNN carries more parameters than any other *baseline* (three
  embeddings per user), exceeding even MGBR's per-user footprint;
* the MF-style models (DeepMF, GBMF) are the fastest.

Paper reference values:

    model    params      min/epoch
    DeepMF      155,500     0.34
    NGCF      9,962,176     3.17
    DiffNet  15,556,217     1.67
    EATNN    33,966,534     1.23
    GBGCN    15,555,273     1.79
    GBMF      1,555,280     1.03
    MGBR     31,341,038     8.35
"""

import pytest
from conftest import baseline_train_config, build_model, mgbr_bench_config, write_result

from repro.analysis import parameter_breakdown, time_training_epoch
from repro.training import TrainConfig

MODELS = ["DeepMF", "NGCF", "DiffNet", "EATNN", "GBGCN", "GBMF", "MGBR"]


@pytest.fixture(scope="module")
def table5_rows(bench_dataset):
    rows = {}
    for name in MODELS:
        model = build_model(name, bench_dataset)
        if name == "MGBR":
            tc = TrainConfig.from_mgbr(mgbr_bench_config(), epochs=1)
        else:
            tc = baseline_train_config(epochs=1, eval_every=0)
        timing = time_training_epoch(model, bench_dataset, tc, n_epochs=1)
        rows[name] = timing
    return rows


def test_table5_scale_and_time(benchmark, bench_dataset, table5_rows):
    """Regenerate Table V (parameters + seconds/epoch at bench scale)."""

    def report():
        lines = [
            "TABLE V — MODEL SCALE AND TIME CONSUMPTION",
            f"{'Model':10s} {'Para. number':>14s} {'sec/epoch':>10s}",
        ]
        for name in MODELS:
            t = table5_rows[name]
            lines.append(f"{name:10s} {t.n_parameters:>14,} {t.seconds_per_epoch:>10.2f}")
        return "\n".join(lines)

    text = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table5_scale.txt", text)

    timings = {n: t.seconds_per_epoch for n, t in table5_rows.items()}
    params = {n: t.n_parameters for n, t in table5_rows.items()}

    # MGBR is the most time-consuming model (paper Sec. III-G).
    assert timings["MGBR"] == max(timings.values())

    # EATNN has the largest parameter count among the baselines.
    baseline_params = {n: p for n, p in params.items() if n != "MGBR"}
    assert params["EATNN"] == max(baseline_params.values())

    # MF-style models are faster than every graph model.
    assert timings["GBMF"] < timings["MGBR"]
    assert timings["DeepMF"] < timings["NGCF"]


def test_table5_mgbr_breakdown(bench_dataset):
    """MGBR's parameters decompose across encoder / MTL / heads."""
    model = build_model("MGBR", bench_dataset)
    breakdown = parameter_breakdown(model, depth=1)
    assert {"encoder", "mtl", "head_a", "head_b"} <= set(breakdown)
    assert sum(breakdown.values()) == model.num_parameters()
    # The GCN feature tables scale with |U|+|I| and dominate at bench scale.
    assert breakdown["encoder"] > 0 and breakdown["mtl"] > 0
