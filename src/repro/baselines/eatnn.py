"""EATNN baseline (Chen et al., SIGIR 2019) tailored to group buying.

Efficient Adaptive Transfer Neural Network: a social-aware model where
**each user carries three embeddings** — an item-domain preference, a
social-domain preference, and a shared/transfer embedding — and a
per-user attention assigns a personalised transfer scheme between the
domains.  This triple-table design is why EATNN posts the largest
parameter count in the paper's Table V ("each user is represented by
three kinds of embeddings, so it even has more parameters than our
MGBR") while staying fast, since everything is attention + MLP with no
graph propagation.

Domain fusion here follows the adaptive-transfer idea: for the item
domain the user representation is ``att_i ⊙ e_item-dom + (1-att_i) ⊙
e_shared`` and analogously for the social domain, with the attention
computed from the embeddings themselves.  Task A scores against the
item-domain representation; Task B (paper tailoring) compares the
initiator's and the candidate participant's *social-domain*
representations.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.nn import functional as F
from repro.nn.layers import MLP, Embedding
from repro.nn.tensor import Tensor, concat, take_rows
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["EATNN"]


class EATNN(GroupBuyingRecommender):
    """Adaptive-transfer social recommender with three user embeddings.

    Parameters
    ----------
    n_users / n_items: entity counts.
    dim: width of each of the three user tables (and the item table).
    attention_hidden: hidden width of the per-user attention MLPs.
    seed: initialisation seed.
    """

    def __init__(
        self,
        n_users: int,
        n_items: int,
        dim: int = 32,
        attention_hidden: int = 32,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(n_users, n_items)
        rngs = spawn_rngs(seed, 6)
        self.item_domain = Embedding(n_users, dim, seed=rngs[0])
        self.social_domain = Embedding(n_users, dim, seed=rngs[1])
        self.shared = Embedding(n_users, dim, seed=rngs[2])
        self.item_table = Embedding(n_items, dim, seed=rngs[3])
        # Per-domain attention: 2*dim (domain ; shared) -> dim gate.
        self.att_item = MLP(2 * dim, [attention_hidden], dim, activation="relu", seed=rngs[4])
        self.att_social = MLP(2 * dim, [attention_hidden], dim, activation="relu", seed=rngs[5])

    def _fuse(self, domain: Tensor, shared: Tensor, attention: MLP) -> Tensor:
        """Adaptive transfer: gate between domain-specific and shared."""
        gate = F.sigmoid(attention(concat([domain, shared], axis=1)))
        return gate * domain + (1.0 - gate) * shared

    def compute_embeddings(self) -> EmbeddingBundle:
        """Fuse per-domain user representations; items are table rows.

        ``user`` carries the item-domain fusion (Task A);
        ``participant`` carries the social-domain fusion (Task B).
        """
        shared = self.shared.all()
        item_view = self._fuse(self.item_domain.all(), shared, self.att_item)
        social_view = self._fuse(self.social_domain.all(), shared, self.att_social)
        return EmbeddingBundle(
            user=item_view,
            item=self.item_table.all(),
            participant=social_view,
        )

    def score_participants_from(
        self, emb: EmbeddingBundle, users, items, participants, raw: bool = False
    ) -> Tensor:
        """Task B: social-domain inner product between u and p."""
        del items
        e_u = take_rows(emb.participant, users)  # social-domain view of u
        e_p = take_rows(emb.participant, participants)
        logits = (e_u * e_p).sum(axis=1)
        return logits if raw else F.sigmoid(logits)
