"""Footnote-1 ablation — participant-participant edges in the social view.

Sec. II-C2's footnote: "We have verified that the variant of
incorporating the edges between participants even has slightly poor
performance."  This bench trains MGBR with and without p-p edges in
``G_UP`` and reports both tasks, reproducing that design-choice
verification.

Assertion is deliberately soft (the effect is "slight" in the paper):
the variant must not *beat* the default by a large margin on Task B.
"""

from conftest import BENCH_EPOCHS, bench_dataset, mgbr_bench_config, write_result

from repro.core import MGBR
from repro.eval import evaluate_model
from repro.training import TrainConfig, Trainer


def _train(dataset, include_pp: bool):
    config = mgbr_bench_config(include_participant_edges=include_pp)
    model = MGBR(dataset.train, dataset.n_users, dataset.n_items, config=config)
    tc = TrainConfig.from_mgbr(
        config, epochs=BENCH_EPOCHS,
        eval_every=4, restore_best=True, eval_max_instances=100,
    )
    Trainer(model, dataset, tc).fit()
    return evaluate_model(model, dataset, protocols=((9, 10),), max_instances=200)["@10"]


def test_footnote1_participant_edges(benchmark, bench_dataset):
    """Regenerate the footnote-1 comparison."""

    def run():
        return {
            "without p-p edges (paper)": _train(bench_dataset, False),
            "with p-p edges (variant)": _train(bench_dataset, True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["FOOTNOTE 1 — PARTICIPANT-PARTICIPANT EDGES IN G_UP"]
    for name, res in results.items():
        lines.append(
            f"{name:28s} A-MRR@10 {res.task_a['MRR@10']:.4f}  "
            f"B-MRR@10 {res.task_b['MRR@10']:.4f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("footnote1_pp_edges.txt", text)

    default_b = results["without p-p edges (paper)"].task_b["MRR@10"]
    variant_b = results["with p-p edges (variant)"].task_b["MRR@10"]
    # "Slightly poor": the variant must not dominate the default.
    assert variant_b <= default_b * 1.15
