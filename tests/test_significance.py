"""Tests for multi-seed aggregation and the paired bootstrap."""

import numpy as np
import pytest

from repro.analysis import MultiSeedResult, SeedRun, run_multiseed
from repro.baselines import GBMF
from repro.eval import EvalProtocol, collect_ranks, paired_bootstrap
from repro.training import TrainConfig


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self, rng):
        ranks_a = rng.integers(1, 3, size=200)    # strong model
        ranks_b = rng.integers(5, 11, size=200)   # weak model
        result = paired_bootstrap(ranks_a, ranks_b, cutoff=10, seed=0)
        assert result.delta > 0
        assert result.p_value < 0.01
        assert result.significant

    def test_identical_models_not_significant(self, rng):
        ranks = rng.integers(1, 11, size=200)
        result = paired_bootstrap(ranks, ranks, cutoff=10, seed=0)
        assert result.delta == pytest.approx(0.0)
        assert not result.significant

    def test_ndcg_metric_variant(self, rng):
        ranks_a = rng.integers(1, 3, size=100)
        ranks_b = rng.integers(8, 11, size=100)
        result = paired_bootstrap(ranks_a, ranks_b, metric="ndcg", seed=0)
        assert result.mean_a > result.mean_b

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            paired_bootstrap([1, 2], [1], seed=0)
        with pytest.raises(ValueError):
            paired_bootstrap([], [], seed=0)
        with pytest.raises(ValueError):
            paired_bootstrap([1], [1], metric="map", seed=0)

    def test_deterministic_given_seed(self, rng):
        a = rng.integers(1, 11, 50)
        b = rng.integers(1, 11, 50)
        r1 = paired_bootstrap(a, b, seed=7)
        r2 = paired_bootstrap(a, b, seed=7)
        assert r1.p_value == r2.p_value


class TestCollectRanks:
    def test_ranks_within_candidate_list(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, max_instances=12)
        for task in ("a", "b"):
            ranks = collect_ranks(model, protocol, task=task)
            assert len(ranks) == 12
            assert np.all((ranks >= 1) & (ranks <= 10))

    def test_invalid_task(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        protocol = EvalProtocol(tiny_dataset, max_instances=3)
        with pytest.raises(ValueError):
            collect_ranks(model, protocol, task="c")

    def test_paired_across_models(self, tiny_dataset):
        # Two models share the exact candidate lists => paired comparison valid.
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, max_instances=10)
        m1 = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        m2 = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=5)
        r1 = collect_ranks(m1, protocol, "a")
        r2 = collect_ranks(m2, protocol, "a")
        result = paired_bootstrap(r1, r2, seed=0)
        assert result.n_instances == 10


class TestMultiSeed:
    def test_aggregation_math(self):
        result = MultiSeedResult(
            runs=[
                SeedRun(0, {"A/MRR@10": 0.4}),
                SeedRun(1, {"A/MRR@10": 0.6}),
            ]
        )
        assert result.mean("A/MRR@10") == pytest.approx(0.5)
        assert result.std("A/MRR@10") == pytest.approx(0.1)
        assert result.summary()["A/MRR@10"] == "0.5000±0.1000"

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            MultiSeedResult().summary()

    def test_run_multiseed_end_to_end(self, tiny_dataset):
        result = run_multiseed(
            model_builder=lambda seed: GBMF(
                tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=seed
            ),
            dataset=tiny_dataset,
            train_config_builder=lambda seed: TrainConfig(
                epochs=1, batch_size=32, learning_rate=1e-2,
                train_negatives=2, seed=seed,
            ),
            seeds=(0, 1),
            eval_max_instances=10,
        )
        assert len(result.runs) == 2
        assert "A/MRR@10" in result.runs[0].metrics
        assert 0.0 <= result.mean("A/MRR@10") <= 1.0
