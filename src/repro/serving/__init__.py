"""``repro.serving`` — request batching and the async serving engine.

Coalesces incoming (user, candidates) scoring requests into one
:class:`repro.plan.ScoringPlan` per task and scatters the scores back to
each caller.  Three layers:

* :mod:`repro.serving.core` — the pure queue/plan/scatter core
  (tickets, request queue, flush execution with failure isolation);
* :class:`RequestBatcher` — the synchronous shell (caller owns the
  flush clock);
* :class:`ServingEngine` — the asynchronous shell: thread-safe submits,
  a worker thread owning the flush clock (deadline / size budget /
  drain), and a unified ``stats()`` snapshot.
"""

from repro.serving.core import PendingScores, RequestQueue, ScoringCore
from repro.serving.engine import ServingEngine
from repro.serving.frontend import RequestBatcher

__all__ = [
    "RequestBatcher",
    "ServingEngine",
    "PendingScores",
    "RequestQueue",
    "ScoringCore",
]
