"""Integration tests: full train→evaluate→persist loops across modules.

These are the tests that would catch wiring regressions between the
substrates (data → graph → model → trainer → eval).  They run tiny
configurations, so "learns something" assertions compare against the
random-ranking baseline with generous margins.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.baselines import GBMF, NGCF
from repro.core import MGBR, MGBRConfig, build_variant
from repro.data import SyntheticConfig, generate_dataset
from repro.eval import EvalProtocol, evaluate_model, run_case_study
from repro.training import TrainConfig, Trainer, restore_model, save_checkpoint

RANDOM_MRR10 = sum(1.0 / r for r in range(1, 11)) / 10  # ≈ 0.2929


@pytest.fixture(scope="module")
def train_dataset():
    """A dataset with learnable signal (slightly bigger than tiny)."""
    return generate_dataset(
        SyntheticConfig(n_users=120, n_items=40, n_groups=500, min_interactions=3),
        seed=21,
    )


@pytest.fixture(scope="module")
def trained_mgbr(train_dataset):
    config = MGBRConfig.small(
        d=12, n_experts=2, mtl_layers=2, aux_negatives=4, train_negatives=5,
        learning_rate=8e-3, gcn_gain=5.0, seed=1,
    )
    model = MGBR(train_dataset.train, train_dataset.n_users, train_dataset.n_items,
                 config=config)
    trainer = Trainer(model, train_dataset, TrainConfig.from_mgbr(config, epochs=8))
    trainer.fit()
    return model, trainer


class TestMGBRLearns:
    def test_task_a_beats_random(self, train_dataset, trained_mgbr):
        model, _ = trained_mgbr
        result = EvalProtocol(train_dataset, max_instances=80).run(model)
        assert result.task_a["MRR@10"] > RANDOM_MRR10 + 0.15

    def test_task_b_beats_random(self, train_dataset, trained_mgbr):
        model, _ = trained_mgbr
        result = EvalProtocol(train_dataset, max_instances=80).run(model)
        assert result.task_b["MRR@10"] > RANDOM_MRR10 + 0.05

    def test_losses_fell(self, trained_mgbr):
        _, trainer = trained_mgbr
        curve = trainer.history.loss_curve("total")
        assert curve[-1] < curve[0]

    def test_both_cutoff_protocols(self, train_dataset, trained_mgbr):
        model, _ = trained_mgbr
        results = evaluate_model(
            model, train_dataset, protocols=((9, 10), (99, 100)), max_instances=30
        )
        # @100 metrics are necessarily <= @10 metrics for the same model
        # (100-way lists are strictly harder).
        assert results["@100"].task_a["MRR@100"] <= results["@10"].task_a["MRR@10"] + 1e-9


class TestBaselineLearns:
    def test_gbmf_task_a_beats_random(self, train_dataset):
        model = GBMF(train_dataset.n_users, train_dataset.n_items, dim=12, seed=0)
        trainer = Trainer(
            model, train_dataset,
            TrainConfig(epochs=8, batch_size=32, learning_rate=1e-2,
                        train_negatives=5, seed=0),
        )
        trainer.fit()
        result = EvalProtocol(train_dataset, max_instances=80).run(model)
        assert result.task_a["MRR@10"] > RANDOM_MRR10 + 0.15


class TestCheckpointIntegration:
    def test_save_restore_preserves_metrics(self, tmp_path, train_dataset, trained_mgbr):
        model, _ = trained_mgbr
        protocol = EvalProtocol(train_dataset, max_instances=30)
        before = protocol.run(model).task_a["MRR@10"]
        path = save_checkpoint(model, tmp_path / "mgbr")

        clone = MGBR(train_dataset.train, train_dataset.n_users,
                     train_dataset.n_items, config=model.config, seed=12345)
        restore_model(clone, path)
        after = protocol.run(clone).task_a["MRR@10"]
        assert after == pytest.approx(before)


class TestVariantIntegration:
    def test_variants_trainable_one_epoch(self, train_dataset):
        base = MGBRConfig.small(
            d=8, n_experts=2, mtl_layers=1, aux_negatives=3, train_negatives=3, seed=0
        )
        for name in ("MGBR-M", "MGBR-G", "MGBR-D"):
            model = build_variant(name, train_dataset.train, train_dataset.n_users,
                                  train_dataset.n_items, base=base)
            trainer = Trainer(model, train_dataset,
                              TrainConfig.from_mgbr(base, epochs=1))
            record = trainer.train_epoch()
            assert np.isfinite(record.losses["total"]), name


class TestCaseStudyIntegration:
    def test_case_study_on_trained_model(self, train_dataset, trained_mgbr):
        model, _ = trained_mgbr
        study = run_case_study(model, train_dataset.train, n_groups=5, seed=3)
        assert np.isfinite(study.dispersion_ratio)
        assert study.points.shape[0] == len(study.labels)


class TestDeterminism:
    def test_same_seed_same_training_trajectory(self, train_dataset):
        def run():
            config = MGBRConfig.small(
                d=8, n_experts=2, mtl_layers=1, aux_negatives=3,
                train_negatives=3, seed=4,
            )
            model = MGBR(train_dataset.train, train_dataset.n_users,
                         train_dataset.n_items, config=config)
            trainer = Trainer(model, train_dataset,
                              TrainConfig.from_mgbr(config, epochs=1, seed=4))
            return trainer.train_epoch().losses["total"]

        assert run() == pytest.approx(run())
