"""Loaders for external group-buying data.

The paper's Beibei dump (github.com/Sweetnow/group-buying-recommendation)
is not redistributable, but users who obtain it — or any other
group-buying log — can bring it in through the plain-text format below
and run every experiment in this repository on real data:

    # comment lines start with '#'
    <initiator_id> \t <item_id> \t <participant_id>,<participant_id>,...

One deal group per line; the participant list may be empty (a launched
group nobody joined).  Ids are arbitrary non-negative integers and are
remapped to contiguous ranges on load.  :func:`load_groups_txt` applies
the same Sec. III-A2 preprocessing (min-interaction filter, 7:3:1 group
split) as the synthetic pipeline, so downstream code sees an identical
:class:`GroupBuyingDataset`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.data.preprocess import filter_min_interactions
from repro.data.schema import DealGroup, GroupBuyingDataset
from repro.data.split import split_groups
from repro.utils.rng import SeedLike

__all__ = ["parse_group_line", "read_groups_txt", "load_groups_txt", "write_groups_txt"]

PathLike = Union[str, Path]


def parse_group_line(line: str, lineno: int = 0) -> DealGroup:
    """Parse one ``initiator \\t item \\t p1,p2,...`` record.

    Raises ``ValueError`` with the line number on malformed input.
    """
    parts = line.rstrip("\n").split("\t")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"line {lineno}: expected 2 or 3 tab-separated fields, got {len(parts)}"
        )
    try:
        initiator = int(parts[0])
        item = int(parts[1])
        participants: Tuple[int, ...] = ()
        if len(parts) == 3 and parts[2].strip():
            participants = tuple(int(p) for p in parts[2].split(",") if p.strip())
    except ValueError as exc:
        raise ValueError(f"line {lineno}: non-integer id ({exc})") from None
    return DealGroup(initiator=initiator, item=item, participants=participants)


def read_groups_txt(path: PathLike) -> List[DealGroup]:
    """Read raw deal groups from a text file (no filtering/remapping)."""
    groups: List[DealGroup] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            groups.append(parse_group_line(line, lineno))
    return groups


def load_groups_txt(
    path: PathLike,
    min_interactions: int = 5,
    split_ratios: Tuple[float, float, float] = (7, 3, 1),
    seed: SeedLike = 0,
    name: str = "",
) -> GroupBuyingDataset:
    """Load + preprocess + split an external group-buying log.

    Mirrors the synthetic pipeline exactly: iterate the min-interaction
    filter to a fixed point, remap ids contiguously, split whole groups
    7:3:1 (Sec. III-A2).
    """
    raw = read_groups_txt(path)
    if not raw:
        raise ValueError(f"{path}: no deal groups found")
    n_users = 1 + max(max((g.initiator, *g.participants), default=0) for g in raw)
    n_items = 1 + max(g.item for g in raw)
    filtered, _ = filter_min_interactions(
        raw, n_users=n_users, n_items=n_items, min_interactions=min_interactions
    )
    if not filtered.groups:
        raise ValueError(
            f"{path}: min_interactions={min_interactions} filtered out every group"
        )
    train, validation, test = split_groups(filtered.groups, split_ratios, seed)
    return GroupBuyingDataset(
        n_users=filtered.n_users,
        n_items=filtered.n_items,
        train=train,
        validation=validation,
        test=test,
        name=name or Path(path).stem,
    )


def write_groups_txt(groups, path: PathLike, header: str = "") -> Path:
    """Write deal groups in the loader's text format (round-trip aid)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for g in groups:
            participants = ",".join(str(p) for p in g.participants)
            handle.write(f"{g.initiator}\t{g.item}\t{participants}\n")
    return path
