"""Dataset preprocessing: the paper's minimum-interaction filter.

Sec. III-A2: "we first filtered out the users who have less than five
purchase records … then removed each group including the filtered users
(no matter initiator or participant)".  Removing groups can push other
users below the threshold, so the filter iterates to a fixed point.
After filtering, user/item ids are remapped to contiguous ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.data.schema import DealGroup

__all__ = ["FilteredData", "filter_min_interactions", "remap_ids"]


@dataclass
class FilteredData:
    """Output of the filtering pipeline.

    Attributes
    ----------
    groups: surviving deal groups with remapped contiguous ids.
    n_users / n_items: sizes of the remapped id spaces.
    user_map / item_map: original id -> new id for survivors.
    """

    groups: List[DealGroup]
    n_users: int
    n_items: int
    user_map: Dict[int, int]
    item_map: Dict[int, int]


@dataclass
class FilterStats:
    """Bookkeeping about what the filter removed."""

    rounds: int
    users_removed: int
    items_removed: int
    groups_removed: int


def _interaction_counts(groups: Sequence[DealGroup]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for g in groups:
        counts[g.initiator] = counts.get(g.initiator, 0) + 1
        for p in g.participants:
            counts[p] = counts.get(p, 0) + 1
    return counts


def filter_min_interactions(
    groups: Sequence[DealGroup],
    n_users: int,
    n_items: int,
    min_interactions: int = 5,
) -> Tuple[FilteredData, FilterStats]:
    """Iteratively drop under-active users and every group touching them.

    Parameters
    ----------
    groups: raw deal groups.
    n_users / n_items: original id-space sizes.
    min_interactions: per-user purchase-record threshold (paper uses 5;
        0 disables filtering but still remaps ids).

    Returns
    -------
    (FilteredData, FilterStats)
        Remapped surviving data plus removal statistics.
    """
    current: List[DealGroup] = list(groups)
    rounds = 0
    removed_users: set = set()
    while True:
        rounds += 1
        counts = _interaction_counts(current)
        bad = {u for u, c in counts.items() if c < min_interactions}
        if not bad:
            break
        removed_users |= bad
        current = [
            g
            for g in current
            if g.initiator not in bad and not any(p in bad for p in g.participants)
        ]
        if not current:
            break
    remapped, user_map, item_map = remap_ids(current)
    stats = FilterStats(
        rounds=rounds,
        users_removed=n_users - len(user_map),
        items_removed=n_items - len(item_map),
        groups_removed=len(groups) - len(current),
    )
    data = FilteredData(
        groups=remapped,
        n_users=len(user_map),
        n_items=len(item_map),
        user_map=user_map,
        item_map=item_map,
    )
    return data, stats


def remap_ids(
    groups: Sequence[DealGroup],
) -> Tuple[List[DealGroup], Dict[int, int], Dict[int, int]]:
    """Relabel users and items with contiguous ids in order of appearance.

    Embedding tables are sized by max id, so gaps left by filtering would
    waste parameters and distort the Table V parameter counts.
    """
    user_map: Dict[int, int] = {}
    item_map: Dict[int, int] = {}

    def uid(u: int) -> int:
        if u not in user_map:
            user_map[u] = len(user_map)
        return user_map[u]

    def iid(i: int) -> int:
        if i not in item_map:
            item_map[i] = len(item_map)
        return item_map[i]

    out = [
        DealGroup(
            initiator=uid(g.initiator),
            item=iid(g.item),
            participants=tuple(uid(p) for p in g.participants),
        )
        for g in groups
    ]
    return out, user_map, item_map
