"""Tests for the external-data text loader."""

import pytest

from repro.data import (
    DealGroup,
    load_groups_txt,
    parse_group_line,
    read_groups_txt,
    write_groups_txt,
)


class TestParseLine:
    def test_full_record(self):
        g = parse_group_line("3\t7\t1,2,5")
        assert g == DealGroup(3, 7, (1, 2, 5))

    def test_empty_participants_field(self):
        assert parse_group_line("3\t7\t").participants == ()

    def test_two_field_record(self):
        assert parse_group_line("3\t7").participants == ()

    def test_malformed_field_count(self):
        with pytest.raises(ValueError, match="line 4"):
            parse_group_line("1\t2\t3\t4", lineno=4)

    def test_non_integer(self):
        with pytest.raises(ValueError, match="line 9"):
            parse_group_line("a\t2\t3", lineno=9)


class TestReadWrite:
    def test_roundtrip(self, tmp_path):
        groups = [DealGroup(0, 0, (1, 2)), DealGroup(3, 1, ()), DealGroup(1, 2, (0,))]
        path = write_groups_txt(groups, tmp_path / "data.txt", header="unit test")
        loaded = read_groups_txt(path)
        assert loaded == groups

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("# header\n\n0\t1\t2\n   \n# trailing\n")
        assert read_groups_txt(path) == [DealGroup(0, 1, (2,))]


class TestLoadPipeline:
    def _write_busy_dataset(self, tmp_path):
        # Every user appears >= 3 times so min_interactions=3 keeps all.
        groups = []
        for item in range(4):
            for initiator in range(3):
                participants = tuple(p for p in range(3, 6))
                groups.append(DealGroup(initiator, item, participants))
        return write_groups_txt(groups, tmp_path / "busy.txt")

    def test_load_full_pipeline(self, tmp_path):
        path = self._write_busy_dataset(tmp_path)
        dataset = load_groups_txt(path, min_interactions=3, seed=0)
        assert dataset.n_users > 0 and dataset.n_items > 0
        assert dataset.n_groups == len(dataset.train) + len(dataset.validation) + len(dataset.test)
        assert dataset.name == "busy"

    def test_min_interactions_respected(self, tmp_path):
        path = self._write_busy_dataset(tmp_path)
        dataset = load_groups_txt(path, min_interactions=3, seed=0)
        counts = dataset.user_interaction_counts()
        assert min(counts.values()) >= 3

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no deal groups"):
            load_groups_txt(path)

    def test_overfiltering_rejected(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("0\t0\t1\n2\t1\t3\n")
        with pytest.raises(ValueError, match="filtered out"):
            load_groups_txt(path, min_interactions=5)

    def test_ids_remapped_contiguously(self, tmp_path):
        groups = []
        for item in (100, 200):
            for initiator in (1000, 2000, 3000):
                groups.append(DealGroup(initiator, item, (4000, 5000)))
        path = write_groups_txt(groups, tmp_path / "sparse_ids.txt")
        dataset = load_groups_txt(path, min_interactions=2, seed=0)
        users = {g.initiator for g in dataset.all_groups}
        users |= {p for g in dataset.all_groups for p in g.participants}
        assert users == set(range(dataset.n_users))
