"""``repro.serving`` — request batching and the async serving engines.

Coalesces incoming (user, candidates) scoring requests into one
:class:`repro.plan.ScoringPlan` per task and scatters the scores back to
each caller.  Layers:

* :mod:`repro.serving.errors` — the typed failure hierarchy
  (``ServingError`` → ``OverloadError`` / ``DeadlineExceeded`` /
  ``EngineStopped`` / ``TicketTimeout`` / ``ShardUnavailable``);
* :mod:`repro.serving.core` — the pure queue/plan/scatter core
  (tickets, request queue with admission budget, flush execution with
  failure isolation);
* :class:`RequestBatcher` — the synchronous shell (caller owns the
  flush clock);
* :class:`ServingEngine` — the asynchronous shell: thread-safe submits,
  a worker thread owning the flush clock (deadline / size budget /
  drain), admission control, age-based load shedding, optional
  :class:`DegradationPolicy`, and a unified ``stats()`` snapshot;
* :class:`MultiWorkerEngine` — n per-worker engines partitioned by
  ``user % n_workers`` so per-worker caches stay coherent, with
  fleet-level ``stats()`` / ``drain()`` / ``refresh()``.
"""

from repro.serving.core import PendingScores, RequestQueue, ScoringCore
from repro.serving.degrade import DegradationPolicy
from repro.serving.engine import ServingEngine
from repro.serving.errors import (
    DeadlineExceeded,
    EngineStopped,
    OverloadError,
    ServingError,
    ShardUnavailable,
    TicketTimeout,
)
from repro.serving.frontend import RequestBatcher
from repro.serving.multi import MultiWorkerEngine

__all__ = [
    "RequestBatcher",
    "ServingEngine",
    "MultiWorkerEngine",
    "DegradationPolicy",
    "PendingScores",
    "RequestQueue",
    "ScoringCore",
    "ServingError",
    "OverloadError",
    "DeadlineExceeded",
    "EngineStopped",
    "TicketTimeout",
    "ShardUnavailable",
]
