"""Hash/range-partitioned embedding rows across in-process shard workers.

A :class:`ShardedStore` splits one logical ``(num_rows, dim)`` table
into ``n_shards`` independently-owned row blocks, each a separate
:class:`repro.nn.module.Parameter`.  ``gather(unique_ids)`` compiles (or
reuses, when a :class:`repro.plan.ScoringPlan` caches one) a
:class:`repro.store.base.ShardMap`, pulls each touched shard's rows
with **one** gather per shard, and reassembles the caller's order — so
a planned call touches every shard at most once, and per-shard transient
memory is bounded by the largest per-shard gather rather than the whole
request.

Bit-identity contract
---------------------
Row values are exact copies, so the forward is bit-identical to
indexing the dense table.  The backward splits the incoming gradient by
owning shard (a pure permutation — no accumulation) and scatter-adds
each shard's slice through the same :func:`repro.nn.tensor.take_rows`
adjoint the dense path uses; stable shard grouping preserves each row's
occurrence order, so every shard row receives exactly the dense
gradient rows in the dense accumulation order.  Training with a
``ShardedStore`` is therefore bit-for-bit the dense run (asserted in
tests/test_store.py), because the per-row Adam update depends only on
that row's gradient/state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.backend import get_backend
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, concat, take_rows
from repro.store.base import EmbeddingStore, Partitioner, ShardMap

__all__ = ["ShardedStore"]


class ShardedStore(EmbeddingStore):
    """N-way partitioned embedding table.

    Parameters
    ----------
    values: the initial logical table; each shard copies its owned rows
        (initialisation is therefore bit-identical to the dense store
        built from the same array, for any shard count).
    n_shards: number of shard workers (>= 1; shards may own zero rows
        when ``n_shards`` exceeds ``num_rows``).
    partition: ``"range"`` (contiguous blocks — planned gathers over
        sorted unique ids then reassemble for free) or ``"hash"``
        (modulo striping).
    """

    def __init__(self, values: np.ndarray, n_shards: int, partition: str = "range") -> None:
        super().__init__()
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"need a (rows, dim) table, got shape {values.shape}")
        self.num_rows, self.dim = values.shape
        self.partitioner = Partitioner(self.num_rows, n_shards, partition)
        backend = get_backend()
        self._shards: List[Parameter] = [
            Parameter(
                # A fancy-index row pull is already fresh and contiguous;
                # ensure_contiguous only copies range slices that alias.
                backend.ensure_contiguous(values[self.partitioner.owned_ids(k)]),
                f"shard{k}",
            )
            for k in range(n_shards)
        ]
        if partition == "hash":
            # all(): rows concatenated shard-by-shard are a permutation
            # of the logical order; precompute the unpermute index once.
            offsets = np.concatenate(
                [[0], np.cumsum([len(p.data) for p in self._shards])]
            )
            ids = np.arange(self.num_rows, dtype=np.int64)
            self._all_perm: Optional[np.ndarray] = (
                offsets[self.partitioner.owner(ids)] + self.partitioner.to_local(ids)
            )
        else:
            self._all_perm = None

    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    @property
    def partition(self) -> str:
        return self.partitioner.kind

    def shard_size_of(self, shard: int) -> int:
        return len(self._shards[shard].data)

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        return [(f"shard{k}", p) for k, p in enumerate(self._shards)]

    def resident_nbytes(self) -> int:
        return sum(p.data.nbytes for p in self._shards)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def shard_map(self, ids, plan=None, role: Optional[str] = None) -> ShardMap:
        """The per-shard gather plan for ``ids`` (plan-cached when given).

        ``plan``/``role`` let a :class:`repro.plan.ScoringPlan` memoise
        the grouping across the calls that reuse it (e.g. a training
        step's planned forward touching the same unique entities for
        several towers).
        """
        if plan is not None and role is not None:
            return plan.shard_map(role, self.partitioner)
        return self.partitioner.build_map(ids)

    def gather(self, ids, plan=None, role: Optional[str] = None) -> Tensor:
        idx = np.asarray(ids, dtype=np.int64)
        smap = self.shard_map(idx, plan=plan, role=role)
        if smap.n_rows != idx.size:
            # The plan's cached map answers for the plan's own role
            # array; a caller whose ids diverged from it would silently
            # receive rows for the wrong entities.
            raise ValueError(
                f"gather ids ({idx.size} rows) do not match the plan's "
                f"{role!r} array ({smap.n_rows} rows) — pass plan=None to "
                "gather an ad-hoc id set"
            )
        parts = []
        for shard, local in zip(self._shards, smap.per_shard_local):
            if not len(local):
                continue
            self._record_touch(shard, local)
            parts.append(take_rows(shard, local))
        self._record_gather(idx.size, smap.shards_touched, smap.max_shard_rows)
        if not parts:
            return take_rows(self._shards[0], np.empty(0, dtype=np.int64))
        grouped = parts[0] if len(parts) == 1 else concat(parts, axis=0)
        if smap.identity:
            return grouped
        return take_rows(grouped, smap.inverse)

    def all(self) -> Tensor:
        """Materialise the logical table (full-graph encoder path).

        Concatenation reassembles the exact dense buffer for range
        partitioning; hash partitioning adds one unpermute gather.
        Gradients split back onto every shard, and every row is marked
        touched (a full-table read feeds full-table gradients).
        """
        for shard in self._shards:
            self._record_touch_all(shard)
        grouped = concat([p for p in self._shards if len(p.data)], axis=0)
        if self._all_perm is None:
            return grouped
        return take_rows(grouped, self._all_perm)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def logical_state(self) -> np.ndarray:
        out = np.empty((self.num_rows, self.dim), dtype=self._shards[0].data.dtype)
        for k, shard in enumerate(self._shards):
            out[self.partitioner.owned_ids(k)] = shard.data
        return out

    def load_logical(self, values: np.ndarray, dtype=None) -> None:
        values = self._check_table(values)
        for k, shard in enumerate(self._shards):
            self._assign_param(shard, values[self.partitioner.owned_ids(k)], dtype)

    def assign_rows(self, ids, values) -> None:
        """Scatter logical rows to their owners (streaming shard restore).

        Only the owning shards are touched, so restoring from per-shard
        checkpoint files never materialises the full table.
        """
        idx = np.asarray(ids, dtype=np.int64)
        values = np.asarray(values)
        smap = self.partitioner.build_map(idx)
        grouped = values[smap.order]
        offset = 0
        for shard, local in zip(self._shards, smap.per_shard_local):
            if not len(local):
                continue
            shard.data[local] = grouped[offset : offset + len(local)]
            shard.bump_version()
            offset += len(local)

    def shard_rows(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.partitioner.owned_ids(shard), self._shards[shard].data
