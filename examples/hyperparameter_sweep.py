#!/usr/bin/env python3
"""Hyper-parameter sensitivity sweeps — live versions of Figs. 4 and 5.

Sweeps the tied auxiliary-loss weights β_A = β_B (Fig. 4) and the tied
adjusted-gate coefficients α_A = α_B (Fig. 5), retraining MGBR per point
and printing ASCII curves of MRR@10 for both sub-tasks.  The paper's
finding: an interior optimum — β ≈ 0.3, α ≈ 0.1 — with degradation on
both sides.

Run:  python examples/hyperparameter_sweep.py  [--epochs 8]
"""

import argparse

from repro.analysis import aux_weight_sweep, gate_coefficient_sweep
from repro.core import MGBRConfig
from repro.data import SyntheticConfig, generate_dataset


def ascii_curve(xs, ys, label: str, width: int = 40) -> str:
    """One bar row per sweep point, bar length ∝ metric value."""
    lines = [label]
    top = max(ys) + 1e-12
    for x, y in zip(xs, ys):
        bar = "#" * int(round(width * y / top))
        marker = "  <- best" if y == max(ys) else ""
        lines.append(f"  {x:>5.2f} | {bar:<{width}} {y:.4f}{marker}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args()

    dataset = generate_dataset(
        SyntheticConfig(n_users=200, n_items=60, n_groups=800), seed=7
    )
    base = MGBRConfig.small(d=16, learning_rate=5e-3, gcn_gain=10.0, seed=0)

    print("=== Fig. 4: auxiliary-loss weight sweep (β_A = β_B) ===")
    fig4 = aux_weight_sweep(dataset, base, epochs=args.epochs, eval_max_instances=150)
    for task in ("A", "B"):
        print(ascii_curve(fig4.values(), fig4.series(f"{task}/MRR@10"), f"Task {task} MRR@10"))
    print(f"best β by Task B MRR@10: {fig4.best('B/MRR@10').value}")

    print("\n=== Fig. 5: adjusted-gate coefficient sweep (α_A = α_B) ===")
    fig5 = gate_coefficient_sweep(dataset, base, epochs=args.epochs, eval_max_instances=150)
    for task in ("A", "B"):
        print(ascii_curve(fig5.values(), fig5.series(f"{task}/MRR@10"), f"Task {task} MRR@10"))
    print(f"best α by Task B MRR@10: {fig5.best('B/MRR@10').value}")


if __name__ == "__main__":
    main()
