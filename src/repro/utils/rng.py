"""Deterministic random-number-generator plumbing.

Every stochastic component in this repository (dataset synthesis, weight
initialisation, negative sampling, dropout) accepts either an integer seed
or a :class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the benchmark harness passes explicit seeds and
each component derives independent child streams via
:func:`numpy.random.SeedSequence.spawn`, so adding a new consumer never
perturbs the draws seen by existing ones.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

__all__ = ["SeedLike", "as_rng", "spawn_rngs", "RngMixin"]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS-entropy generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__} as an RNG seed")


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``seed``.

    Child streams are stable under insertion: stream ``k`` depends only on
    the root seed and ``k``, never on how many siblings exist.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.Generator):
        # Generators cannot be re-seeded deterministically; derive children
        # from integers drawn off the parent stream instead.
        return [np.random.default_rng(int(seed.integers(2**63))) for _ in range(n)]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    _rng: Optional[np.random.Generator] = None
    _seed: SeedLike = None

    def seed(self, seed: SeedLike) -> None:
        """Reset the internal generator from ``seed``."""
        self._seed = seed
        self._rng = as_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The component's private generator (created on first access)."""
        if self._rng is None:
            self._rng = as_rng(self._seed)
        return self._rng


def choice_excluding(
    rng: np.random.Generator,
    high: int,
    exclude: Iterable[int],
    size: int,
) -> np.ndarray:
    """Sample ``size`` integers uniformly from ``[0, high)`` avoiding ``exclude``.

    Used by the negative samplers: e.g. draw items a user never bought.
    Rejection sampling is used while the exclusion set is small relative to
    ``high`` (the common recommender-system regime); otherwise we fall back
    to an explicit complement draw, which is exact.
    """
    excluded = set(int(x) for x in exclude)
    n_allowed = high - len(excluded)
    if n_allowed <= 0:
        raise ValueError(
            f"cannot sample from [0, {high}) excluding {len(excluded)} values: nothing left"
        )
    if size < 0:
        raise ValueError(f"negative sample size: {size}")
    # Dense exclusion (>50%): enumerate the complement once.
    if len(excluded) * 2 >= high:
        allowed = np.setdiff1d(np.arange(high), np.fromiter(excluded, dtype=np.int64))
        return rng.choice(allowed, size=size, replace=True)
    out = np.empty(size, dtype=np.int64)
    filled = 0
    while filled < size:
        draw = rng.integers(0, high, size=(size - filled) * 2)
        good = draw[~np.isin(draw, np.fromiter(excluded, dtype=np.int64))] if excluded else draw
        take = min(good.size, size - filled)
        out[filled : filled + take] = good[:take]
        filled += take
    return out
