"""Training-throughput benchmark: the planned optimisation step vs flat.

Times full training epochs for the two trainer engines — the historical
*flat* step (``TrainConfig(dedup=False)``: every (instance × negative)
loss row re-scored through the full model) and the *planned* step
(``dedup=True``: each step's positive + negative + auxiliary-corruption
requests compiled into one differentiable
:class:`repro.plan.PlannedBatch`, unique requests scored once through
the factorized expert/gate stack, scores scattered back to the loss
rows) — at the paper's loop hyper-parameters: batch 64, 1:9 negative
sampling, |T| = 99 auxiliary corruptions.  Also records the ``"auto"``
engine, which resolves per model (planned for MGBR's expensive stack,
flat for GBMF's near-free dot product) — the plan-aware cheap-model
heuristic from the ROADMAP.

Each engine reports steps/sec plus the per-phase wall-clock breakdown
(``sampling`` / ``forward`` / ``backward`` / ``optimizer``) surfaced by
:class:`repro.training.history.EpochRecord.phases`, and the first-epoch
losses of both engines are compared — they agree to float re-association
(bit-identical for GBMF's pure pair-dedup path); the strict gradient /
post-Adam-weight parity assertions live in tests/test_training.py.

Writes ``BENCH_train_throughput.json`` at the repository root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_train_throughput.py``);
``--smoke`` runs a seconds-scale configuration and skips the artifact.
Environment knobs: ``REPRO_BENCH_TRAIN_USERS / ITEMS / GROUPS / EPOCHS``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.training import TrainConfig, Trainer

USERS = int(os.environ.get("REPRO_BENCH_TRAIN_USERS", "300"))
ITEMS = int(os.environ.get("REPRO_BENCH_TRAIN_ITEMS", "120"))
GROUPS = int(os.environ.get("REPRO_BENCH_TRAIN_GROUPS", "900"))
EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "2"))

# Paper loop hyper-parameters (Table II): |B| = 64, 1:9, |T| = 99.
BATCH_SIZE = 64
TRAIN_NEGATIVES = 9
AUX_NEGATIVES = 99

DATA_SEED = 7
MODEL_SEED = 1

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_train_throughput.json"


def _dataset():
    return generate_dataset(
        SyntheticConfig(n_users=USERS, n_items=ITEMS, n_groups=GROUPS), seed=DATA_SEED
    )


def _build_mgbr(dataset):
    config = MGBRConfig.small(
        d=16,
        aux_negatives=AUX_NEGATIVES,
        train_negatives=TRAIN_NEGATIVES,
        batch_size=BATCH_SIZE,
        seed=MODEL_SEED,
    )
    return MGBR(dataset.train, dataset.n_users, dataset.n_items, config=config)


def _build_gbmf(dataset):
    return GBMF(dataset.n_users, dataset.n_items, dim=16, seed=MODEL_SEED)


def _train_config(dedup) -> TrainConfig:
    return TrainConfig(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        train_negatives=TRAIN_NEGATIVES,
        aux_negatives=AUX_NEGATIVES,
        learning_rate=5e-3,
        seed=0,
        dedup=dedup,
    )


def _steps_per_epoch(trainer: Trainer) -> int:
    cfg = trainer.config
    n_a = max(1, (len(trainer.task_a) + cfg.batch_size - 1) // cfg.batch_size)
    n_b = max(1, (len(trainer.task_b) + cfg.batch_size - 1) // cfg.batch_size)
    return max(n_a, n_b)


def _run_engine(build_model, dataset, dedup) -> dict:
    """Train ``EPOCHS`` epochs; report the best epoch's throughput."""
    trainer = Trainer(build_model(dataset), dataset, _train_config(dedup))
    steps = _steps_per_epoch(trainer)
    records = [trainer.train_epoch() for _ in range(EPOCHS)]
    best = min(records, key=lambda r: r.seconds)
    return {
        "engine": "planned" if trainer._use_planned else "flat",
        "steps_per_epoch": steps,
        "epoch_seconds": round(best.seconds, 4),
        "steps_per_sec": round(steps / best.seconds, 3),
        "phase_seconds": best.phases,
        "first_epoch_losses": {k: v for k, v in records[0].losses.items()},
    }


def _plan_stats(build_model, dataset) -> dict:
    """Plan statistics for one representative training step's requests.

    Uses the trainer's own plan construction
    (:meth:`repro.training.Trainer._step_planned_batches`), so the
    reported numbers describe exactly what the planned step scores.
    """
    trainer = Trainer(build_model(dataset), dataset, _train_config(True))
    pair = next(iter(trainer._paired_batches()))
    draws = trainer._draw_negatives(pair["a"], pair["b"])
    batches = trainer._step_planned_batches(pair["a"], pair["b"], draws)
    return {name: batch.plan.stats() for name, batch in batches.items()}


def _bench_model(build_model, dataset) -> dict:
    flat = _run_engine(build_model, dataset, False)
    planned = _run_engine(build_model, dataset, True)
    auto = _run_engine(build_model, dataset, "auto")
    loss_delta = max(
        abs(flat["first_epoch_losses"][k] - planned["first_epoch_losses"][k])
        for k in flat["first_epoch_losses"]
    )
    return {
        "flat": flat,
        "planned": planned,
        "auto": auto,
        "auto_resolves_to": auto["engine"],
        "planned_speedup": round(
            planned["steps_per_sec"] / flat["steps_per_sec"], 2
        ),
        "first_epoch_loss_max_abs_diff": loss_delta,
        "step_plan": _plan_stats(build_model, dataset),
    }


def run_benchmark() -> dict:
    dataset = _dataset()
    return {
        "dataset": {"users": USERS, "items": ITEMS, "groups": GROUPS},
        "loop": {
            "batch_size": BATCH_SIZE,
            "train_negatives": TRAIN_NEGATIVES,
            "aux_negatives": AUX_NEGATIVES,
            "epochs_timed": EPOCHS,
        },
        "models": {
            "MGBR": _bench_model(_build_mgbr, dataset),
            "GBMF": _bench_model(_build_gbmf, dataset),
        },
    }


def check_report(report: dict) -> None:
    """The acceptance gates the CI smoke run also exercises."""
    mgbr = report["models"]["MGBR"]
    assert mgbr["planned_speedup"] >= 2.0, (
        f"planned step speedup {mgbr['planned_speedup']}x < 2x"
    )
    assert mgbr["auto_resolves_to"] == "planned", "auto should plan for MGBR"
    assert mgbr["first_epoch_loss_max_abs_diff"] < 1e-9, (
        f"planned losses diverged: {mgbr['first_epoch_loss_max_abs_diff']}"
    )
    gbmf = report["models"]["GBMF"]
    assert gbmf["auto_resolves_to"] == "flat", "auto should stay flat for GBMF"
    assert gbmf["first_epoch_loss_max_abs_diff"] == 0.0, (
        "pair-dedup losses must be bit-identical"
    )


def test_train_throughput():
    """Planned step ≥2× flat for MGBR; losses agree; auto routes sanely."""
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    check_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (tiny dataset, 1 epoch); skips the JSON artifact",
    )
    args = parser.parse_args()
    if args.smoke:
        USERS, ITEMS, GROUPS, EPOCHS = 100, 40, 240, 1
        AUX_NEGATIVES = 19
    result = run_benchmark()
    check_report(result)
    if not args.smoke:
        OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
