"""Deterministic random-number-generator plumbing.

Every stochastic component in this repository (dataset synthesis, weight
initialisation, negative sampling, dropout) accepts either an integer seed
or a :class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the benchmark harness passes explicit seeds and
each component derives independent child streams via
:func:`numpy.random.SeedSequence.spawn`, so adding a new consumer never
perturbs the draws seen by existing ones.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

__all__ = [
    "SeedLike",
    "as_rng",
    "spawn_rngs",
    "RngMixin",
    "choice_excluding",
    "choice_excluding_batch",
]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS-entropy generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__} as an RNG seed")


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``seed``.

    Child streams are stable under insertion: stream ``k`` depends only on
    the root seed and ``k``, never on how many siblings exist.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.Generator):
        # Generators cannot be re-seeded deterministically; derive children
        # from integers drawn off the parent stream instead.
        return [np.random.default_rng(int(seed.integers(2**63))) for _ in range(n)]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    _rng: Optional[np.random.Generator] = None
    _seed: SeedLike = None

    def seed(self, seed: SeedLike) -> None:
        """Reset the internal generator from ``seed``."""
        self._seed = seed
        self._rng = as_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The component's private generator (created on first access)."""
        if self._rng is None:
            self._rng = as_rng(self._seed)
        return self._rng


def choice_excluding(
    rng: np.random.Generator,
    high: int,
    exclude: Iterable[int],
    size: int,
) -> np.ndarray:
    """Sample ``size`` integers uniformly from ``[0, high)`` avoiding ``exclude``.

    Used by the negative samplers: e.g. draw items a user never bought.
    Rejection sampling is used while the exclusion set is small relative to
    ``high`` (the common recommender-system regime); otherwise we fall back
    to an explicit complement draw, which is exact.
    """
    excluded = set(int(x) for x in exclude)
    n_allowed = high - len(excluded)
    if n_allowed <= 0:
        raise ValueError(
            f"cannot sample from [0, {high}) excluding {len(excluded)} values: nothing left"
        )
    if size < 0:
        raise ValueError(f"negative sample size: {size}")
    # Dense exclusion (>50%): enumerate the complement once.
    if len(excluded) * 2 >= high:
        allowed = np.setdiff1d(np.arange(high), np.fromiter(excluded, dtype=np.int64))
        return rng.choice(allowed, size=size, replace=True)
    out = np.empty(size, dtype=np.int64)
    filled = 0
    while filled < size:
        draw = rng.integers(0, high, size=(size - filled) * 2)
        good = draw[~np.isin(draw, np.fromiter(excluded, dtype=np.int64))] if excluded else draw
        take = min(good.size, size - filled)
        out[filled : filled + take] = good[:take]
        filled += take
    return out


def choice_excluding_batch(
    rng: np.random.Generator,
    high: int,
    excludes: Sequence[Iterable[int]],
    size: int,
) -> np.ndarray:
    """Batched :func:`choice_excluding` — one row per exclusion set.

    Draws a ``(len(excludes), size)`` matrix where row ``k`` contains
    uniform samples (with replacement, like the scalar form) from
    ``[0, high)`` avoiding ``excludes[k]``.  The whole batch is rejection
    sampled with vectorised NumPy: per-row membership tests are done by
    encoding each excluded pair as the key ``row * high + value`` and
    binary-searching candidate keys against the sorted key array, so the
    cost scales with the total number of exclusions rather than
    ``rows × high``.  Rows whose exclusion set covers ≥ half the range
    fall back to the scalar complement draw (exact, no rejection).
    """
    n_rows = len(excludes)
    if size < 0:
        raise ValueError(f"negative sample size: {size}")
    out = np.empty((n_rows, size), dtype=np.int64)
    if n_rows == 0 or size == 0:
        return out

    exclude_arrays: List[np.ndarray] = []
    dense_rows: List[int] = []
    for row, exc in enumerate(excludes):
        arr = np.unique(np.fromiter((int(x) for x in exc), dtype=np.int64))
        # Out-of-range exclusions are meaningless (nothing to exclude);
        # drop them like the scalar path effectively does — they must not
        # reach the row*high+value key encoding, where they would alias
        # into a neighbouring row's key space.
        arr = arr[(arr >= 0) & (arr < high)]
        if high - arr.size <= 0:
            raise ValueError(
                f"cannot sample from [0, {high}) excluding {arr.size} values: nothing left"
            )
        if arr.size * 2 >= high:
            dense_rows.append(row)
        exclude_arrays.append(arr)

    # Dense rows (>50% excluded) would stall rejection sampling; give
    # them the exact complement draw instead (rare in recommender data).
    for row in dense_rows:
        out[row] = choice_excluding(rng, high, exclude_arrays[row], size)

    dense = set(dense_rows)
    pending = np.asarray(
        [r for r in range(n_rows) if r not in dense], dtype=np.int64
    )
    if pending.size == 0:
        return out

    keys = np.sort(
        np.concatenate(
            [exclude_arrays[r] + r * high for r in pending]
            or [np.empty(0, dtype=np.int64)]
        )
    )

    def _valid(rows: np.ndarray, draw: np.ndarray) -> np.ndarray:
        """Membership mask: True where ``draw`` avoids its row's exclusions."""
        if keys.size == 0:
            return np.ones(draw.shape, dtype=bool)
        probe = rows[:, None] * high + draw
        pos = np.searchsorted(keys, probe)
        hit = (pos < keys.size) & (keys[np.minimum(pos, keys.size - 1)] == probe)
        return ~hit

    todo = pending
    while todo.size:
        # Oversample: every pending row has >50% acceptance probability,
        # so 2×size + 8 columns virtually always finish a row per round;
        # the rare unlucky row is redrawn whole next round.
        draw = rng.integers(0, high, size=(todo.size, 2 * size + 8))
        ok = _valid(todo, draw)
        order = np.argsort(~ok, axis=1, kind="stable")  # valid entries first
        draw_sorted = np.take_along_axis(draw, order, axis=1)
        done = ok.sum(axis=1) >= size
        out[todo[done]] = draw_sorted[done, :size]
        todo = todo[~done]
    return out
