"""Mini-batch iteration over task samples.

The trainer consumes fixed-size shuffled batches of Task-A pairs and
Task-B triples (paper batch size |B| = 64, Table II).  Batches are plain
``dict[str, np.ndarray]`` so models stay framework-agnostic.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from repro.data.samples import TaskASamples, TaskBSamples
from repro.utils.rng import SeedLike, as_rng

__all__ = ["iter_task_a_batches", "iter_task_b_batches", "n_batches"]


def n_batches(n_samples: int, batch_size: int, drop_last: bool = False) -> int:
    """Number of batches an epoch will produce."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if drop_last:
        return n_samples // batch_size
    return (n_samples + batch_size - 1) // batch_size


def _iter_index_batches(
    n: int, batch_size: int, rng, shuffle: bool, drop_last: bool
) -> Iterator[np.ndarray]:
    order = np.arange(n)
    if shuffle:
        rng.shuffle(order)
    limit = (n // batch_size) * batch_size if drop_last else n
    for start in range(0, limit, batch_size):
        yield order[start : start + batch_size]


def iter_task_a_batches(
    samples: TaskASamples,
    batch_size: int = 64,
    shuffle: bool = True,
    drop_last: bool = False,
    seed: SeedLike = None,
) -> Iterator[Dict[str, np.ndarray]]:
    """Yield ``{"index", "users", "items", "group_index"}`` Task-A batches.

    ``index`` carries each row's position in ``samples`` so per-row
    precomputed state (e.g. a :class:`repro.data.negative.NegativePool`)
    can be gathered for the batch.
    """
    rng = as_rng(seed)
    for idx in _iter_index_batches(len(samples), batch_size, rng, shuffle, drop_last):
        yield {
            "index": idx,
            "users": samples.users[idx],
            "items": samples.items[idx],
            "group_index": samples.group_index[idx],
        }


def iter_task_b_batches(
    samples: TaskBSamples,
    batch_size: int = 64,
    shuffle: bool = True,
    drop_last: bool = False,
    seed: SeedLike = None,
) -> Iterator[Dict[str, np.ndarray]]:
    """Yield ``{"index", "users", "items", "participants", "group_index"}`` batches."""
    rng = as_rng(seed)
    for idx in _iter_index_batches(len(samples), batch_size, rng, shuffle, drop_last):
        yield {
            "index": idx,
            "users": samples.users[idx],
            "items": samples.items[idx],
            "participants": samples.participants[idx],
            "group_index": samples.group_index[idx],
        }
