"""Scoring plans: dedup + scatter maps for batched candidate scoring.

The batched evaluation/serving request shape is a flattened
(instance × candidate) matrix, and in practice it is massively
redundant: the same user row is replicated across every candidate of an
instance, candidate lists sample items/participants with replacement, and
the same ``(u, i)`` pair recurs across instances.  A
:class:`ScoringPlan` makes that redundancy explicit *before* the model
runs:

* the flat request collapses onto its **unique pairs** (Task A) or
  **unique triples** (Task B) with a ``scatter`` map back to the full
  score matrix — a pure-function scorer only ever evaluates each unique
  request once;
* each unique-pair column further collapses onto its **unique entities**
  (users / items / participants) with per-pair position maps
  (``user_pos`` etc.) — the factorized expert/gate stack
  (:meth:`repro.core.mtl.MultiTaskModule.forward_planned`) computes its
  layer-0 partial projections once per unique entity and combines them
  per pair, cutting real FLOPs rather than just dispatch overhead.

Plans are plain data: NumPy index arrays plus an output shape.  They are
built by the evaluation protocol, the batched matrix scorers in
:mod:`repro.baselines.base`, the :mod:`repro.serving` front-end, and —
via :class:`PlannedBatch`, which compiles a training step's
heterogeneous positive/negative/auxiliary-corruption segments into one
plan per head — the trainer's planned optimisation step
(:mod:`repro.training.trainer`), whose gathers and scatters run as
autograd ops so gradients flow through the dedup maps.

This module lives at the package root (below every other layer) because
the plan is the contract between them: it depends only on NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ScoringPlan", "PlannedBatch"]


def _unique_rows(columns):
    """Row-dedup parallel int columns → (unique columns, first, inverse).

    Uses an arithmetic key (``((u * Si) + i) * Sp + p`` style) when it
    provably fits in int64, falling back to ``np.unique(..., axis=0)``
    for astronomically large id spaces.
    """
    cols = [np.ascontiguousarray(c, dtype=np.int64) for c in columns]
    n = len(cols[0])
    if n and any(int(c.min()) < 0 for c in cols):
        # Negative ids would collide in the arithmetic key below (e.g.
        # (1, -1) keys like (0, stride-1)) and silently merge distinct
        # requests; entity ids are table rows, so reject them outright.
        raise ValueError("scoring-plan ids must be non-negative")
    strides = [int(c.max()) + 1 if n else 1 for c in cols]
    span = 1
    for s in strides:
        span *= s
    if n and span < np.iinfo(np.int64).max:
        key = cols[0]
        for col, stride in zip(cols[1:], strides[1:]):
            key = key * stride + col
        _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    else:  # pragma: no cover - needs > 9e18 combined id space
        arr = np.stack(cols, axis=1)
        _, first, inverse = np.unique(
            arr, axis=0, return_index=True, return_inverse=True
        )
    return [c[first] for c in cols], first, inverse.ravel()


@dataclass
class ScoringPlan:
    """A deduplicated scoring request plus its scatter map.

    Attributes
    ----------
    out_shape:
        Shape of the full score array the request came from (``(n, m)``
        for candidate matrices, ``(k,)`` for flat pair lists).
    scatter_index:
        ``(prod(out_shape),)`` indices into the unique-pair axis; the
        full score array is ``unique_scores[scatter_index]`` reshaped.
        ``None`` means identity (the pairs already *are* the request —
        :meth:`pair_slice` windows).
    users / items / participants:
        Parallel ``(P,)`` id arrays of the unique requests
        (``participants`` is ``None`` for Task-A item plans).
    unique_users / user_pos (and item / participant analogues):
        The distinct entity ids appearing in the unique requests and,
        per request, the position of its entity inside that distinct
        list — the gather maps the factorized layer-0 projections use.
        Computed lazily: models that only consume the unique pair lists
        (the dot-product baselines) never pay for them.
    """

    out_shape: Tuple[int, ...]
    scatter_index: Optional[np.ndarray]
    users: np.ndarray
    items: np.ndarray
    participants: Optional[np.ndarray] = None
    _entity_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _from_flat(cls, out_shape, columns) -> "ScoringPlan":
        uniq, _, inverse = _unique_rows(columns)
        return cls(
            out_shape=tuple(out_shape),
            scatter_index=inverse,
            users=uniq[0],
            items=uniq[1],
            participants=uniq[2] if len(uniq) == 3 else None,
        )

    # ------------------------------------------------------------------
    # Lazy entity gather maps
    # ------------------------------------------------------------------
    def _entity(self, name: str, ids: np.ndarray):
        if name not in self._entity_cache:
            unique, pos = np.unique(ids, return_inverse=True)
            self._entity_cache[name] = (unique, pos.ravel())
        return self._entity_cache[name]

    @property
    def unique_users(self) -> np.ndarray:
        return self._entity("users", self.users)[0]

    @property
    def user_pos(self) -> np.ndarray:
        return self._entity("users", self.users)[1]

    @property
    def unique_items(self) -> np.ndarray:
        return self._entity("items", self.items)[0]

    @property
    def item_pos(self) -> np.ndarray:
        return self._entity("items", self.items)[1]

    @property
    def unique_participants(self) -> Optional[np.ndarray]:
        if self.participants is None:
            return None
        return self._entity("participants", self.participants)[0]

    @property
    def part_pos(self) -> Optional[np.ndarray]:
        if self.participants is None:
            return None
        return self._entity("participants", self.participants)[1]

    # ------------------------------------------------------------------
    # Per-shard gather maps (sharded embedding stores)
    # ------------------------------------------------------------------
    #: role -> attribute holding the id array a shard map is built over.
    #: ``users``/``items``/``participants`` are the *unique-entity*
    #: arrays the factorized stack gathers; the ``pair_*`` roles are the
    #: per-unique-request columns the default pair-dedup hooks gather.
    _SHARD_ROLES = {
        "users": "unique_users",
        "items": "unique_items",
        "participants": "unique_participants",
        "pair_users": "users",
        "pair_items": "items",
        "pair_participants": "participants",
    }

    def shard_map(self, role: str, partitioner):
        """Cached per-shard gather map for one of this plan's id arrays.

        ``partitioner`` is duck-typed (anything with a hashable ``key``
        and a ``build_map(ids)`` — :class:`repro.store.Partitioner` in
        practice), keeping this module NumPy-only.  The compiled
        :class:`repro.store.ShardMap` groups the role's ids by owning
        shard so a sharded store answers the whole gather touching each
        shard exactly once; caching it here means every tower/head that
        re-gathers the same role during one planned call (and the
        trainer's repeated use of one step's plan) reuses the grouping.
        """
        try:
            ids = getattr(self, self._SHARD_ROLES[role])
        except KeyError:
            raise ValueError(
                f"unknown shard-map role {role!r}; known: {sorted(self._SHARD_ROLES)}"
            ) from None
        if ids is None:
            raise ValueError(f"role {role!r} is empty on a pair plan")
        key = ("shard_map", role, partitioner.key)
        if key not in self._entity_cache:
            self._entity_cache[key] = partitioner.build_map(ids)
        return self._entity_cache[key]

    @classmethod
    def for_items(cls, users, candidate_items) -> "ScoringPlan":
        """Plan a Task-A candidate matrix: ``(n,)`` users × ``(n, m)`` items."""
        users = np.asarray(users, dtype=np.int64)
        cands = np.asarray(candidate_items, dtype=np.int64)
        if cands.ndim != 2 or len(users) != cands.shape[0]:
            raise ValueError(
                f"need (n,) users and (n, m) candidates, got {users.shape}/{cands.shape}"
            )
        flat_users = np.repeat(users, cands.shape[1])
        return cls._from_flat(cands.shape, (flat_users, cands.ravel()))

    @classmethod
    def for_participants(cls, users, items, candidate_participants) -> "ScoringPlan":
        """Plan a Task-B candidate matrix: ``(n,)`` (u, i) × ``(n, m)`` users."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        cands = np.asarray(candidate_participants, dtype=np.int64)
        if cands.ndim != 2 or not (len(users) == len(items) == cands.shape[0]):
            raise ValueError(
                "need (n,) users, (n,) items and (n, m) candidates, got "
                f"{users.shape}/{items.shape}/{cands.shape}"
            )
        m = cands.shape[1]
        return cls._from_flat(
            cands.shape, (np.repeat(users, m), np.repeat(items, m), cands.ravel())
        )

    @classmethod
    def from_item_pairs(cls, users, items) -> "ScoringPlan":
        """Plan an explicit flat ``(k,)`` list of (u, i) requests."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError(
                f"need matching 1-D id arrays, got {users.shape}/{items.shape}"
            )
        return cls._from_flat(users.shape, (users, items))

    @classmethod
    def from_triples(cls, users, items, participants) -> "ScoringPlan":
        """Plan an explicit flat ``(k,)`` list of (u, i, p) requests."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        participants = np.asarray(participants, dtype=np.int64)
        if not (users.shape == items.shape == participants.shape) or users.ndim != 1:
            raise ValueError(
                "need matching 1-D id arrays, got "
                f"{users.shape}/{items.shape}/{participants.shape}"
            )
        return cls._from_flat(users.shape, (users, items, participants))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_triple(self) -> bool:
        """Whether this is a Task-B (participant) plan."""
        return self.participants is not None

    @property
    def n_flat(self) -> int:
        """Rows of the original flattened request."""
        return int(np.prod(self.out_shape)) if self.out_shape else 0

    @property
    def n_pairs(self) -> int:
        """Unique requests the model actually scores."""
        return len(self.users)

    @property
    def dedup_ratio(self) -> float:
        """``n_flat / n_pairs`` — 1.0 means no duplicates to exploit."""
        return self.n_flat / max(self.n_pairs, 1)

    def stats(self) -> dict:
        """Summary counters (used by serving observability and benches)."""
        out = {
            "flat": self.n_flat,
            "unique_pairs": self.n_pairs,
            "dedup_ratio": round(self.dedup_ratio, 3),
            "unique_users": len(self.unique_users),
            "unique_items": len(self.unique_items),
        }
        if self.unique_participants is not None:
            out["unique_participants"] = len(self.unique_participants)
        return out

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def pair_slice(self, sl: slice) -> "ScoringPlan":
        """Sub-plan over a slice of the unique-pair axis.

        The evaluation protocol chunks *unique pairs* (not flat rows), so
        cross-instance dedup is global while each model call stays
        bounded.  The window's pairs are unique by construction, so the
        sub-plan scatters 1:1 (identity, ``scatter_index=None``) without
        re-deduplicating; its entity gather maps are (lazily) rebuilt
        local to the window.
        """
        users = self.users[sl]
        return ScoringPlan(
            out_shape=(len(users),),
            scatter_index=None,
            users=users,
            items=self.items[sl],
            participants=None if self.participants is None else self.participants[sl],
        )

    def scatter(self, unique_scores: np.ndarray) -> np.ndarray:
        """Broadcast unique-request scores back to the full request shape."""
        unique_scores = np.asarray(unique_scores)
        if unique_scores.shape != (self.n_pairs,):
            raise ValueError(
                f"expected ({self.n_pairs},) unique scores, got {unique_scores.shape}"
            )
        if self.scatter_index is None:
            return unique_scores.reshape(self.out_shape)
        return unique_scores[self.scatter_index].reshape(self.out_shape)


@dataclass
class PlannedBatch:
    """One :class:`ScoringPlan` compiled from named request *segments*.

    A training step is a heterogeneous bag of scoring requests against
    the same head: Task-A positives and sampled negatives (scored with
    the averaged participant slot), plus the auxiliary corruption triples
    (explicit participants).  A ``PlannedBatch`` concatenates those
    segments into one flat request, compiles it into a single global
    plan — so a ``(u, i, p)`` triple appearing in several loss terms is
    scored exactly once — and remembers each segment's window so the
    scattered scores can be split back into per-loss arrays.

    Segments whose participant column is ``None`` ("score with the
    averaged participant", Task A's convention) are filled with the
    caller's ``sentinel`` id — by convention one past the last real
    participant id (``model.mean_participant_id``), so it can never
    collide with a real entity and, because plan ids sort, always lands
    *last* in ``unique_participants`` where the model can substitute the
    mean-participant row.  When *no* segment carries participants the
    participant column is dropped entirely (a plain pair plan — the
    baseline models' Task-A shape).

    ``scatter``/``take`` are duck-typed over NumPy arrays and
    :class:`repro.nn.tensor.Tensor` (both support fancy indexing,
    slicing and ``reshape``), which keeps this module dependent on NumPy
    alone while the trainer routes *differentiable* scores through the
    same maps.
    """

    plan: ScoringPlan
    segments: Dict[str, Tuple[int, Tuple[int, ...]]]

    @classmethod
    def build(
        cls,
        segments: Mapping[str, Sequence],
        sentinel: Optional[int] = None,
    ) -> "PlannedBatch":
        """Compile ordered ``name -> (users, items, participants, shape)``.

        Each value holds parallel 1-D id arrays (``participants`` may be
        ``None``) and the ``shape`` the segment's scores should be
        returned in (``prod(shape)`` must equal the arrays' length —
        callers pre-repeat, e.g. ``np.repeat(users, n_negatives)``).
        """
        if not segments:
            raise ValueError("PlannedBatch needs at least one segment")
        windows: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
        users_parts, items_parts, part_parts = [], [], []
        offset = 0
        any_participants = any(spec[2] is not None for spec in segments.values())
        for name, (users, items, participants, shape) in segments.items():
            users = np.asarray(users, dtype=np.int64)
            items = np.asarray(items, dtype=np.int64)
            shape = tuple(int(s) for s in shape)
            length = int(np.prod(shape)) if shape else 1
            if users.ndim != 1 or users.shape != items.shape or len(users) != length:
                raise ValueError(
                    f"segment {name!r}: need 1-D id arrays of length prod{shape}, "
                    f"got users {users.shape} / items {items.shape}"
                )
            if any_participants:
                if participants is None:
                    if sentinel is None:
                        raise ValueError(
                            f"segment {name!r} has no participants but the batch "
                            "mixes in triple segments — pass the mean-participant "
                            "sentinel id"
                        )
                    participants = np.full(length, int(sentinel), dtype=np.int64)
                else:
                    participants = np.asarray(participants, dtype=np.int64)
                    if participants.shape != users.shape:
                        raise ValueError(
                            f"segment {name!r}: participants shape "
                            f"{participants.shape} != users {users.shape}"
                        )
                part_parts.append(participants)
            users_parts.append(users)
            items_parts.append(items)
            windows[name] = (offset, shape)
            offset += length
        users_cat = np.concatenate(users_parts)
        items_cat = np.concatenate(items_parts)
        if any_participants:
            plan = ScoringPlan.from_triples(
                users_cat, items_cat, np.concatenate(part_parts)
            )
        else:
            plan = ScoringPlan.from_item_pairs(users_cat, items_cat)
        return cls(plan=plan, segments=windows)

    @property
    def n_flat(self) -> int:
        """Total request rows across all segments."""
        return self.plan.n_flat

    def shard_map(self, role: str, partitioner):
        """Per-shard gather map of the underlying plan (see
        :meth:`ScoringPlan.shard_map`)."""
        return self.plan.shard_map(role, partitioner)

    def scatter(self, unique_scores):
        """Unique-request scores → the flat per-request score vector.

        Works on plain arrays *and* autograd tensors: the fancy index is
        :class:`repro.nn.tensor.Tensor.__getitem__`'s scatter-add-backward
        gather, so gradients flow from every duplicated loss row back to
        the one score that produced it.
        """
        if self.plan.scatter_index is None:
            return unique_scores
        return unique_scores[self.plan.scatter_index]

    def take(self, flat_scores, name: str):
        """Slice segment ``name`` out of :meth:`scatter`'s output.

        Returns the segment reshaped to its declared shape; accepts
        arrays or tensors.
        """
        offset, shape = self.segments[name]
        length = int(np.prod(shape)) if shape else 1
        return flat_scores[offset : offset + length].reshape(shape)
