"""Shared utilities: deterministic RNG handling, logging, validation."""

from repro.utils.logging import get_logger
from repro.utils.rng import RngMixin, as_rng, spawn_rngs
from repro.utils.validation import (
    check_index_array,
    check_positive,
    check_probability,
    check_unit_interval,
)

__all__ = [
    "RngMixin",
    "as_rng",
    "spawn_rngs",
    "get_logger",
    "check_index_array",
    "check_positive",
    "check_probability",
    "check_unit_interval",
]
