"""Multi-seed experiment runs — the paper's "average of three runnings".

Table III reports each model's mean over three runs.  This module
retrains a model-builder over a seed list and aggregates every metric
into mean ± std, so benchmark tables can quote the same statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.schema import GroupBuyingDataset
from repro.eval.protocol import evaluate_model
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.logging import get_logger

__all__ = ["SeedRun", "MultiSeedResult", "run_multiseed"]

logger = get_logger("analysis.multiseed")


@dataclass(frozen=True)
class SeedRun:
    """Metrics from one seed's full train+evaluate cycle."""

    seed: int
    metrics: Dict[str, float]


@dataclass
class MultiSeedResult:
    """Aggregated metrics over several seeds."""

    runs: List[SeedRun] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Mean of ``metric`` across runs."""
        return float(np.mean([r.metrics[metric] for r in self.runs]))

    def std(self, metric: str) -> float:
        """Population std of ``metric`` across runs."""
        return float(np.std([r.metrics[metric] for r in self.runs]))

    def summary(self) -> Dict[str, str]:
        """``metric -> "mean±std"`` over every metric seen in run 0."""
        if not self.runs:
            raise ValueError("no runs recorded")
        return {
            key: f"{self.mean(key):.4f}±{self.std(key):.4f}"
            for key in self.runs[0].metrics
        }


def run_multiseed(
    model_builder: Callable[[int], object],
    dataset: GroupBuyingDataset,
    train_config_builder: Callable[[int], TrainConfig],
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[tuple] = ((9, 10),),
    eval_max_instances: Optional[int] = 200,
) -> MultiSeedResult:
    """Train ``model_builder(seed)`` per seed and aggregate metrics.

    Parameters
    ----------
    model_builder: seed -> fresh model instance.
    dataset: shared data (candidate lists stay fixed across seeds — the
        variance measured is *model* variance, as in the paper).
    train_config_builder: seed -> TrainConfig (so batch order varies too).
    seeds: paper uses three runs.
    protocols / eval_max_instances: forwarded to the evaluator.
    """
    result = MultiSeedResult()
    for seed in seeds:
        model = model_builder(seed)
        Trainer(model, dataset, train_config_builder(seed)).fit()
        evaluation = evaluate_model(
            model, dataset, protocols=protocols, max_instances=eval_max_instances
        )
        metrics: Dict[str, float] = {}
        for cutoff, res in evaluation.items():
            for key, value in res.flat().items():
                metrics[f"{key}"] = value
        logger.info("seed %d -> %s", seed, metrics)
        result.runs.append(SeedRun(seed=int(seed), metrics=metrics))
    return result
