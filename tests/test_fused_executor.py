"""The fused no-tape executor: bit-parity, fallbacks, buffer reuse.

The contract under test (see ``docs/backends.md``): with
``executor="fused"`` every planned scoring call at float64 is
**bit-identical** to the tape — for the MGBR expert/gate stack and the
dot-product baselines, dense or sharded stores, via direct plan calls,
the evaluation protocol and the serving engines — while gradient
recording and unsupported model configurations transparently fall back
to the tape (counted, never wrong).
"""

import numpy as np
import pytest

from repro.baselines.gbmf import GBMF
from repro.core import MGBR, MGBRConfig
from repro.eval.protocol import EvalProtocol
from repro.executor import EXECUTOR_ENV, VALID_EXECUTORS, resolve_executor
from repro.nn import is_grad_enabled, no_grad
from repro.nn.tensor import dtype_scope
from repro.plan import ScoringPlan
from repro.serving.engine import ServingEngine
from repro.serving.multi import MultiWorkerEngine


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------
class TestResolveExecutor:
    def test_valid_modes(self):
        assert resolve_executor("fused") == "fused"
        assert resolve_executor("tape") == "tape"

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            resolve_executor("jit")

    def test_grad_forces_tape(self):
        assert resolve_executor("fused", grad_enabled=True) == "tape"
        assert resolve_executor("auto", grad_enabled=True) == "tape"

    def test_auto_defaults_to_fused(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor("auto") == "fused"

    def test_auto_reads_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "tape")
        assert resolve_executor("auto") == "tape"
        monkeypatch.setenv(EXECUTOR_ENV, "garbage")
        assert resolve_executor("auto") == "fused"

    def test_model_knob_validates(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        with pytest.raises(ValueError):
            model.executor = "jit"
        model.executor = "tape"
        assert model.executor == "tape"
        assert "auto" in VALID_EXECUTORS


# ----------------------------------------------------------------------
# Model builders + plan fixtures
# ----------------------------------------------------------------------
def _mgbr(dataset, shards=0, seed=3):
    config = MGBRConfig.small(
        d=8, n_experts=2, mtl_layers=2, embedding_shards=shards
    )
    return MGBR(dataset.train, dataset.n_users, dataset.n_items,
                config=config, seed=seed)


def _gbmf(dataset, shards=0, seed=3):
    return GBMF(dataset.n_users, dataset.n_items, dim=8, seed=seed,
                n_shards=shards)


def _plans(rng, dataset):
    n_u, n_i = dataset.n_users, dataset.n_items
    users = rng.integers(0, n_u, size=60)
    items = rng.integers(0, n_i, size=60)
    participants = rng.integers(0, n_u, size=60)
    return (
        ScoringPlan.from_item_pairs(users, items),
        ScoringPlan.from_triples(users, items, participants),
    )


def _both_executors(model, plan, task):
    """Score ``plan`` fused then on the tape; return both vectors.

    Runs under ``no_grad`` — with recording on, resolution would force
    the tape regardless of the knob (tested separately below).
    """
    scorer = (
        model.score_item_plan if task == "items" else model.score_participant_plan
    )
    with no_grad():
        model.executor = "fused"
        fused = scorer(plan)
        model.executor = "tape"
        tape = scorer(plan)
    model.executor = "auto"
    return fused, tape


# ----------------------------------------------------------------------
# Bit parity at float64
# ----------------------------------------------------------------------
class TestBitParity:
    @pytest.mark.parametrize("shards", [0, 2])
    @pytest.mark.parametrize("task", ["items", "participants"])
    def test_mgbr_plan_parity(self, tiny_dataset, rng, shards, task):
        model = _mgbr(tiny_dataset, shards=shards)
        plan_items, plan_triples = _plans(rng, tiny_dataset)
        plan = plan_items if task == "items" else plan_triples
        fused, tape = _both_executors(model, plan, task)
        np.testing.assert_array_equal(fused, tape)
        stats = model.executor_stats()
        assert stats["fused_calls"] == 1 and stats["tape_calls"] == 1
        assert stats["fallbacks"] == 0

    @pytest.mark.parametrize("shards", [0, 3])
    @pytest.mark.parametrize("task", ["items", "participants"])
    def test_gbmf_plan_parity(self, tiny_dataset, rng, shards, task):
        model = _gbmf(tiny_dataset, shards=shards)
        plan_items, plan_triples = _plans(rng, tiny_dataset)
        plan = plan_items if task == "items" else plan_triples
        fused, tape = _both_executors(model, plan, task)
        np.testing.assert_array_equal(fused, tape)
        assert model.executor_stats()["fallbacks"] == 0

    @pytest.mark.parametrize("build", [_mgbr, _gbmf])
    def test_eval_metrics_executor_invariant(self, tiny_dataset, build):
        model = build(tiny_dataset)
        results = {}
        for executor in ("fused", "tape"):
            protocol = EvalProtocol(
                dataset=tiny_dataset, n_negatives=5, cutoff=5,
                max_instances=40, executor=executor,
            )
            results[executor] = protocol.run(model).flat()
        assert results["fused"] == results["tape"]
        assert model.executor == "auto"  # run() restored the knob

    def test_float32_scope_stays_close(self, tiny_dataset, rng):
        model = _mgbr(tiny_dataset)
        plan, _ = _plans(rng, tiny_dataset)
        with no_grad(), dtype_scope("float32"):
            fused, tape = _both_executors(model, plan, "items")
        model.invalidate_cache()
        np.testing.assert_allclose(fused, tape, rtol=1e-5, atol=1e-6)


# ----------------------------------------------------------------------
# Fallback paths
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_grad_recording_routes_to_tape(self, tiny_dataset, rng):
        model = _mgbr(tiny_dataset)
        model.executor = "fused"
        plan, _ = _plans(rng, tiny_dataset)
        assert is_grad_enabled()  # tests run with recording on by default
        model.score_item_plan(plan)
        stats = model.executor_stats()
        assert stats["fused_calls"] == 0
        assert stats["tape_calls"] == 1
        assert stats["fallbacks"] == 0  # resolution, not a mirror gap

    def test_overridden_hook_counts_fallback(self, tiny_dataset, rng):
        class CustomMGBR(MGBR):
            def _score_item_plan(self, emb, plan):
                return super()._score_item_plan(emb, plan)

        config = MGBRConfig.small(d=8, n_experts=2, mtl_layers=2)
        model = CustomMGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=config, seed=3,
        )
        model.executor = "fused"
        plan, triples = _plans(rng, tiny_dataset)
        with no_grad():
            fused_attempt = model.score_item_plan(plan)
            stats = model.executor_stats()
            assert stats["fallbacks"] == 1 and stats["tape_calls"] == 1
            # The untouched participant hook still runs fused.
            model.score_participant_plan(triples)
            assert model.executor_stats()["fused_calls"] == 1
            # And the fallback's scores equal the reference model's tape run.
            reference = _mgbr(tiny_dataset)
            reference.executor = "tape"
            np.testing.assert_array_equal(
                fused_attempt, reference.score_item_plan(plan)
            )

    def test_overridden_baseline_hook_counts_fallback(self, tiny_dataset, rng):
        class CustomGBMF(GBMF):
            def score_items_from(self, emb, users, items, **kwargs):
                return super().score_items_from(emb, users, items, **kwargs)

        model = CustomGBMF(tiny_dataset.n_users, tiny_dataset.n_items,
                           dim=8, seed=3)
        model.executor = "fused"
        plan, _ = _plans(rng, tiny_dataset)
        with no_grad():
            model.score_item_plan(plan)
        stats = model.executor_stats()
        assert stats["fallbacks"] == 1 and stats["fused_calls"] == 0


# ----------------------------------------------------------------------
# Buffer reuse
# ----------------------------------------------------------------------
class TestWorkspaceReuse:
    def test_repeat_flushes_hit_buffers(self, tiny_dataset, rng):
        model = _mgbr(tiny_dataset)
        model.executor = "fused"
        plan, _ = _plans(rng, tiny_dataset)
        with no_grad():
            model.score_item_plan(plan)
            first = model.executor_stats()
            assert first["buffer_misses"] > 0 and first["buffer_hits"] == 0
            model.score_item_plan(plan)
            second = model.executor_stats()
        # Same plan shape → the whole pool is reused, no new allocations.
        assert second["buffer_misses"] == first["buffer_misses"]
        assert second["buffer_hits"] == first["buffer_misses"]
        assert second["invalidations"] == 0

    def test_dtype_switch_invalidates(self, tiny_dataset, rng):
        model = _mgbr(tiny_dataset)
        model.executor = "fused"
        plan, _ = _plans(rng, tiny_dataset)
        with no_grad():
            model.score_item_plan(plan)
            with dtype_scope("float32"):
                model.score_item_plan(plan)
        model.invalidate_cache()
        assert model.executor_stats()["invalidations"] >= 1

    def test_results_detached_from_workspace(self, tiny_dataset, rng):
        # Two flushes reuse the same buffers; the first result must not
        # be overwritten by the second (scores are copied out).
        model = _mgbr(tiny_dataset)
        model.executor = "fused"
        plan, _ = _plans(rng, tiny_dataset)
        with no_grad():
            first = model.score_item_plan(plan)
            snapshot = first.copy()
            users = rng.integers(0, tiny_dataset.n_users, size=60)
            items = rng.integers(0, tiny_dataset.n_items, size=60)
            model.score_item_plan(ScoringPlan.from_item_pairs(users, items))
        np.testing.assert_array_equal(first, snapshot)


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
class TestServingExecutor:
    def _serve(self, model, executor):
        with ServingEngine(model, max_delay_ms=1.0, executor=executor) as engine:
            a = engine.score_items(3, [0, 1, 2, 5], timeout=5.0)
            b = engine.score_participants(3, 1, [4, 5, 6], timeout=5.0)
            stats = engine.stats()
        return a, b, stats

    def test_served_scores_bit_identical(self, tiny_dataset):
        fused_a, fused_b, fused_stats = self._serve(_mgbr(tiny_dataset), "fused")
        tape_a, tape_b, tape_stats = self._serve(_mgbr(tiny_dataset), "tape")
        np.testing.assert_array_equal(fused_a, tape_a)
        np.testing.assert_array_equal(fused_b, tape_b)
        assert fused_stats["engine"]["executor"] == "fused"
        assert fused_stats["batcher"]["fused_calls"] == 2
        assert fused_stats["batcher"]["tape_calls"] == 0
        assert tape_stats["batcher"]["fused_calls"] == 0
        assert tape_stats["batcher"]["tape_calls"] == 2

    def test_invalid_executor_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            ServingEngine(_gbmf(tiny_dataset), executor="jit")

    def test_multi_worker_parity_and_aggregation(self, tiny_dataset):
        def replicas():
            return [_mgbr(tiny_dataset, seed=3) for _ in range(2)]

        scores = {}
        for executor in ("fused", "tape"):
            with MultiWorkerEngine(
                replicas(), max_delay_ms=1.0, executor=executor
            ) as engine:
                scores[executor] = [
                    engine.score_items(0, [0, 1, 2], timeout=5.0),
                    engine.score_items(1, [0, 1, 2], timeout=5.0),
                    engine.score_participants(1, 0, [2, 3], timeout=5.0),
                ]
                aggregate = engine.stats()["aggregate"]
            key = f"{executor}_calls"
            assert aggregate[key] >= 3
            other = "tape_calls" if executor == "fused" else "fused_calls"
            assert aggregate[other] == 0
        for fused, tape in zip(scores["fused"], scores["tape"]):
            np.testing.assert_array_equal(fused, tape)
