"""Hot-row LRU cache in front of any embedding store.

Serving traffic is heavily skewed: a few celebrity users and head items
appear in a large fraction of requests, while a sharded table answers
every gather by regrouping ids and touching shard buffers.  An
:class:`LRUCachedStore` decorates any :class:`repro.store.base
.EmbeddingStore` (in practice a :class:`repro.store.ShardedStore` — a
dense table is already one flat buffer) and keeps the most recently
requested ``capacity`` rows resident in a plain id→row map, so a
serving gather only pays the inner store's shard machinery for the
cold tail.

Correctness contract
--------------------
* **Values** — cached rows are copies of exactly what the inner store
  returned; a hit is bit-identical to re-gathering.  The cache is keyed
  on an *epoch* — the sum of the inner parameters' mutation
  ``version``s plus the active default dtype — so any weight update
  (optimizer step, checkpoint load, ``assign_rows``) or a dtype-scope
  switch invalidates every cached row before the next read.
* **Gradients** — the cache serves **inference gathers only**: under
  ``is_grad_enabled()`` every call delegates untouched to the inner
  store, which builds the normal differentiable gather (and records
  ``touched_rows``).  Training through a cached store is therefore
  bit-for-bit training through the inner store.
* **Quantised payloads** — when the inner store exposes a quantised
  tier (:class:`repro.store.quant.QuantizedStore`, duck-typed on
  ``gather_quantized``), the cache holds the *quantised* rows (int8
  codes + per-row scale/zero, or fp16 rows) instead of float copies, so
  the same cache RAM covers ~4× (int8) / ~2× (fp16) the hot set.  A hit
  dequantises straight into the output block — the buffer the fused
  executor adopts — with no intermediate float allocation, and is
  bit-identical to an inner-store miss gather (single shared codec).
* **Threads** — cache mutations and the hit/miss counters share the
  store's lock, so the serving engine's scorer thread and any stats
  reader interleave safely; the engine's single-scorer invariant means
  the lock is uncontended in the common case.

``stats`` gains ``cache_hits`` / ``cache_misses`` / ``cache_evictions``
counters, surfaced through ``RequestBatcher.shard_stats()`` /
``ServingEngine.stats()`` next to the inner store's gather counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, get_default_dtype, is_grad_enabled
from repro.store.base import EmbeddingStore
from repro.store.quant import dequantize_row

__all__ = ["LRUCachedStore", "cache_hot_rows"]


class LRUCachedStore(EmbeddingStore):
    """Keep the hottest ``capacity`` rows of ``inner`` resident.

    Parameters
    ----------
    inner: the decorated store — gathers for rows missing from the
        cache (and every grad-enabled gather) are answered by it.
    capacity: maximum cached rows; least-recently-used rows are evicted
        once exceeded.
    """

    def __init__(self, inner: EmbeddingStore, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if isinstance(inner, LRUCachedStore):
            raise ValueError("refusing to stack LRU caches — wrap the raw store once")
        self.inner = inner
        self.capacity = int(capacity)
        self.num_rows, self.dim = inner.num_rows, inner.dim
        # Quantised inner tier: cache (codes, scale, zero) payloads and
        # dequantise on hit, instead of caching float row copies.
        self._quantized = hasattr(inner, "gather_quantized")
        self._rows: "OrderedDict[int, object]" = OrderedDict()
        self._cache_nbytes = 0
        self._epoch: Optional[Tuple] = None
        self.stats.update({"cache_hits": 0, "cache_misses": 0, "cache_evictions": 0})

    # ------------------------------------------------------------------
    # Layout / parameter delegation (the cache owns no state of its own)
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.inner.n_shards

    @property
    def partition(self) -> str:
        return self.inner.partition

    def shard_size_of(self, shard: int) -> int:
        return self.inner.shard_size_of(shard)

    def resident_rows(self) -> List[int]:
        return self.inner.resident_rows()

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        return self.inner.named_parameters()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _current_epoch(self) -> Tuple:
        versions = sum(p.version for _, p in self.inner.named_parameters())
        return (versions, get_default_dtype().str)

    def gather(self, ids, plan=None, role: Optional[str] = None) -> Tensor:
        if is_grad_enabled():
            # Differentiable gathers must build the inner store's graph;
            # the cache only ever serves inference reads.
            return self.inner.gather(ids, plan=plan, role=role)
        idx = np.asarray(ids, dtype=np.int64).ravel()
        unique = np.unique(idx)
        epoch = self._current_epoch()
        found = {}
        missing: List[int] = []
        with self._lock:
            if epoch != self._epoch:
                self._rows.clear()
                self._cache_nbytes = 0
                self._epoch = epoch
            for i in unique.tolist():
                row = self._rows.get(i)
                if row is None:
                    missing.append(i)
                else:
                    found[i] = row
                    self._rows.move_to_end(i)
            self.stats["cache_hits"] += len(found)
            self.stats["cache_misses"] += len(missing)
        if missing:
            # Inner fetch runs outside the lock (it may touch several
            # shard buffers); per-row copies keep evicted rows from
            # pinning the whole fetched block alive.
            marr = np.asarray(missing, dtype=np.int64)
            if self._quantized:
                fq, fs, fz = self.inner.gather_quantized(marr)
                payloads = [
                    (
                        np.array(fq[k]),
                        None if fs is None else np.float32(fs[k]),
                        None if fz is None else np.float32(fz[k]),
                    )
                    for k in range(len(missing))
                ]
            else:
                fetched = self.inner.gather(marr).data
                payloads = [np.array(fetched[k]) for k in range(len(missing))]
            with self._lock:
                if epoch == self._epoch:  # a writer may have raced the fetch
                    for i, payload in zip(missing, payloads):
                        self._rows[i] = payload
                        self._cache_nbytes += self._payload_nbytes(payload)
                    while len(self._rows) > self.capacity:
                        _, old = self._rows.popitem(last=False)
                        self._cache_nbytes -= self._payload_nbytes(old)
                        self.stats["cache_evictions"] += 1
            for i, payload in zip(missing, payloads):
                found[i] = payload
        self._record_gather(idx.size, 0, 0)
        block = np.empty((len(unique), self.dim), dtype=get_default_dtype())
        if self._quantized:
            # Dequantise each payload straight into its output row — the
            # block the fused executor adopts; no intermediate float
            # allocation, bit-identical to a bulk inner gather.
            for pos, i in enumerate(unique.tolist()):
                q, scale, zero = found[i]
                dequantize_row(q, scale, zero, block[pos])
        else:
            for pos, i in enumerate(unique.tolist()):
                block[pos] = found[i]
        if idx.size == unique.size and np.array_equal(unique, idx):
            return Tensor(block)  # planned gathers pass sorted-unique ids
        return Tensor(block[np.searchsorted(unique, idx)])

    def all(self) -> Tensor:
        return self.inner.all()

    # ------------------------------------------------------------------
    # Writes (delegate, then drop stale rows)
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        with self._lock:
            self._rows.clear()
            self._cache_nbytes = 0
            self._epoch = None

    @staticmethod
    def _payload_nbytes(payload) -> int:
        if isinstance(payload, tuple):
            q, scale, _ = payload
            # int8 payloads carry two float32 side scalars per row.
            return q.nbytes + (0 if scale is None else 8)
        return payload.nbytes

    def logical_state(self) -> np.ndarray:
        return self.inner.logical_state()

    def load_logical(self, values: np.ndarray, dtype=None) -> None:
        self.inner.load_logical(values, dtype)
        self._invalidate()

    def assign_rows(self, ids, values) -> None:
        self.inner.assign_rows(ids, values)
        self._invalidate()

    def rebind_dtype(self, dtype) -> None:
        self.inner.rebind_dtype(dtype)
        self._invalidate()

    def shard_rows(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.shard_rows(shard)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def cached_rows(self) -> int:
        """Rows currently resident in the cache."""
        with self._lock:
            return len(self._rows)

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` over the store's lifetime."""
        with self._lock:
            total = self.stats["cache_hits"] + self.stats["cache_misses"]
            return self.stats["cache_hits"] / total if total else 0.0

    def resident_nbytes(self) -> int:
        """Bytes held by the cache tier itself (payload rows; the inner
        store's buffers are reported by the nested ``inner`` snapshot)."""
        with self._lock:
            return self._cache_nbytes

    def stats_snapshot(self) -> dict:
        out = super().stats_snapshot()
        with self._lock:
            out["cache_rows"] = len(self._rows)
        out["cache_capacity"] = self.capacity
        out["inner"] = self.inner.stats_snapshot()
        return out


def cache_hot_rows(model, capacity: int) -> dict:
    """Wrap every store-backed embedding of a module tree in an LRU cache.

    Walks ``model`` for :class:`repro.nn.layers.Embedding`-style modules
    (anything exposing a ``store`` attribute holding an
    :class:`EmbeddingStore`), replaces each store with an
    :class:`LRUCachedStore` of ``capacity`` rows, and returns
    ``module_path -> cache``.  Already-wrapped stores are left alone, so
    the helper is idempotent.  Wrap **before** building a serving cache
    (``refresh_cache``) so store-backed bundles hand the scoring paths
    the cached store.
    """
    wrapped = {}
    for name, module in model.named_modules():
        store = getattr(module, "store", None)
        if isinstance(store, EmbeddingStore) and not isinstance(store, LRUCachedStore):
            cached = LRUCachedStore(store, capacity)
            module.store = cached
            wrapped[name or "<root>"] = cached
    return wrapped
