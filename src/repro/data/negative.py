"""Negative sampling for training, evaluation and the auxiliary losses.

Three distinct samplers, matching Sec. III-A2 and Sec. II-G:

* **Task A negatives** — for initiator ``u``, draw items ``u`` has *never
  bought* (any role, training split).  Training uses ratio 1:9; the test
  candidate lists use 9 (``@10``) or 99 (``@100``) negatives.
* **Task B negatives** — for a group ``<u, i, G>``, draw users from
  ``U \\ G`` (also excluding ``u`` itself).
* **Auxiliary corruption sets** — for a positive triple ``t=(u,i,p)``,
  ``T_I_t`` corrupts the item (``i' ∈ I\\{i}``) and ``T_P_t`` corrupts the
  participant (``p' ∈ U \\ G_{u,i}``), both of fixed size ``|T|``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

import numpy as np

from repro.data.schema import GroupBuyingDataset
from repro.utils.rng import SeedLike, as_rng, choice_excluding

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Draws all three kinds of negatives against a dataset's training split.

    Parameters
    ----------
    dataset: the source of exclusion sets.
    seed: RNG seed; evaluation protocols pass a fixed seed so candidate
        lists are identical across models.
    splits: which splits feed the exclusion sets.  Training uses just
        ``("train",)``; the evaluation protocol passes all three splits
        because the paper's negatives are "products u has *not* bought"
        over the whole dataset.
    """

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        seed: SeedLike = None,
        splits: Sequence[str] = ("train",),
    ) -> None:
        self.dataset = dataset
        self.rng = as_rng(seed)
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self._user_items: Dict[int, Set[int]] = dataset.user_items(splits)
        self._group_members: Dict[Tuple[int, int], Set[int]] = dataset.group_members(splits)

    # ------------------------------------------------------------------
    # Task A
    # ------------------------------------------------------------------
    def sample_items(self, user: int, n: int, extra_exclude: Sequence[int] = ()) -> np.ndarray:
        """Items ``user`` never bought (plus ``extra_exclude``), size ``n``."""
        exclude = set(self._user_items.get(int(user), set()))
        exclude.update(int(x) for x in extra_exclude)
        return choice_excluding(self.rng, self.n_items, exclude, n)

    def sample_items_batch(self, users: np.ndarray, n: int) -> np.ndarray:
        """Vector form of :meth:`sample_items` → shape ``(len(users), n)``."""
        out = np.empty((len(users), n), dtype=np.int64)
        for row, user in enumerate(users):
            out[row] = self.sample_items(int(user), n)
        return out

    # ------------------------------------------------------------------
    # Task B
    # ------------------------------------------------------------------
    def sample_participants(
        self,
        user: int,
        item: int,
        n: int,
        extra_exclude: Sequence[int] = (),
    ) -> np.ndarray:
        """Users outside ``G_{u,i}`` (and not ``u``), size ``n``."""
        exclude = set(self._group_members.get((int(user), int(item)), set()))
        exclude.add(int(user))
        exclude.update(int(x) for x in extra_exclude)
        return choice_excluding(self.rng, self.n_users, exclude, n)

    def sample_participants_batch(
        self, users: np.ndarray, items: np.ndarray, n: int
    ) -> np.ndarray:
        """Vector form of :meth:`sample_participants` → ``(len(users), n)``."""
        if len(users) != len(items):
            raise ValueError("users and items must be the same length")
        out = np.empty((len(users), n), dtype=np.int64)
        for row, (u, i) in enumerate(zip(users, items)):
            out[row] = self.sample_participants(int(u), int(i), n)
        return out

    # ------------------------------------------------------------------
    # Auxiliary corruption sets (Sec. II-G)
    # ------------------------------------------------------------------
    def corrupt_items(self, users: np.ndarray, items: np.ndarray, size: int) -> np.ndarray:
        """``T_I``: replace the item with any other item, ``(batch, size)``.

        The definition is ``i' ∈ I \\ i`` — only the true item is
        excluded, not the user's other purchases.
        """
        out = np.empty((len(users), size), dtype=np.int64)
        for row, item in enumerate(items):
            out[row] = choice_excluding(self.rng, self.n_items, {int(item)}, size)
        return out

    def corrupt_participants(
        self, users: np.ndarray, items: np.ndarray, size: int
    ) -> np.ndarray:
        """``T_P``: replace the participant with ``p' ∈ U \\ G_{u,i}``."""
        out = np.empty((len(users), size), dtype=np.int64)
        for row, (u, i) in enumerate(zip(users, items)):
            exclude = set(self._group_members.get((int(u), int(i)), set()))
            exclude.add(int(u))
            out[row] = choice_excluding(self.rng, self.n_users, exclude, size)
        return out
