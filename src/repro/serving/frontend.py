"""Request-batching serving front-end over the planned scoring path.

Serving traffic arrives as many small, overlapping requests — "score
these 100 candidate items for user *u*" — and the ROADMAP's async
serving item needs them coalesced before they hit the model.  The
:class:`RequestBatcher` here is that front-end, synchronous by design so
an async wrapper can later own the clock:

1. ``submit_items`` / ``submit_participants`` enqueue a request and
   return a :class:`PendingScores` ticket immediately;
2. ``flush`` compiles *all* pending requests of a task into one
   :class:`repro.plan.ScoringPlan` — cross-request duplicate (u, i) /
   (u, i, p) pairs are scored once, and the factorized models compute
   per-entity work once per unique entity — runs a single planned model
   call under ``no_grad`` (optionally float32), and scatters the score
   vector back onto every ticket;
3. reading ``PendingScores.scores`` before a flush triggers one
   automatically, so the front-end is safe to use one request at a time
   (it just stops being fast).

The model's encoder cache (``refresh_cache``) is reused across flushes;
call :meth:`RequestBatcher.refresh` after swapping weights (e.g. via
:func:`repro.training.checkpoint.restore_model`, which can hand serving
float32 weights directly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.tensor import dtype_scope, no_grad
from repro.plan import ScoringPlan
from repro.store import iter_stores

__all__ = ["PendingScores", "RequestBatcher"]


class PendingScores:
    """A ticket for one submitted request; resolves at the next flush."""

    __slots__ = ("_batcher", "_scores")

    def __init__(self, batcher: "RequestBatcher") -> None:
        self._batcher = batcher
        self._scores: Optional[np.ndarray] = None

    @property
    def ready(self) -> bool:
        """Whether the owning batcher has flushed this request yet."""
        return self._scores is not None

    @property
    def scores(self) -> np.ndarray:
        """The request's score vector (flushes the batcher if pending).

        Raises ``RuntimeError`` if the ticket is still unresolved after
        flushing — that happens when an earlier flush failed mid-batch
        (e.g. an out-of-range id aborted the model call) and dropped its
        queue; resubmit the request rather than chasing a ``None``.
        """
        if self._scores is None:
            self._batcher.flush()
        if self._scores is None:
            raise RuntimeError(
                "scoring ticket was never resolved — a previous flush "
                "failed and dropped its batch; resubmit the request"
            )
        return self._scores

    def _resolve(self, scores: np.ndarray) -> None:
        self._scores = scores


class RequestBatcher:
    """Coalesces scoring requests into planned matrix calls.

    Parameters
    ----------
    model: any :class:`repro.baselines.base.GroupBuyingRecommender`
        (``score_item_plan`` / ``score_participant_plan`` providers).
    dtype: scoring precision; ``"float32"`` opts into the substrate's
        inference fast path (pair well with a float32 checkpoint).
    max_pending: flat request rows per task after which a submit
        triggers an automatic flush — bounds both latency and the size
        of a planned call.
    """

    def __init__(self, model, dtype: str = "float64", max_pending: int = 65536) -> None:
        if dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be float32|float64, got {dtype!r}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.model = model
        self.dtype = dtype
        self.max_pending = max_pending
        self._items: List[tuple] = []          # (user, candidates, ticket)
        self._participants: List[tuple] = []   # (user, item, candidates, ticket)
        self._pending_rows = {"items": 0, "participants": 0}
        self.stats = {
            "requests": 0,
            "flushes": 0,
            "flat_rows": 0,
            "unique_pairs": 0,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _check_ids(self, kind: str, ids, bound_attr: str) -> None:
        """Reject out-of-range ids at submit time.

        A malformed id that only exploded inside ``flush`` would orphan
        every co-batched ticket (the queue is swapped out before the
        model call); validating here keeps one bad request from
        poisoning its neighbours' flush.
        """
        bound = getattr(self.model, bound_attr, None)
        ids = np.asarray(ids)
        low = int(ids.min()) if ids.size else 0
        high = int(ids.max()) if ids.size else -1
        if low < 0 or (bound is not None and high >= bound):
            raise ValueError(
                f"{kind} ids must lie in [0, {bound}), got range [{low}, {high}]"
            )

    def submit_items(self, user: int, candidate_items: Sequence[int]) -> PendingScores:
        """Queue a Task-A request: rank ``candidate_items`` for ``user``."""
        candidates = np.asarray(candidate_items, dtype=np.int64).ravel()
        if candidates.size == 0:
            raise ValueError("a scoring request needs at least one candidate")
        self._check_ids("user", [user], "n_users")
        self._check_ids("item", candidates, "n_items")
        ticket = PendingScores(self)
        self._items.append((int(user), candidates, ticket))
        self._track_submit("items", candidates.size)
        return ticket

    def submit_participants(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> PendingScores:
        """Queue a Task-B request: rank ``candidate_users`` for ``(user, item)``."""
        candidates = np.asarray(candidate_users, dtype=np.int64).ravel()
        if candidates.size == 0:
            raise ValueError("a scoring request needs at least one candidate")
        self._check_ids("user", [user], "n_users")
        self._check_ids("item", [item], "n_items")
        self._check_ids("participant", candidates, "n_users")
        ticket = PendingScores(self)
        self._participants.append((int(user), int(item), candidates, ticket))
        self._track_submit("participants", candidates.size)
        return ticket

    def _track_submit(self, task: str, rows: int) -> None:
        self.stats["requests"] += 1
        self._pending_rows[task] += rows
        if self._pending_rows[task] >= self.max_pending:
            self.flush()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Score every pending request in one planned call per task."""
        if not self._items and not self._participants:
            return
        self.stats["flushes"] += 1
        # Unlike the evaluation protocol, the cached encoder pass is
        # deliberately kept across flushes (recomputing it per flush
        # would defeat serving): under float32 the model therefore holds
        # a reduced-precision cache for as long as it serves — hand the
        # model back to training/analysis via :meth:`release`.
        was_training = getattr(self.model, "training", False)
        if was_training:
            # Serve in eval mode (no dropout etc.), like EvalProtocol.run.
            self.model.eval()
        try:
            with no_grad(), dtype_scope(self.dtype):
                if self._items:
                    self._flush_items()
                if self._participants:
                    self._flush_participants()
        finally:
            if was_training:
                self.model.train()

    def _flush_items(self) -> None:
        requests, self._items = self._items, []
        self._pending_rows["items"] = 0
        users = np.concatenate(
            [np.full(len(cands), user, dtype=np.int64) for user, cands, _ in requests]
        )
        items = np.concatenate([cands for _, cands, _ in requests])
        plan = ScoringPlan.from_item_pairs(users, items)
        self._scatter(plan, self.model.score_item_plan(plan),
                      [(len(cands), ticket) for _, cands, ticket in requests])

    def _flush_participants(self) -> None:
        requests, self._participants = self._participants, []
        self._pending_rows["participants"] = 0
        users = np.concatenate(
            [np.full(len(c), user, dtype=np.int64) for user, _, c, _ in requests]
        )
        items = np.concatenate(
            [np.full(len(c), item, dtype=np.int64) for _, item, c, _ in requests]
        )
        participants = np.concatenate([c for _, _, c, _ in requests])
        plan = ScoringPlan.from_triples(users, items, participants)
        self._scatter(plan, self.model.score_participant_plan(plan),
                      [(len(c), ticket) for _, _, c, ticket in requests])

    def _scatter(self, plan: ScoringPlan, unique_scores, sizes_and_tickets) -> None:
        self.stats["flat_rows"] += plan.n_flat
        self.stats["unique_pairs"] += plan.n_pairs
        flat = plan.scatter(unique_scores)
        offset = 0
        for size, ticket in sizes_and_tickets:
            # copy: a slice view would pin the whole flush's array alive
            # for as long as any one ticket is retained (and let callers
            # write through into their neighbours' scores).
            ticket._resolve(flat[offset : offset + size].copy())
            offset += size

    # ------------------------------------------------------------------
    # Convenience / lifecycle
    # ------------------------------------------------------------------
    def score_items(self, user: int, candidate_items: Sequence[int]) -> np.ndarray:
        """Submit-and-flush shorthand for a single Task-A request."""
        return self.submit_items(user, candidate_items).scores

    def score_participants(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> np.ndarray:
        """Submit-and-flush shorthand for a single Task-B request."""
        return self.submit_participants(user, item, candidate_users).scores

    def shard_stats(self) -> Dict[str, dict]:
        """Per-store gather counters of the served model.

        Sharded models answer each flush's planned call with one gather
        per touched shard; the counters (``gathers``, ``shard_touches``,
        ``max_shard_gather_rows`` …, see
        :class:`repro.store.EmbeddingStore`) expose that behaviour —
        ``shard_touches / gathers`` is the effective fan-out per call
        and ``max_shard_gather_rows`` bounds the transient per-shard
        resident rows a flush ever added on top of the shard's owned
        block.  Empty for models without store-backed tables.
        """
        out: Dict[str, dict] = {}
        if hasattr(self.model, "named_modules"):
            for name, store in iter_stores(self.model):
                out[name] = dict(store.stats, n_shards=store.n_shards)
        return out

    def refresh(self) -> None:
        """Re-run the encoder after a weight update (checkpoint swap)."""
        if hasattr(self.model, "invalidate_cache"):
            self.model.invalidate_cache()
        with no_grad(), dtype_scope(self.dtype):
            if hasattr(self.model, "refresh_cache"):
                self.model.refresh_cache()

    def release(self) -> None:
        """Flush remaining requests and drop the model's serving cache.

        Call before handing the model back to training or analysis code
        so no reduced-precision encoder pass leaks out of serving.
        """
        self.flush()
        if hasattr(self.model, "invalidate_cache"):
            self.model.invalidate_cache()
