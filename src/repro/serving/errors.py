"""Typed serving errors: how the serving layer fails *predictably*.

Past saturation an unbounded queue turns every latency percentile into a
function of how long the overload has lasted.  The serving layer instead
converts excess load into **typed failures** the caller can act on —
retry against another replica, back off, or fall through to a cached
response — rather than into unbounded waiting:

``ServingError``
    Root of the hierarchy (a :class:`RuntimeError`, so legacy callers
    that caught broad runtime failures keep working).

``OverloadError``
    The admission controller refused the request at **submit** time:
    the queue's depth budget (``max_queue_rows`` pending flat rows) was
    exhausted.  Raised synchronously from ``submit_*`` — no ticket is
    created, nothing waits.  Safe to retry after backoff.

``DeadlineExceeded``
    The request was admitted, but by the time the worker drained it the
    request had already waited longer than the age budget
    (``max_queue_age_ms``) — scoring it would only return a result its
    caller has stopped waiting for.  The worker **sheds** it before
    planning: the ticket resolves with this error instead of scores.

``EngineStopped``
    The engine is not serving: ``submit_*`` after ``stop()`` raises it
    synchronously, and ``stop(drain=False)`` resolves every
    still-pending ticket with it (no waiter is ever left to hit its own
    timeout).

``TicketTimeout``
    ``PendingScores.wait(timeout=)`` gave up with the ticket still
    unresolved.  Subclasses :class:`TimeoutError` too, so existing
    ``except TimeoutError`` call-sites keep working — but unlike the
    errors above it says nothing about the *request*: the ticket may
    still resolve later (e.g. once the flush clock fires).

``ShardUnavailable``
    A :class:`repro.store.service.ProcessShardedStore` shard worker
    died or missed its RPC deadline while scoring this batch.  The
    engine resolves the affected task's tickets with it and keeps
    serving the co-batched tasks (the same per-task fault isolation
    that contains scoring errors).  Carries the shard id and how long
    the store waited, for diagnostics.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "OverloadError",
    "DeadlineExceeded",
    "EngineStopped",
    "TicketTimeout",
    "ShardUnavailable",
]


class ServingError(RuntimeError):
    """Base class for every typed failure the serving layer raises."""


class OverloadError(ServingError):
    """Admission control rejected the submit: the depth budget is full."""

    def __init__(self, message: str, pending_rows: int = 0, budget_rows: int = 0) -> None:
        super().__init__(message)
        #: Flat rows pending at rejection time (diagnostic).
        self.pending_rows = pending_rows
        #: The depth budget that was exhausted.
        self.budget_rows = budget_rows


class DeadlineExceeded(ServingError):
    """The request aged past its queue budget and was shed before scoring."""

    def __init__(self, message: str, age_ms: float = 0.0, budget_ms: float = 0.0) -> None:
        super().__init__(message)
        #: How long the request had been queued when it was shed.
        self.age_ms = age_ms
        #: The age budget it exceeded.
        self.budget_ms = budget_ms


class EngineStopped(ServingError):
    """The engine is stopped (or stopping): this request will not be scored."""


class TicketTimeout(ServingError, TimeoutError):
    """``wait(timeout=)`` expired with the ticket still unresolved.

    The only member of the hierarchy that is *not* final: the ticket is
    still owned by the engine and may resolve (with scores or another
    typed error) after this raises.
    """


class ShardUnavailable(ServingError):
    """A cross-process shard worker died or missed its RPC deadline."""

    def __init__(self, message: str, shard: int = -1, elapsed_ms: float = 0.0) -> None:
        super().__init__(message)
        #: Index of the shard whose worker failed to answer.
        self.shard = shard
        #: How long the store had been waiting when it gave up.
        self.elapsed_ms = elapsed_ms
