"""Fused weight-block folds and their parameter-versioned cache.

Two ROADMAP "Planned-step follow-ons" under test:

* :meth:`repro.core.experts.ExpertBank.project_blocks` computes the
  whole bank with one stacked matmul (parity against the per-expert
  loop it replaced);
* fold weights are cached across a step's planned calls and invalidated
  by the parameter-version bumps every in-place mutation site performs
  (``optimizer.step``, ``load_state_dict``) — the regression suite
  checks stale reads are impossible through the supported mutation
  paths and that cache reuse can never corrupt gradients.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experts import ExpertBank
from repro.nn.layers import Linear
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import no_grad, stack, tensor


def _bank(in_dim=6, out_dim=3, n_experts=4, seed=0):
    return ExpertBank(in_dim, out_dim, n_experts, seed=seed)


class TestFusedBankParity:
    def test_stacked_matmul_matches_per_expert_loop(self):
        """The fused bank equals the historical K-matmul loop."""
        bank = _bank()
        x = tensor(np.random.default_rng(0).normal(size=(5, 3)))
        blocks = [(0, 3), (3, 6)]
        fused = bank.project_blocks(x, blocks)
        reference = stack(
            [
                x @ (expert.weight[0:3] + expert.weight[3:6])
                for expert in bank._experts
            ],
            axis=1,
        )
        assert fused.shape == reference.shape == (5, 4, 3)
        np.testing.assert_allclose(fused.data, reference.data, rtol=0, atol=1e-12)

    def test_fused_gradients_match_per_expert_loop(self):
        bank_fused = _bank(seed=7)
        bank_loop = _bank(seed=7)
        x_data = np.random.default_rng(1).normal(size=(4, 3))
        blocks = [(0, 3), (3, 6)]

        bank_fused.project_blocks(tensor(x_data), blocks).sum().backward()
        stack(
            [
                tensor(x_data) @ (expert.weight[0:3] + expert.weight[3:6])
                for expert in bank_loop._experts
            ],
            axis=1,
        ).sum().backward()
        for fused_e, loop_e in zip(bank_fused._experts, bank_loop._experts):
            np.testing.assert_allclose(
                fused_e.weight.grad, loop_e.weight.grad, rtol=0, atol=1e-12
            )

    def test_validation_still_enforced(self):
        bank = _bank()
        with pytest.raises(ValueError, match="block widths"):
            bank.project_blocks(tensor(np.zeros((2, 3))), [(0, 2)])
        with pytest.raises(ValueError, match="at least one"):
            bank.project_blocks(tensor(np.zeros((2, 3))), [])


class TestLinearFoldCache:
    def test_cache_hit_reuses_values(self):
        layer = Linear(6, 2, bias=False, seed=0)
        key = layer.check_blocks(tensor(np.zeros((1, 3))), [(0, 3), (3, 6)])
        first = layer.folded_blocks(key)
        second = layer.folded_blocks(key)
        # Same cached value array, but *distinct* graph nodes (sharing a
        # node across graphs would double-count gradients).
        assert second.data is first.data
        assert second is not first

    @pytest.mark.parametrize(
        "make_optimizer", [lambda p: Adam([p], lr=0.1), lambda p: SGD([p], lr=0.1)],
        ids=["adam", "sgd"],
    )
    def test_optimizer_step_invalidates(self, make_optimizer):
        """The regression the cache must survive: in-place p.data mutation."""
        layer = Linear(6, 2, bias=False, seed=0)
        x = tensor(np.random.default_rng(0).normal(size=(3, 3)))
        blocks = [(0, 3), (3, 6)]
        warm = layer.project_blocks(x, blocks)
        warm.sum().backward()
        make_optimizer(layer.weight).step()
        # Recompute after the step and compare to a cache-free reference
        # built directly from the mutated weights.
        result = layer.project_blocks(x, blocks)
        expected = x.data @ (layer.weight.data[0:3] + layer.weight.data[3:6])
        np.testing.assert_array_equal(result.data, expected)

    def test_load_state_dict_invalidates(self):
        layer = Linear(4, 2, bias=False, seed=0)
        x = tensor(np.ones((1, 2)))
        blocks = [(0, 2), (2, 4)]
        with no_grad():
            before = np.array(layer.project_blocks(x, blocks).data)
            layer.load_state_dict(Linear(4, 2, bias=False, seed=99).state_dict())
            after = layer.project_blocks(x, blocks).data
        expected = x.data @ (layer.weight.data[0:2] + layer.weight.data[2:4])
        np.testing.assert_array_equal(after, expected)
        assert not np.array_equal(before, after)

    def test_bank_cache_invalidates_on_any_expert_step(self):
        bank = _bank()
        x = tensor(np.random.default_rng(2).normal(size=(2, 3)))
        blocks = [(0, 3), (3, 6)]
        bank.project_blocks(x, blocks).sum().backward()
        # Step only ONE expert's weight: the stacked fold (keyed on the
        # tuple of every expert's version) must still rebuild.
        Adam([bank._experts[1].weight], lr=0.5).step()
        result = bank.project_blocks(x, blocks)
        expected = np.stack(
            [
                x.data @ (e.weight.data[0:3] + e.weight.data[3:6])
                for e in bank._experts
            ],
            axis=1,
        )
        np.testing.assert_allclose(result.data, expected, rtol=0, atol=1e-12)

    def test_reuse_within_one_graph_accumulates_once(self):
        """Two planned calls in one step share folds, not gradients."""
        layer = Linear(4, 2, bias=False, seed=3)
        x = tensor(np.random.default_rng(3).normal(size=(2, 2)))
        blocks = [(0, 2), (2, 4)]
        # Same fold used twice in the loss (the "two planned calls" shape).
        loss = (layer.project_blocks(x, blocks) + layer.project_blocks(x, blocks)).sum()
        loss.backward()
        reference = Linear(4, 2, bias=False, seed=3)
        ref_loss = (
            x @ (reference.weight[0:2] + reference.weight[2:4]) * 2.0
        ).sum()
        ref_loss.backward()
        np.testing.assert_allclose(
            layer.weight.grad, reference.weight.grad, rtol=0, atol=1e-12
        )

    def test_sequential_graphs_each_get_fresh_nodes(self):
        """backward on graph 2 must not re-deliver graph 1's gradient."""
        layer = Linear(4, 2, bias=False, seed=5)
        x = tensor(np.ones((1, 2)))
        blocks = [(0, 2), (2, 4)]
        layer.project_blocks(x, blocks).sum().backward()
        first = layer.weight.grad.copy()
        layer.zero_grad()
        layer.project_blocks(x, blocks).sum().backward()
        np.testing.assert_array_equal(layer.weight.grad, first)

    def test_single_block_slice_semantics_unchanged(self):
        layer = Linear(4, 2, bias=False, seed=0)
        x = tensor(np.random.default_rng(4).normal(size=(3, 4)))
        with no_grad():
            np.testing.assert_array_equal(
                layer.project_blocks(x, [(0, 4)]).data, (x @ layer.weight).data
            )

    def test_version_bumps_are_monotonic(self):
        layer = Linear(2, 2, seed=0)
        v0 = layer.weight.version
        opt = Adam([layer.weight], lr=0.1)
        layer.weight.grad = np.ones_like(layer.weight.data)
        opt.step()
        assert layer.weight.version > v0
        layer.load_state_dict(layer.state_dict())
        assert layer.weight.version > v0 + 1
