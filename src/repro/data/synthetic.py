"""Synthetic Beibei-style group-buying data generator.

The paper evaluates on a proprietary dump of Beibei (125,012 users /
30,516 items / 430,360 deal groups) that is not redistributable and not
reachable offline, so this module *simulates the generative process the
paper describes* (Fig. 1b):

1. **Latent preferences.** Users and items get latent factor vectors;
   a user's affinity for an item is the inner product plus an item
   popularity bias drawn from a Zipf-like long tail (real e-commerce
   catalogues are heavy-tailed).
2. **Phase 1 — launch.** An initiator is drawn from an activity-skewed
   user distribution and launches a group on an item sampled by softmax
   affinity: initiations carry genuine preference signal, which is what
   Task A models must recover.
3. **Phase 2 — join.** Group size is drawn from a truncated geometric
   distribution (most Beibei groups are small).  Each participant is
   sampled by softmax over ``item affinity + social affinity to the
   initiator``, where social affinity comes from latent community
   membership.  Joining therefore mixes *item preference* (G_PI signal)
   with *initiator similarity* (G_UP signal) — exactly the two factors
   MGBR's Task B head and adjusted gates are designed to exploit.

Because every structural signal the models exploit (aligned u-i / p-i
preferences, social co-group structure, popularity skew, role asymmetry)
is present, relative model orderings — the thing our experiments
reproduce — are preserved; absolute metric values of course differ from
the Beibei numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.schema import DealGroup, GroupBuyingDataset
from repro.data.split import split_groups
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

__all__ = ["SyntheticConfig", "SyntheticWorld", "generate_dataset", "generate_world"]


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic group-buying world.

    Attributes
    ----------
    n_users / n_items: entity-space sizes before filtering.
    n_groups: number of deal groups to simulate.
    latent_dim: dimensionality of the latent preference factors.
    n_communities: latent social communities driving join behaviour.
    max_group_size: hard cap on participants per group.
    mean_group_size: mean of the truncated geometric size distribution.
    affinity_temperature: softmax temperature for item selection
        (lower = more deterministic preferences = easier dataset).
    social_weight: how strongly participants prefer groups launched by
        socially-similar initiators (0 removes the social signal).
    item_weight: how strongly participants weigh their own affinity to
        the *item* when joining.  Joining in real group buying depends
        jointly on the item and the initiator (the paper's motivation
        for Task B's ``s(p|u,i)``); with ``item_weight`` dominating,
        models that score participants by user-user similarity alone
        (the tailored baselines) cannot rank joiners well — exactly the
        capability gap Table III measures.
    join_temperature: softmax temperature of the *join* decision only
        (defaults to ``affinity_temperature`` when ``None``).  Joins are
        sharper than launches by default: the joint-information Bayes
        ceiling for Task B must sit well above the user-similarity-only
        ceiling for the task to discriminate between models, while the
        launch softmax stays soft enough to keep the item catalogue
        diverse through the min-interaction filter.
    popularity_zipf: Zipf exponent of the item popularity bias.
    activity_zipf: Zipf exponent of user activity (initiator selection).
    min_interactions: Sec. III-A2 filter — users with fewer total
        purchase records are removed along with their groups.
    split_ratios: train/validation/test ratio (paper: 7:3:1).
    candidate_pool: softmax over all items is exact below this count;
        above it, item choice uses a sampled candidate pool of this size
        to keep generation O(n_groups · pool).
    """

    n_users: int = 600
    n_items: int = 200
    n_groups: int = 2400
    latent_dim: int = 12
    n_communities: int = 8
    max_group_size: int = 8
    mean_group_size: float = 2.5
    affinity_temperature: float = 0.35
    join_temperature: Optional[float] = 0.15
    social_weight: float = 0.6
    item_weight: float = 3.0
    popularity_zipf: float = 0.8
    activity_zipf: float = 0.7
    min_interactions: int = 5
    split_ratios: tuple = (7, 3, 1)
    candidate_pool: int = 512

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        check_positive("n_users", self.n_users)
        check_positive("n_items", self.n_items)
        check_positive("n_groups", self.n_groups)
        check_positive("latent_dim", self.latent_dim)
        check_positive("n_communities", self.n_communities)
        check_positive("max_group_size", self.max_group_size)
        check_positive("mean_group_size", self.mean_group_size)
        check_positive("affinity_temperature", self.affinity_temperature)
        if self.social_weight < 0:
            raise ValueError(f"social_weight must be >= 0, got {self.social_weight}")
        if self.item_weight < 0:
            raise ValueError(f"item_weight must be >= 0, got {self.item_weight}")
        if self.join_temperature is not None and self.join_temperature <= 0:
            raise ValueError(
                f"join_temperature must be positive, got {self.join_temperature}"
            )
        if self.min_interactions < 0:
            raise ValueError(f"min_interactions must be >= 0, got {self.min_interactions}")
        if len(self.split_ratios) != 3 or any(r < 0 for r in self.split_ratios):
            raise ValueError(f"split_ratios must be three non-negatives, got {self.split_ratios}")


@dataclass
class SyntheticWorld:
    """Ground-truth latent state behind a synthetic dataset.

    Kept around for analysis: tests use it to verify that the generator's
    observable structure (e.g. community-aligned joins) matches its
    latent state.  Models never see this.
    """

    user_factors: np.ndarray
    item_factors: np.ndarray
    item_popularity: np.ndarray
    user_community: np.ndarray
    user_activity: np.ndarray
    config: SyntheticConfig = field(repr=False, default=None)

    def affinity(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Latent affinity of each (user, item) pair (same-length arrays)."""
        return (
            (self.user_factors[users] * self.item_factors[items]).sum(axis=1)
            + self.item_popularity[items]
        )

    def social_affinity(self, u: int, others: np.ndarray) -> np.ndarray:
        """Social similarity of ``u`` to each user in ``others`` (0/1 community match)."""
        return (self.user_community[others] == self.user_community[u]).astype(np.float64)


def _zipf_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Long-tailed positive weights: shuffled Zipf ranks (sum to 1)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_world(config: SyntheticConfig, seed: SeedLike = None) -> SyntheticWorld:
    """Draw the latent state (factors, communities, popularity, activity)."""
    config.validate()
    rng = as_rng(seed)
    scale = 1.0 / np.sqrt(config.latent_dim)
    user_factors = rng.normal(0.0, scale, size=(config.n_users, config.latent_dim))
    item_factors = rng.normal(0.0, scale, size=(config.n_items, config.latent_dim))
    # Popularity: standardized log-Zipf weights, so a few items are hot.
    pop = np.log(_zipf_weights(config.n_items, config.popularity_zipf, rng))
    item_popularity = 0.5 * (pop - pop.mean()) / (pop.std() + 1e-12)
    user_community = rng.integers(0, config.n_communities, size=config.n_users)
    # Community members share a preference direction: blend a community
    # centroid into each user's factors so social links predict taste.
    centroids = rng.normal(0.0, scale, size=(config.n_communities, config.latent_dim))
    user_factors = 0.6 * user_factors + 0.4 * centroids[user_community]
    user_activity = _zipf_weights(config.n_users, config.activity_zipf, rng)
    return SyntheticWorld(
        user_factors=user_factors,
        item_factors=item_factors,
        item_popularity=item_popularity,
        user_community=user_community,
        user_activity=user_activity,
        config=config,
    )


def _sample_group_size(config: SyntheticConfig, rng: np.random.Generator) -> int:
    """Truncated geometric group size in ``[1, max_group_size]``."""
    p = 1.0 / max(config.mean_group_size, 1.0)
    size = int(rng.geometric(p))
    return int(np.clip(size, 1, config.max_group_size))


def _softmax(scores: np.ndarray, temperature: float) -> np.ndarray:
    z = scores / temperature
    z = z - z.max()
    e = np.exp(z)
    return e / e.sum()


def generate_groups(
    world: SyntheticWorld,
    seed: SeedLike = None,
    n_groups: Optional[int] = None,
) -> List[DealGroup]:
    """Simulate the two-phase group-buying process (Fig. 1b of the paper)."""
    config = world.config
    rng = as_rng(seed)
    total = n_groups if n_groups is not None else config.n_groups
    users = np.arange(config.n_users)
    items = np.arange(config.n_items)
    groups: List[DealGroup] = []
    for _ in range(total):
        # Phase 1: pick the initiator, then the item they launch.
        initiator = int(rng.choice(users, p=world.user_activity))
        if config.n_items > config.candidate_pool:
            pool = rng.choice(items, size=config.candidate_pool, replace=False)
        else:
            pool = items
        launch_scores = world.affinity(np.full(pool.shape, initiator), pool)
        item = int(rng.choice(pool, p=_softmax(launch_scores, config.affinity_temperature)))

        # Phase 2: draw the participants one by one without replacement.
        size = _sample_group_size(config, rng)
        candidates = np.delete(users, initiator)
        item_scores = world.affinity(candidates, np.full(candidates.shape, item))
        social = world.social_affinity(initiator, candidates)
        join_scores = config.item_weight * item_scores + config.social_weight * social
        join_temp = (
            config.join_temperature
            if config.join_temperature is not None
            else config.affinity_temperature
        )
        probs = _softmax(join_scores, join_temp)
        size = min(size, candidates.size)
        chosen = rng.choice(candidates, size=size, replace=False, p=probs)
        groups.append(
            DealGroup(initiator=initiator, item=item, participants=tuple(int(p) for p in chosen))
        )
    return groups


def generate_dataset(
    config: Optional[SyntheticConfig] = None,
    seed: SeedLike = 0,
    name: str = "synthetic-beibei",
) -> GroupBuyingDataset:
    """End-to-end generation: world → groups → min-5 filter → 7:3:1 split.

    This is the public entry point the examples and benchmarks use.  The
    returned dataset has contiguous remapped ids (the filter may remove
    users/items) and the paper's split ratios applied at the group level.
    """
    from repro.data.preprocess import filter_min_interactions  # local: avoid cycle

    config = config or SyntheticConfig()
    rng = as_rng(seed)
    world = generate_world(config, rng)
    groups = generate_groups(world, rng)
    filtered, _ = filter_min_interactions(
        groups,
        n_users=config.n_users,
        n_items=config.n_items,
        min_interactions=config.min_interactions,
    )
    train, validation, test = split_groups(filtered.groups, config.split_ratios, rng)
    return GroupBuyingDataset(
        n_users=filtered.n_users,
        n_items=filtered.n_items,
        train=train,
        validation=validation,
        test=test,
        name=name,
    )
