"""Unit tests for ranking metrics and the accumulator."""

import numpy as np
import pytest

from repro.eval import RankingAccumulator, hit, ndcg, rank_of_positive, reciprocal_rank


class TestRankOfPositive:
    def test_best_rank(self):
        assert rank_of_positive([5.0, 1.0, 2.0], 0) == 1

    def test_worst_rank(self):
        assert rank_of_positive([0.1, 1.0, 2.0], 0) == 3

    def test_middle(self):
        assert rank_of_positive([1.5, 1.0, 2.0], 0) == 2

    def test_positive_not_first_index(self):
        assert rank_of_positive([3.0, 9.0, 1.0], 1) == 1

    def test_ties_count_against_positive(self):
        # Pessimistic convention: constant scores give the worst rank.
        assert rank_of_positive([1.0, 1.0, 1.0], 0) == 3

    def test_index_out_of_bounds(self):
        with pytest.raises(IndexError):
            rank_of_positive([1.0], 3)


class TestMetricFunctions:
    def test_reciprocal_rank_values(self):
        assert reciprocal_rank(1, 10) == 1.0
        assert reciprocal_rank(4, 10) == 0.25
        assert reciprocal_rank(11, 10) == 0.0

    def test_ndcg_values(self):
        assert ndcg(1, 10) == 1.0
        assert ndcg(3, 10) == pytest.approx(0.5)
        assert ndcg(11, 10) == 0.0

    def test_ndcg_gentler_than_mrr(self):
        # NDCG decays logarithmically, MRR hyperbolically.
        for rank in range(2, 10):
            assert ndcg(rank, 10) > reciprocal_rank(rank, 10)

    def test_hit_indicator(self):
        assert hit(10, 10) == 1.0
        assert hit(11, 10) == 0.0

    @pytest.mark.parametrize("fn", [reciprocal_rank, ndcg, hit])
    def test_rank_must_be_positive(self, fn):
        with pytest.raises(ValueError):
            fn(0, 10)

    @pytest.mark.parametrize("fn", [reciprocal_rank, ndcg, hit])
    def test_cutoff_must_be_positive(self, fn):
        with pytest.raises(ValueError):
            fn(1, 0)


class TestAccumulator:
    def test_means(self):
        acc = RankingAccumulator(cutoff=10)
        acc.extend([1, 2, 11])
        result = acc.result()
        assert result["MRR@10"] == pytest.approx((1.0 + 0.5 + 0.0) / 3)
        assert result["HR@10"] == pytest.approx(2 / 3)

    def test_perfect_model(self):
        acc = RankingAccumulator(cutoff=10)
        acc.extend([1] * 5)
        result = acc.result()
        assert result["MRR@10"] == 1.0
        assert result["NDCG@10"] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RankingAccumulator(cutoff=10).result()

    def test_invalid_rank(self):
        acc = RankingAccumulator(cutoff=10)
        with pytest.raises(ValueError):
            acc.add(0)

    def test_len(self):
        acc = RankingAccumulator(cutoff=5)
        acc.extend([1, 2])
        assert len(acc) == 2

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            RankingAccumulator(cutoff=0)

    def test_random_scores_mrr_near_expectation(self, rng):
        # With a 10-candidate list and random scores the expected MRR@10
        # is H(10)/10 ≈ 0.293.
        acc = RankingAccumulator(cutoff=10)
        for _ in range(3000):
            scores = rng.normal(size=10)
            acc.add(rank_of_positive(scores, 0))
        expected = sum(1.0 / r for r in range(1, 11)) / 10
        assert acc.result()["MRR@10"] == pytest.approx(expected, abs=0.02)
