"""Positive-sample extraction for the two sub-tasks.

From every observed deal group ``<u, i, G>`` (Sec. II-A):

* ``(u, i)`` is one positive sample of **Task A**;
* ``(u, i, p)`` for each ``p ∈ G`` is a positive sample of **Task B**.

Samples are materialised as integer arrays so the trainer and the
negative samplers can operate vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.schema import DealGroup

__all__ = ["TaskASamples", "TaskBSamples", "extract_task_a", "extract_task_b"]


@dataclass(frozen=True)
class TaskASamples:
    """Positive (initiator, item) pairs for Task A.

    ``group_index[k]`` records which deal group pair ``k`` came from, so
    auxiliary-loss sampling can recover ``G_{u,i}``.
    """

    users: np.ndarray
    items: np.ndarray
    group_index: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.users) == len(self.items) == len(self.group_index)):
            raise ValueError("task A sample arrays must share a length")

    def __len__(self) -> int:
        return len(self.users)


@dataclass(frozen=True)
class TaskBSamples:
    """Positive (initiator, item, participant) triples for Task B."""

    users: np.ndarray
    items: np.ndarray
    participants: np.ndarray
    group_index: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.users),
            len(self.items),
            len(self.participants),
            len(self.group_index),
        }
        if len(lengths) != 1:
            raise ValueError("task B sample arrays must share a length")

    def __len__(self) -> int:
        return len(self.users)


def extract_task_a(groups: Sequence[DealGroup]) -> TaskASamples:
    """Collect one (u, i) positive per deal group."""
    users = np.fromiter((g.initiator for g in groups), dtype=np.int64, count=len(groups))
    items = np.fromiter((g.item for g in groups), dtype=np.int64, count=len(groups))
    index = np.arange(len(groups), dtype=np.int64)
    return TaskASamples(users=users, items=items, group_index=index)


def extract_task_b(groups: Sequence[DealGroup]) -> TaskBSamples:
    """Collect one (u, i, p) positive per participant of every group."""
    users, items, parts, index = [], [], [], []
    for g_idx, g in enumerate(groups):
        for p in g.participants:
            users.append(g.initiator)
            items.append(g.item)
            parts.append(p)
            index.append(g_idx)
    return TaskBSamples(
        users=np.asarray(users, dtype=np.int64),
        items=np.asarray(items, dtype=np.int64),
        participants=np.asarray(parts, dtype=np.int64),
        group_index=np.asarray(index, dtype=np.int64),
    )
