"""Public-API surface tests: everything the README advertises imports.

A release whose documented imports break is dead on arrival; this module
pins the package-level exports (and that ``__all__`` names exist).
"""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.nn",
    "repro.graph",
    "repro.data",
    "repro.eval",
    "repro.core",
    "repro.baselines",
    "repro.training",
    "repro.analysis",
    "repro.utils",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro.cli"])
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


class TestReadmeSnippets:
    def test_quickstart_imports(self):
        from repro.core import MGBR, MGBRConfig          # noqa: F401
        from repro.data import SyntheticConfig, generate_dataset  # noqa: F401
        from repro.eval import evaluate_model            # noqa: F401
        from repro.training import TrainConfig, Trainer  # noqa: F401

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_config_paper_profile_matches_table2(self):
        from repro.core import MGBRConfig

        cfg = MGBRConfig.paper()
        assert (cfg.d, cfg.n_experts, cfg.mtl_layers) == (128, 6, 2)

    def test_cli_entry_points_exist(self):
        from repro import cli

        for fn in ("main_train", "main_eval", "main_bench"):
            assert callable(getattr(cli, fn))
