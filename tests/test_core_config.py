"""Tests for MGBRConfig: Table II defaults, validation, profiles."""

import pytest

from repro.core import MGBRConfig
from repro.core.variants import VARIANTS, variant_config


class TestTableIIDefaults:
    def test_paper_values(self):
        cfg = MGBRConfig.paper()
        assert cfg.d == 128
        assert cfg.gcn_layers == 2        # H
        assert cfg.n_experts == 6         # K
        assert cfg.mtl_layers == 2        # L
        assert cfg.aux_negatives == 99    # |T|
        assert cfg.alpha_a == 0.1 and cfg.alpha_b == 0.1
        assert cfg.beta == 1.0
        assert cfg.beta_a == 0.3 and cfg.beta_b == 0.3
        assert cfg.learning_rate == pytest.approx(2e-4)
        assert cfg.batch_size == 64

    def test_derived_dims(self):
        cfg = MGBRConfig(d=8)
        assert cfg.view_dim == 16    # 2d
        assert cfg.triple_dim == 48  # 6d

    def test_default_mlp_hidden(self):
        cfg = MGBRConfig(d=32)
        assert cfg.mlp_hidden == (32, 16)

    def test_explicit_mlp_hidden_kept(self):
        cfg = MGBRConfig(d=32, mlp_hidden=(7,))
        assert cfg.mlp_hidden == (7,)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("d", 0),
            ("gcn_layers", 0),
            ("n_experts", 0),
            ("mtl_layers", 0),
            ("aux_negatives", 0),
            ("alpha_a", 1.5),
            ("alpha_b", -0.1),
            ("beta", -1.0),
            ("beta_a", -0.5),
            ("aux_a_mode", "bogus"),
        ],
    )
    def test_invalid_values(self, field, value):
        with pytest.raises(ValueError):
            MGBRConfig(**{field: value})

    def test_replace_returns_new_config(self):
        base = MGBRConfig.small()
        other = base.replace(beta_a=0.5)
        assert other.beta_a == 0.5
        assert base.beta_a != 0.5 or base is not other

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            MGBRConfig.small().replace(d=-3)


class TestProfiles:
    def test_small_is_small(self):
        small = MGBRConfig.small()
        assert small.d < MGBRConfig.paper().d
        assert small.aux_negatives < 99

    def test_small_accepts_overrides(self):
        cfg = MGBRConfig.small(d=12, beta=2.0)
        assert cfg.d == 12 and cfg.beta == 2.0


class TestVariantConfigs:
    def test_all_variant_names(self):
        assert set(VARIANTS) == {
            "MGBR", "MGBR-M", "MGBR-R", "MGBR-M-R", "MGBR-G", "MGBR-D",
        }

    def test_m_removes_shared(self):
        assert not variant_config("MGBR-M").use_shared_experts
        assert variant_config("MGBR-M").use_aux_losses

    def test_r_removes_aux(self):
        assert not variant_config("MGBR-R").use_aux_losses
        assert variant_config("MGBR-R").use_shared_experts

    def test_m_r_removes_both(self):
        cfg = variant_config("MGBR-M-R")
        assert not cfg.use_shared_experts and not cfg.use_aux_losses

    def test_g_removes_adjusted_gates(self):
        assert not variant_config("MGBR-G").use_adjusted_gates

    def test_d_uses_hin(self):
        assert variant_config("MGBR-D").use_hin_views

    def test_full_model_has_everything(self):
        cfg = variant_config("MGBR")
        assert cfg.use_shared_experts and cfg.use_aux_losses
        assert cfg.use_adjusted_gates and not cfg.use_hin_views

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_config("MGBR-X")

    def test_base_config_carries_over(self):
        base = MGBRConfig.small(d=12)
        assert variant_config("MGBR-M", base).d == 12
