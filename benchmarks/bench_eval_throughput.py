"""Evaluation-throughput benchmark: planned/batched engines vs the loop.

Times the 1:9 and 1:99 candidate-list protocols for three engines —
the *planned* (ScoringPlan dedup + factorized layer-0)
:meth:`EvalProtocol.run`, the PR-1 flat batched path (``dedup=False``),
and the historical :meth:`EvalProtocol.run_per_instance` reference loop
(the seed implementation, kept verbatim) — plus the float32 inference
fast path, for both the full MGBR expert/gate stack and a serving-style
two-tower baseline (GBMF).  Also times candidate-list construction: one
batched rejection-sampling pass vs the seed's per-row Python sampling
loop.  Writes ``BENCH_eval_throughput.json`` at the repository root so
later PRs have a perf trajectory to regress against.

Regime note: with 1:9 lists the loop scores 10-row micro-batches, where
per-call overhead dominates and flat batching already wins big; with
1:99 lists each loop call processes 100 rows, so the flat engine is
compute-bound (~1.2-1.5×) and the win must come from cutting FLOPs —
which is what the plan's dedup + per-entity factorization does
(``dedup_speedup`` is planned vs flat-batched on identical lists).  For
models whose per-pair scoring is nearly free (GBMF's dot product at toy
scale) the plan's O(N log N) pair dedup can cost more than it saves —
those sub-millisecond ``dedup_speedup < 1`` cells are the documented
price of planning, not a regression of the model path.

Run directly (``PYTHONPATH=src python benchmarks/bench_eval_throughput.py``)
or via pytest.  ``--smoke`` runs a seconds-scale configuration and skips
the JSON artifact (for quick local verification).  Environment knobs:

* ``REPRO_BENCH_EVAL_USERS / ITEMS / GROUPS`` — dataset scale
* ``REPRO_BENCH_EVAL_INSTANCES`` — instances per task per protocol
* ``REPRO_BENCH_EVAL_FUSED_CHUNK / FUSED_PAIRS`` — fused-executor cell:
  scoring chunk size and number of interleaved tape/fused timing pairs
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.data import NegativeSampler, SyntheticConfig, generate_dataset
from repro.data.samples import extract_task_a, extract_task_b
from repro.eval import EvalProtocol
from repro.nn import ParallelBackend, backend_scope, no_grad
from repro.nn.backend import NumpyBackend
from repro.plan import ScoringPlan
from repro.training import TrainConfig, Trainer
from repro.training.checkpoint import restore_model, save_checkpoint

USERS = int(os.environ.get("REPRO_BENCH_EVAL_USERS", "300"))
ITEMS = int(os.environ.get("REPRO_BENCH_EVAL_ITEMS", "80"))
GROUPS = int(os.environ.get("REPRO_BENCH_EVAL_GROUPS", "1200"))
INSTANCES = int(os.environ.get("REPRO_BENCH_EVAL_INSTANCES", "120"))
FUSED_CHUNK = int(os.environ.get("REPRO_BENCH_EVAL_FUSED_CHUNK", "512"))
FUSED_PAIRS = int(os.environ.get("REPRO_BENCH_EVAL_FUSED_PAIRS", "11"))
DATA_SEED = 7
MODEL_SEED = 1

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_eval_throughput.json"


def _dataset():
    return generate_dataset(
        SyntheticConfig(n_users=USERS, n_items=ITEMS, n_groups=GROUPS), seed=DATA_SEED
    )


REPEATS = 3


def _timed(fn, repeats: int = None):
    repeats = REPEATS if repeats is None else repeats
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _sampling_per_row_reference(dataset, n_negatives: int) -> float:
    """Time the seed's per-row candidate-list sampling loops."""
    groups = dataset.test
    sampler = NegativeSampler(dataset, seed=123, splits=("train", "validation", "test"))
    task_a = extract_task_a(groups)
    task_b = extract_task_b(groups)
    a_idx = np.arange(len(task_a))[:INSTANCES]
    b_idx = np.arange(len(task_b))[:INSTANCES]
    started = time.perf_counter()
    a_negs = np.empty((len(a_idx), n_negatives), dtype=np.int64)
    for row in range(len(a_idx)):
        a_negs[row] = sampler.sample_items(
            int(task_a.users[row]), n_negatives,
            extra_exclude=(int(task_a.items[row]),),
        )
    b_negs = np.empty((len(b_idx), n_negatives), dtype=np.int64)
    for row in range(len(b_idx)):
        group = groups[int(task_b.group_index[b_idx[row]])]
        b_negs[row] = sampler.sample_participants(
            int(task_b.users[row]), int(task_b.items[row]), n_negatives,
            extra_exclude=group.participants,
        )
    return time.perf_counter() - started


def _bench_sampling(dataset, n_negatives: int) -> dict:
    loop_seconds = min(_sampling_per_row_reference(dataset, n_negatives) for _ in range(3))

    def batched():
        protocol = EvalProtocol(
            dataset, n_negatives=n_negatives, cutoff=10, max_instances=INSTANCES
        )
        return protocol._candidate_lists()

    _, batch_seconds = _timed(batched)  # fresh protocol per call → no cache reuse
    return {
        "per_row_seconds": round(loop_seconds, 4),
        "batched_seconds": round(batch_seconds, 4),
        "speedup": round(loop_seconds / batch_seconds, 2),
    }


def _dedup_stats(protocol) -> dict:
    """Plan statistics for the protocol's Task-A/B candidate lists."""
    task_a, task_b = protocol._candidate_lists()
    plan_a = ScoringPlan.for_items(task_a["users"], task_a["candidates"])
    plan_b = ScoringPlan.for_participants(
        task_b["users"], task_b["items"], task_b["candidates"]
    )
    return {"task_a": plan_a.stats(), "task_b": plan_b.stats()}


def _bench_model(name: str, model, dataset) -> dict:
    out = {}
    for n_neg, cutoff in ((9, 10), (99, 100)):
        flat_protocol = EvalProtocol(
            dataset, n_negatives=n_neg, cutoff=cutoff, max_instances=INSTANCES,
            dedup=False,
        )
        flat_protocol._candidate_lists()  # shared lists, excluded from timings
        n_instances = 2 * INSTANCES  # each run scores both tasks' lists

        def _variant(**overrides):
            protocol = EvalProtocol(
                dataset, n_negatives=n_neg, cutoff=cutoff, max_instances=INSTANCES,
                **overrides,
            )
            protocol._cache = flat_protocol._cache  # identical candidate lists
            return protocol

        planned_protocol = _variant(dedup=True)
        looped, loop_seconds = _timed(lambda: flat_protocol.run_per_instance(model))
        batched, batch_seconds = _timed(lambda: flat_protocol.run(model))
        planned, planned_seconds = _timed(lambda: planned_protocol.run(model))
        f32, f32_seconds = _timed(lambda: _variant(dtype="float32").run(model))

        out[f"1:{n_neg}"] = {
            "cutoff": cutoff,
            "per_instance_seconds": round(loop_seconds, 4),
            "batched_seconds": round(batch_seconds, 4),
            "planned_seconds": round(planned_seconds, 4),
            "float32_seconds": round(f32_seconds, 4),
            "per_instance_instances_per_sec": round(n_instances / loop_seconds, 2),
            "batched_instances_per_sec": round(n_instances / batch_seconds, 2),
            "planned_instances_per_sec": round(n_instances / planned_seconds, 2),
            "float32_instances_per_sec": round(n_instances / f32_seconds, 2),
            "speedup": round(loop_seconds / batch_seconds, 2),
            "planned_speedup": round(loop_seconds / planned_seconds, 2),
            # planned (dedup on) vs the PR-1 flat batched path — the
            # "break the 1:99 compute bound" headline number.
            "dedup_speedup": round(batch_seconds / planned_seconds, 2),
            "float32_speedup": round(loop_seconds / f32_seconds, 2),
            "dedup": _dedup_stats(flat_protocol),
            "metrics_identical_to_loop": batched.flat() == looped.flat(),
            "planned_metrics_identical_to_loop": planned.flat() == looped.flat(),
            "float32_max_metric_delta": round(
                max(abs(f32.flat()[k] - planned.flat()[k]) for k in planned.flat()), 6
            ),
            "metrics": planned.flat(),
        }
    return out


def _bench_fused(model, dataset) -> dict:
    """Fused no-tape executor vs the tape on 1:99 planned scoring.

    A single tape-vs-fused time comparison is unreliable on a shared
    box, so each repetition interleaves one full tape pass with one full
    fused pass (chunked planned scoring over both tasks' 1:99 lists,
    plan slicing excluded from the timed region) and the headline
    ``fused_speedup`` is the **median of per-repetition ratios** —
    co-tenant noise lands on both sides of each pair roughly equally.
    """
    protocol = EvalProtocol(
        dataset, n_negatives=99, cutoff=100, max_instances=INSTANCES
    )
    task_a, task_b = protocol._candidate_lists()
    plan_a = ScoringPlan.for_items(task_a["users"], task_a["candidates"])
    plan_b = ScoringPlan.for_participants(
        task_b["users"], task_b["items"], task_b["candidates"]
    )
    jobs = []
    for plan, scorer in (
        (plan_a, model.score_item_plan),
        (plan_b, model.score_participant_plan),
    ):
        subs = [
            plan.pair_slice(slice(start, min(start + FUSED_CHUNK, plan.n_pairs)))
            for start in range(0, plan.n_pairs, FUSED_CHUNK)
        ]
        jobs.append((scorer, subs))

    def one_pass(executor):
        model.executor = executor
        elapsed = 0.0
        scores = []
        with no_grad():
            model.refresh_cache()
            for scorer, subs in jobs:
                started = time.perf_counter()
                chunks = [scorer(sub) for sub in subs]
                elapsed += time.perf_counter() - started
                scores.append(np.concatenate(chunks))
        return scores, elapsed

    previous = model.executor
    try:
        tape_ref, _ = one_pass("tape")  # warm caches + parity reference
        fused_ref, _ = one_pass("fused")
        identical = all(np.array_equal(t, f) for t, f in zip(tape_ref, fused_ref))
        ratios, tape_times, fused_times = [], [], []
        for _ in range(FUSED_PAIRS):
            _, tape_seconds = one_pass("tape")
            _, fused_seconds = one_pass("fused")
            ratios.append(tape_seconds / fused_seconds)
            tape_times.append(tape_seconds)
            fused_times.append(fused_seconds)
        stats = model.executor_stats()
    finally:
        model.executor = previous
    n_pairs = plan_a.n_pairs + plan_b.n_pairs
    tape_best, fused_best = min(tape_times), min(fused_times)
    return {
        "chunk": FUSED_CHUNK,
        "paired_repeats": FUSED_PAIRS,
        "pairs_scored_per_pass": n_pairs,
        "tape_seconds": round(tape_best, 4),
        "fused_seconds": round(fused_best, 4),
        "tape_pairs_per_sec": round(n_pairs / tape_best, 1),
        "fused_pairs_per_sec": round(n_pairs / fused_best, 1),
        "fused_speedup": round(float(np.median(ratios)), 2),
        "fused_speedup_min": round(float(min(ratios)), 2),
        "fused_speedup_max": round(float(max(ratios)), 2),
        "scores_identical_to_tape": identical,
        "executor_stats": stats,
    }


def _bench_parallel(mgbr, gbmf, dataset) -> dict:
    """Parallel backend vs numpy on fused planned scoring (1:99 lists).

    Same interleaved-pair protocol as :func:`_bench_fused`: each
    repetition runs one full numpy pass and one full parallel pass over
    the MGBR 1:99 planned flush, and ``parallel_speedup`` is the median
    of per-repetition ratios.  Bit-parity is checked separately with a
    low-threshold backend so the chunked code paths execute even when
    the timed configuration stays serial (1-CPU containers).  The cell
    records ``cpu_count``/``n_threads`` so the gate can demand a win
    only where the hardware can deliver one.
    """
    protocol = EvalProtocol(
        dataset, n_negatives=99, cutoff=100, max_instances=INSTANCES
    )
    task_a, task_b = protocol._candidate_lists()
    plan_a = ScoringPlan.for_items(task_a["users"], task_a["candidates"])
    plan_b = ScoringPlan.for_participants(
        task_b["users"], task_b["items"], task_b["candidates"]
    )

    def one_pass(model, backend):
        previous = model.executor
        with no_grad(), backend_scope(backend):
            model.executor = "fused"
            try:
                model.refresh_cache()
                started = time.perf_counter()
                scores = [
                    np.array(model.score_item_plan(plan_a)),
                    np.array(model.score_participant_plan(plan_b)),
                ]
                elapsed = time.perf_counter() - started
            finally:
                model.executor = previous
        return scores, elapsed

    numpy_backend = NumpyBackend()
    # Timed configuration: default thread count (cpu-bound), threshold
    # low enough that the ~1e4-unique-pair 1:99 plans actually chunk.
    timed = ParallelBackend(min_parallel_rows=1024)
    # Parity configuration: forced chunking regardless of core count.
    forced = ParallelBackend(n_threads=4, min_parallel_rows=64)
    try:
        parity = {}
        for name, model in (("mgbr", mgbr), ("gbmf", gbmf)):
            reference, _ = one_pass(model, numpy_backend)
            chunked, _ = one_pass(model, forced)
            parity[name] = all(
                np.array_equal(r, c) for r, c in zip(reference, chunked)
            )
        one_pass(mgbr, timed)  # warm the pool + caches before timing
        ratios, numpy_times, parallel_times = [], [], []
        for _ in range(FUSED_PAIRS):
            _, numpy_seconds = one_pass(mgbr, numpy_backend)
            _, parallel_seconds = one_pass(mgbr, timed)
            ratios.append(numpy_seconds / parallel_seconds)
            numpy_times.append(numpy_seconds)
            parallel_times.append(parallel_seconds)
    finally:
        timed.close()
        forced.close()
    n_pairs = plan_a.n_pairs + plan_b.n_pairs
    numpy_best, parallel_best = min(numpy_times), min(parallel_times)
    return {
        "cpu_count": os.cpu_count(),
        "n_threads": timed.n_threads,
        "min_parallel_rows": timed.min_parallel_rows,
        "paired_repeats": FUSED_PAIRS,
        "pairs_scored_per_pass": n_pairs,
        "numpy_seconds": round(numpy_best, 4),
        "parallel_seconds": round(parallel_best, 4),
        "numpy_pairs_per_sec": round(n_pairs / numpy_best, 1),
        "parallel_pairs_per_sec": round(n_pairs / parallel_best, 1),
        "parallel_speedup": round(float(np.median(ratios)), 2),
        "parallel_speedup_min": round(float(min(ratios)), 2),
        "parallel_speedup_max": round(float(max(ratios)), 2),
        "mgbr_scores_identical": parity["mgbr"],
        "gbmf_scores_identical": parity["gbmf"],
    }


#: Documented accuracy bounds of quantised serving (max |Δ| over the
#: nDCG@K / MRR / HR@K panel vs the float baseline).  fp16 keeps 11
#: significand bits — score gaps between ranked candidates dwarf the
#: rounding, so metric *ordering* must be bitwise stable (Δ == 0).
#: int8 rounds each embedding element to within scale/2 (≈ row range /
#: 508); the induced metric drift on the Table-3-style synthetic
#: protocol stays within 0.05 absolute.
QUANT_METRIC_BOUNDS = {"fp16": 0.0, "int8": 0.05}

QUANT_DIM = 48  # dim >= 40 keeps int8's (dim+8)/4·dim under the 0.30 gate


def _bench_quantized_accuracy(dataset) -> dict:
    """Quantised serving accuracy: train float → restore into int8/fp16.

    The supported workflow (docs/quantization.md) is post-training
    quantisation: train the full-precision model, checkpoint it, restore
    into ``GBMF(quantize=...)`` layouts, and serve the same eval
    protocol.  Reports nDCG@K / MRR / HR@K deltas vs the float baseline
    plus the dequantise-on-gather QPS ratio per mode.
    """
    trained = GBMF(dataset.n_users, dataset.n_items, dim=QUANT_DIM, seed=MODEL_SEED)
    config = TrainConfig(
        epochs=1, batch_size=64, learning_rate=5e-3, train_negatives=3,
        aux_negatives=3, seed=0,
    )
    Trainer(trained, dataset, config).fit()
    protocol = EvalProtocol(
        dataset, n_negatives=9, cutoff=10, max_instances=INSTANCES
    )
    protocol._candidate_lists()  # one shared candidate cache for all modes
    gather_ids = np.arange(dataset.n_users, dtype=np.int64)
    out = {"dim": QUANT_DIM, "bounds": QUANT_METRIC_BOUNDS, "modes": {}}
    baseline = None
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(trained, Path(tmp) / "gbmf.npz", dtype="float32")
        for mode in (None, "fp16", "int8"):
            target = GBMF(dataset.n_users, dataset.n_items, dim=QUANT_DIM,
                          seed=MODEL_SEED + 1, quantize=mode)
            restore_model(target, path)
            metrics = protocol.run(target).flat()
            store = target.initiator_table.store

            def gather_pass():
                with no_grad():
                    for start in range(0, len(gather_ids), 512):
                        store.gather(gather_ids[start : start + 512])

            _, seconds = _timed(gather_pass)
            cell = {
                "metrics": metrics,
                "gather_rows_per_sec": round(len(gather_ids) / seconds, 1),
            }
            if baseline is None:
                baseline = cell
                out["modes"]["float32"] = cell
                continue
            cell["metric_deltas"] = {
                k: round(metrics[k] - baseline["metrics"][k], 6)
                for k in baseline["metrics"]
            }
            cell["max_abs_metric_delta"] = round(
                max(abs(d) for d in cell["metric_deltas"].values()), 6
            )
            cell["gather_qps_ratio_vs_float32"] = round(
                cell["gather_rows_per_sec"] / baseline["gather_rows_per_sec"], 3
            )
            out["modes"][mode] = cell
    return out


def run_benchmark() -> dict:
    """Measure both engines on the 1:9 and 1:99 protocols."""
    dataset = _dataset()
    mgbr = MGBR(
        dataset.train, dataset.n_users, dataset.n_items,
        config=MGBRConfig.small(d=16, seed=MODEL_SEED),
    )
    gbmf = GBMF(dataset.n_users, dataset.n_items, dim=16, seed=MODEL_SEED)
    return {
        "dataset": {"users": USERS, "items": ITEMS, "groups": GROUPS},
        "max_instances": INSTANCES,
        "candidate_sampling": {
            "1:9": _bench_sampling(dataset, 9),
            "1:99": _bench_sampling(dataset, 99),
        },
        "models": {
            "MGBR": _bench_model("MGBR", mgbr, dataset),
            "GBMF": _bench_model("GBMF", gbmf, dataset),
        },
        # Fused no-tape executor vs the tape on the MGBR 1:99 lists.
        "fused_executor": _bench_fused(mgbr, dataset),
        # Thread-parallel backend vs numpy on the same planned flushes.
        "parallel_backend": _bench_parallel(mgbr, gbmf, dataset),
        # int8/fp16 serving vs the float baseline on the same weights.
        "quantized_accuracy": _bench_quantized_accuracy(dataset),
    }


def test_eval_throughput():
    """Planned/batched scoring beats the loop; metrics bit-identical."""
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    for model, protocols in report["models"].items():
        for proto, stats in protocols.items():
            assert stats["metrics_identical_to_loop"], (
                f"{model} {proto}: batched metrics diverged from loop"
            )
            assert stats["planned_metrics_identical_to_loop"], (
                f"{model} {proto}: planned metrics diverged from loop"
            )
    mgbr_19 = report["models"]["MGBR"]["1:9"]
    assert mgbr_19["speedup"] >= 5.0, f"1:9 speedup {mgbr_19['speedup']}x < 5x"
    # The 1:99 flat path is compute-bound (~1.2-1.5×); the scoring plan
    # must break that bound by ≥2× via dedup + layer-0 factorization.
    mgbr_199 = report["models"]["MGBR"]["1:99"]
    assert mgbr_199["speedup"] >= 1.0, f"1:99 speedup {mgbr_199['speedup']}x < 1x"
    assert mgbr_199["dedup_speedup"] >= 2.0, (
        f"1:99 planned-vs-batched {mgbr_199['dedup_speedup']}x < 2x"
    )
    # The fused no-tape executor must be bit-identical to the tape and
    # beat it by ≥1.5× (median of interleaved paired repeats) on the
    # MGBR 1:99 planned-scoring cell.
    fused = report["fused_executor"]
    assert fused["scores_identical_to_tape"], (
        "fused executor scores diverged from the tape"
    )
    assert fused["fused_speedup"] >= 1.5, (
        f"fused-vs-tape median speedup {fused['fused_speedup']}x < 1.5x"
    )
    # The parallel backend must stay bit-identical to numpy on both
    # model families; the throughput demand is hardware-aware — a win
    # where ≥2 cores serve ≥2 threads, overhead ≤10% (via the row
    # threshold) where the pool is serialized anyway.
    par = report["parallel_backend"]
    assert par["mgbr_scores_identical"], (
        "parallel-backend MGBR scores diverged from numpy"
    )
    assert par["gbmf_scores_identical"], (
        "parallel-backend GBMF scores diverged from numpy"
    )
    if par["cpu_count"] >= 2 and par["n_threads"] >= 2:
        assert par["parallel_speedup"] > 1.0, (
            f"parallel backend {par['parallel_speedup']}x on "
            f"{par['cpu_count']} cpus — expected a win"
        )
    else:
        assert par["parallel_speedup"] >= 0.90, (
            f"parallel backend overhead >10% on 1 cpu "
            f"({par['parallel_speedup']}x)"
        )
    # Quantised serving accuracy: fp16 must not move any eval metric
    # (bitwise-stable ranking), int8 drift stays within the documented
    # bound, and both deltas land in the artifact as numbers.
    quant = report["quantized_accuracy"]
    for mode, bound in quant["bounds"].items():
        cell = quant["modes"][mode]
        assert cell["max_abs_metric_delta"] <= bound, (
            f"{mode} serving moved eval metrics by "
            f"{cell['max_abs_metric_delta']} (> {bound})"
        )
        assert isinstance(cell["gather_qps_ratio_vs_float32"], float)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (tiny dataset, 1 repeat); skips the JSON artifact",
    )
    args = parser.parse_args()
    if args.smoke:
        USERS, ITEMS, GROUPS, INSTANCES, REPEATS = 120, 40, 400, 40, 1
        FUSED_PAIRS = 2
    result = run_benchmark()
    if not args.smoke:
        OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
