"""Pluggable array backends for the autograd substrate.

Every array primitive the tape executes — arithmetic, matmuls,
transcendentals, reductions, gathers/scatters, shape ops — routes
through an :class:`ArrayBackend` so the :class:`repro.nn.tensor.Tensor`
graph machinery (parents, closures, ``_unbroadcast``) stays array-library
agnostic.  NumPy remains the reference backend; an accelerated backend
only has to implement these primitives to inherit the whole model zoo,
and the conformance lane in ``tests/test_nn_tensor.py`` runs every
op-level test against each registered backend.

Two backends ship:

* :class:`NumpyBackend` (``"numpy"``) — the reference semantics every
  other backend must reproduce bit-for-bit at float64.
* :class:`CountingBackend` (``"counting"``) — same numerics, but counts
  every primitive invocation and every *actual* array copy (a cast or
  layout fix that really allocated).  The copy-audit tests use it to
  assert the planned gather/scatter hot path performs **zero** redundant
  copies when dtype and layout already match.

The active backend is **thread-local** (like the grad-enabled flag and
the default dtype in :mod:`repro.nn.tensor`): enter
:func:`backend_scope` on the thread that does the math.

Copy elision
------------
:meth:`ArrayBackend.ensure_contiguous` is the sanctioned way to demand
"C-contiguous with this dtype": it returns the input *unchanged* when it
already qualifies and only copies otherwise.  The planned gather path
(store gathers, fold caches, ``_scatter_rows_add``) uses it instead of
unconditional ``ascontiguousarray``/``astype`` calls, which is what the
counting backend's zero-copy assertion pins down.
"""

from __future__ import annotations

import contextlib
import functools
import os
import threading
from typing import Callable, Dict, Optional, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "CountingBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_scope",
    "resolve_backend",
    "bind_backend",
    "BACKEND_ENV",
]

#: Environment override for the process-wide *default* backend
#: (mirroring ``REPRO_EXECUTOR``): every thread that has not entered a
#: ``backend_scope`` starts at the backend registered under this name.
#: Unknown or unregistered names fall back to the numpy reference — CI
#: keeps the non-default backend green by running the fast test lane
#: once with ``REPRO_BACKEND=parallel``.
BACKEND_ENV = "REPRO_BACKEND"


#: Primitive names a backend must provide (and the counting backend
#: instruments).  The tape calls nothing else on the array layer.
PRIMITIVES = (
    "asarray",
    "ensure_contiguous",
    "empty",
    "zeros",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "add",
    "subtract",
    "negative",
    "multiply",
    "divide",
    "power",
    "matmul",
    "exp",
    "log",
    "log1p",
    "sqrt",
    "absolute",
    "sign",
    "tanh",
    "maximum",
    "clip",
    "greater",
    "where",
    "sum",
    "amax",
    "reshape",
    "swapaxes",
    "expand_dims",
    "squeeze",
    "broadcast_to",
    "concatenate",
    "stack",
    "take",
    "add_at",
)


class ArrayBackend:
    """The primitive contract the tape and the fused executor rely on.

    Semantics are NumPy's exactly — a conforming backend must be
    bit-identical to :class:`NumpyBackend` at float64 (the conformance
    suite asserts this by running the full op/gradient test lane under
    every registered backend).  ``out=`` parameters follow NumPy rules:
    when given, the result is written in place and the buffer returned.
    """

    name = "abstract"

    # ------------------------------------------------------------------
    # Creation / coercion
    # ------------------------------------------------------------------
    def asarray(self, data, dtype=None):
        raise NotImplementedError

    def ensure_contiguous(self, arr, dtype=None):
        """``arr`` as C-contiguous ``dtype``; no copy when already so."""
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The reference backend: thin, allocation-transparent NumPy calls."""

    name = "numpy"

    # -- creation / coercion -------------------------------------------
    def asarray(self, data, dtype=None):
        return np.asarray(data, dtype=dtype)

    def ensure_contiguous(self, arr, dtype=None):
        arr = np.asarray(arr)
        want = arr.dtype if dtype is None else np.dtype(dtype)
        if arr.dtype == want and arr.flags["C_CONTIGUOUS"]:
            return arr
        return np.ascontiguousarray(arr, dtype=want)

    def empty(self, shape, dtype=None):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype=None):
        return np.ones(shape, dtype=dtype)

    def full(self, shape, value, dtype=None):
        return np.full(shape, value, dtype=dtype)

    def zeros_like(self, arr):
        return np.zeros_like(arr)

    def empty_like(self, arr, dtype=None):
        return np.empty_like(arr, dtype=dtype)

    # -- arithmetic -----------------------------------------------------
    def add(self, a, b, out=None):
        return np.add(a, b, out=out) if out is not None else a + b

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out) if out is not None else a - b

    def negative(self, a, out=None):
        return np.negative(a, out=out) if out is not None else -a

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out) if out is not None else a * b

    def divide(self, a, b, out=None):
        return np.divide(a, b, out=out) if out is not None else a / b

    def power(self, a, exponent):
        return a**exponent

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out) if out is not None else a @ b

    # -- transcendental / elementwise ----------------------------------
    def exp(self, a, out=None):
        return np.exp(a, out=out) if out is not None else np.exp(a)

    def log(self, a):
        return np.log(a)

    def log1p(self, a):
        return np.log1p(a)

    def sqrt(self, a):
        return np.sqrt(a)

    def absolute(self, a):
        return np.abs(a)

    def sign(self, a):
        return np.sign(a)

    def tanh(self, a):
        return np.tanh(a)

    def maximum(self, a, b, out=None):
        return np.maximum(a, b, out=out) if out is not None else np.maximum(a, b)

    def clip(self, a, low, high):
        return np.clip(a, low, high)

    def greater(self, a, b):
        return a > b

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    # -- reductions -----------------------------------------------------
    def sum(self, a, axis=None, keepdims=False, out=None):
        if out is not None:
            return np.sum(a, axis=axis, keepdims=keepdims, out=out)
        return a.sum(axis=axis, keepdims=keepdims)

    def amax(self, a, axis=None, keepdims=False):
        return a.max(axis=axis, keepdims=keepdims)

    # -- shape ----------------------------------------------------------
    def reshape(self, a, shape):
        return a.reshape(shape)

    def swapaxes(self, a, axis0, axis1):
        return np.swapaxes(a, axis0, axis1)

    def expand_dims(self, a, axis):
        return np.expand_dims(a, axis)

    def squeeze(self, a, axis):
        return np.squeeze(a, axis=axis)

    def broadcast_to(self, a, shape):
        return np.broadcast_to(a, shape)

    # -- assembly / indexing -------------------------------------------
    def concatenate(self, arrays, axis=0, out=None):
        if out is not None:
            return np.concatenate(arrays, axis=axis, out=out)
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis=0, out=None):
        if out is not None:
            return np.stack(arrays, axis=axis, out=out)
        return np.stack(arrays, axis=axis)

    def take(self, a, index, out=None):
        """Row gather ``a[index]`` along axis 0.

        The ``out=`` form assumes **in-range** indices (the planned path
        validates ids at request admission): ``mode="clip"`` skips
        NumPy's bounds-checked buffered gather — about 3x faster — and
        is bit-identical to ``a[index]`` for valid indices.
        """
        if out is not None:
            return a.take(index, axis=0, out=out, mode="clip")
        return a[index]

    def add_at(self, a, index, values):
        """In-place unbuffered ``a[index] += values`` (NumPy ``add.at``)."""
        np.add.at(a, index, values)
        return a


class CountingBackend(NumpyBackend):
    """Instrumented reference backend: per-primitive call and copy counts.

    ``counts`` maps primitive name → invocations; ``copies`` counts only
    *actual* allocations performed by the coercion primitives
    (``asarray`` / ``ensure_contiguous`` returning a new array object).
    Numerics are the reference backend's exactly, so the conformance
    lane runs the full op tests under it for free.
    """

    name = "counting"

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.copies = 0
        for prim in PRIMITIVES:
            base = getattr(NumpyBackend, prim)
            # asarray / ensure_contiguous get dedicated copy-tracking
            # wrappers below; everything else just counts invocations.
            if prim in ("asarray", "ensure_contiguous"):
                continue
            setattr(self, prim, self._counted(prim, base))

    def _counted(self, name, fn):
        def wrapper(*args, **kwargs):
            self.counts[name] = self.counts.get(name, 0) + 1
            return fn(self, *args, **kwargs)

        return wrapper

    def _note(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1

    def asarray(self, data, dtype=None):
        self._note("asarray")
        out = NumpyBackend.asarray(self, data, dtype)
        if isinstance(data, np.ndarray) and out is not data:
            self.copies += 1
        return out

    def ensure_contiguous(self, arr, dtype=None):
        self._note("ensure_contiguous")
        out = NumpyBackend.ensure_contiguous(self, arr, dtype)
        if isinstance(arr, np.ndarray) and out is not arr:
            self.copies += 1
        return out

    def reset(self) -> None:
        """Zero all counters (tests call this between phases)."""
        self.counts.clear()
        self.copies = 0


# ----------------------------------------------------------------------
# Registry + thread-local selection
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ArrayBackend] = {}
_DEFAULT = NumpyBackend()


def _default_backend() -> ArrayBackend:
    """The backend fresh threads start at: ``REPRO_BACKEND`` or numpy."""
    name = os.environ.get(BACKEND_ENV)
    if name:
        backend = _REGISTRY.get(name)
        if backend is not None:
            return backend
    return _DEFAULT


class _BackendState(threading.local):
    """Per-thread active backend (each thread starts at the env default)."""

    def __init__(self) -> None:
        self.backend: ArrayBackend = _default_backend()


_STATE = _BackendState()


def refresh_default_backend() -> None:
    """Re-resolve the env default for the *calling* thread.

    Backends registered after this module imported (``repro.nn.parallel``
    does so at package import) call this so the importing thread honours
    ``REPRO_BACKEND`` too; threads spawned later resolve it lazily in
    :class:`_BackendState`.  A thread already inside a ``backend_scope``
    is left alone.
    """
    if _STATE.backend is _DEFAULT:
        _STATE.backend = _default_backend()


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Add ``backend`` to the registry under its ``name`` (idempotent)."""
    if not getattr(backend, "name", None) or backend.name == "abstract":
        raise ValueError("backend needs a concrete, non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends():
    """Registered backend names (the conformance lane parametrizes these)."""
    return sorted(_REGISTRY)


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """The calling thread's active backend, or a registered one by name."""
    if name is None:
        return _STATE.backend
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered: {available_backends()}"
        ) from None


def resolve_backend(
    mode: Union[str, ArrayBackend] = "auto",
    inherited: Optional[ArrayBackend] = None,
) -> ArrayBackend:
    """Resolve a ``backend`` knob to a concrete :class:`ArrayBackend`.

    Mirrors :func:`repro.executor.resolve_executor`: a registered name
    (or an explicit instance) wins outright; ``"auto"`` defers to
    ``inherited`` — the backend the *submitting* thread was using, which
    pool-spawning callers capture at submission — and otherwise to the
    calling thread's active backend (itself seeded from the
    ``REPRO_BACKEND`` environment default).
    """
    if isinstance(mode, ArrayBackend):
        return mode
    if mode == "auto":
        return inherited if inherited is not None else _STATE.backend
    return get_backend(mode)


def bind_backend(
    fn: Callable, backend: Optional[ArrayBackend] = None
) -> Callable:
    """``fn`` wrapped to run under ``backend`` (default: the caller's).

    The thread-local active backend does **not** cross thread spawns: a
    pool worker starts at the process default, silently dropping
    whatever ``backend_scope`` the submitting thread was inside.  Every
    pool-task submission (the serving engine's worker, the parallel
    backend's chunk tasks) therefore wraps its callable here — the
    submitting thread's backend is captured *now* and installed around
    each invocation in the worker.
    """
    resolved = backend if backend is not None else _STATE.backend

    @functools.wraps(fn)
    def bound(*args, **kwargs):
        with backend_scope(resolved):
            return fn(*args, **kwargs)

    return bound


@contextlib.contextmanager
def backend_scope(backend: Union[str, ArrayBackend]):
    """Temporarily switch this thread's active array backend."""
    resolved = get_backend(backend) if isinstance(backend, str) else backend
    if not isinstance(resolved, ArrayBackend):
        raise TypeError(f"need an ArrayBackend or a registered name, got {backend!r}")
    previous = _STATE.backend
    _STATE.backend = resolved
    try:
        yield resolved
    finally:
        _STATE.backend = previous


register_backend(_DEFAULT)
register_backend(CountingBackend())
