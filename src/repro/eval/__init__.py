"""``repro.eval`` — ranking metrics, candidate-list protocols, case study.

Implements the paper's evaluation exactly: MRR@N/NDCG@N over 1:9
(``@10``) and 1:99 (``@100``) candidate lists for both sub-tasks
(Sec. III-D), plus the PCA embedding case study behind Fig. 6.
"""

from repro.eval.casestudy import GroupEmbeddingStudy, pca_project, run_case_study
from repro.eval.metrics import (
    RankingAccumulator,
    hit,
    ndcg,
    rank_of_positive,
    ranks_of_positives,
    reciprocal_rank,
)
from repro.eval.protocol import EvalProtocol, EvalResult, evaluate_model
from repro.eval.significance import BootstrapResult, collect_ranks, paired_bootstrap

__all__ = [
    "rank_of_positive",
    "ranks_of_positives",
    "reciprocal_rank",
    "ndcg",
    "hit",
    "RankingAccumulator",
    "EvalProtocol",
    "EvalResult",
    "evaluate_model",
    "pca_project",
    "run_case_study",
    "GroupEmbeddingStudy",
    "paired_bootstrap",
    "collect_ranks",
    "BootstrapResult",
]
