"""Finite-difference gradient verification.

Because the whole training stack rests on the hand-written adjoints in
:mod:`repro.nn.tensor` and :mod:`repro.nn.functional`, the test suite
checks every operation against central finite differences.  ``float64``
tensors make a tolerance of ``1e-5`` comfortably achievable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn: function mapping tensors to a tensor (any shape; implicitly summed).
    inputs: argument tensors; only ``inputs[index]`` is perturbed.
    index: which argument to differentiate.
    eps: perturbation half-width.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for k in range(flat.size):
        original = flat[k]
        flat[k] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[k] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[k] = original
        grad_flat[k] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Assert analytic gradients match finite differences for all inputs.

    Raises ``AssertionError`` with the worst offender on failure; returns
    ``True`` on success so it can sit inside ``assert gradcheck(...)``.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
