"""The MGBR model (paper Sec. II) assembled from its three modules.

Pipeline per scored sample (Fig. 2):

1. **Multi-view embedding learning** — three GCNs (or one HIN GCN under
   MGBR-D) produce ``e_u, e_i, e_p ∈ R^{2d}`` for every entity.
2. **Multi-task learning** — the expert/gate stack maps
   ``e_u || e_i || e_p`` to task representations ``g^L_A, g^L_B``.
3. **Prediction** — ``s(i|u) = σ(MLP_A(g^L_A))`` and
   ``s(p|u,i) = σ(MLP_B(g^L_B))``.

Task A's participant slot: the paper averages *all* users' participant
embeddings (Sec. II-E); the auxiliary losses instead pass the concrete
participant of the triple (Sec. II-G) via ``participants=...``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender, bundle_rows
from repro.core.config import MGBRConfig
from repro.core.fused import fused_planned_scores
from repro.core.mtl import MultiTaskModule
from repro.core.prediction import PredictionHead
from repro.core.views import HINEmbedding, MultiViewEmbedding
from repro.nn import functional as F
from repro.nn.tensor import Tensor, concat, zeros
from repro.plan import ScoringPlan
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["MGBR"]


class MGBR(GroupBuyingRecommender):
    """Multi-task learning based Group Buying Recommendation model.

    Parameters
    ----------
    groups: training deal groups (the graphs are built from these only —
        validation/test interactions never leak into the views).
    n_users / n_items: entity-space sizes.
    config: hyper-parameters; ablation switches select the variants.
    seed: initialisation seed (overrides ``config.seed`` when given).
    """

    def __init__(
        self,
        groups: Sequence,
        n_users: int,
        n_items: int,
        config: Optional[MGBRConfig] = None,
        seed: Optional[SeedLike] = None,
    ) -> None:
        super().__init__(n_users, n_items)
        self.config = config or MGBRConfig()
        root_seed = self.config.seed if seed is None else seed
        rngs = spawn_rngs(root_seed, 4)

        if self.config.use_hin_views:
            self.encoder = HINEmbedding(
                groups, n_users, n_items,
                dim=self.config.d,
                n_layers=self.config.gcn_layers,
                feature_std=self.config.feature_std,
                seed=rngs[0],
                gain=self.config.gcn_gain,
                n_shards=self.config.embedding_shards,
                partition=self.config.embedding_partition,
                service=self.config.embedding_service,
                quantize=self.config.embedding_quantize,
            )
        else:
            self.encoder = MultiViewEmbedding.from_groups(
                groups, n_users, n_items,
                dim=self.config.d,
                n_layers=self.config.gcn_layers,
                feature_std=self.config.feature_std,
                seed=rngs[0],
                include_participant_edges=self.config.include_participant_edges,
                gain=self.config.gcn_gain,
                n_shards=self.config.embedding_shards,
                partition=self.config.embedding_partition,
                service=self.config.embedding_service,
                quantize=self.config.embedding_quantize,
            )
        self.mtl = MultiTaskModule(self.config, seed=rngs[1])
        self.head_a = PredictionHead(self.config.d, self.config.mlp_hidden, seed=rngs[2])
        self.head_b = PredictionHead(self.config.d, self.config.mlp_hidden, seed=rngs[3])

    # ------------------------------------------------------------------
    # Encoder
    # ------------------------------------------------------------------
    def compute_embeddings(self) -> EmbeddingBundle:
        """Run the (multi-view or HIN) GCN encoder over all entities."""
        return self.encoder()

    # ------------------------------------------------------------------
    # Gate forward shared by both heads
    # ------------------------------------------------------------------
    def _gates(
        self,
        emb: EmbeddingBundle,
        users,
        items,
        participants=None,
    ):
        """Gather object embeddings and run the MTL stack.

        ``participants=None`` triggers Task A's convention: ``e_p`` is
        the average of all users' participant-role embeddings.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        e_u = bundle_rows(emb.user, users)
        e_i = bundle_rows(emb.item, items)
        if participants is None:
            mean_p = emb.mean_participant()       # (1, 2d), cached per bundle
            e_p = mean_p + zeros(len(users), 1)   # broadcast to batch
        else:
            e_p = bundle_rows(emb.participant, np.asarray(participants, dtype=np.int64))
        return self.mtl(e_u, e_i, e_p)

    # ------------------------------------------------------------------
    # Scoring (GroupBuyingRecommender interface + aux-loss extensions)
    # ------------------------------------------------------------------
    def score_items_from(
        self,
        emb: EmbeddingBundle,
        users,
        items,
        participants=None,
        raw: bool = False,
    ) -> Tensor:
        """Task A score ``s(i|u)`` (Eq. 16) → ``(batch,)``.

        ``participants`` overrides the averaged ``e_p`` (used by the
        auxiliary losses, Eq. 20's ``s(u,i,p)``); ``raw=True`` returns
        logits instead of σ-probabilities.
        """
        g_a, _ = self._gates(emb, users, items, participants)
        logits = self.head_a(g_a)
        return logits if raw else F.sigmoid(logits)

    def score_participants_from(
        self,
        emb: EmbeddingBundle,
        users,
        items,
        participants,
        raw: bool = False,
    ) -> Tensor:
        """Task B score ``s(p|u,i)`` (Eq. 17) → ``(batch,)``."""
        _, g_b = self._gates(emb, users, items, participants)
        logits = self.head_b(g_b)
        return logits if raw else F.sigmoid(logits)

    # ------------------------------------------------------------------
    # Planned (deduplicated + factorized) scoring
    # ------------------------------------------------------------------
    def _planned_entities(self, emb: EmbeddingBundle, plan: ScoringPlan):
        """Gather a plan's unique-entity rows → ``(e_u, e_i, e_p, part_pos)``.

        Shared by the tape and fused executors, so store statistics, the
        hot-row LRU and the plan's cached shard maps behave identically
        on both paths.  The participant slot handles all three plan
        shapes:

        * pair plans (no participant column): Task A's averaged
          participant is a single shared row — the broadcast ``e_p`` of
          the dense path collapses to one entity;
        * pure triple plans: one row per unique participant;
        * mixed plans carrying the :attr:`mean_participant_id` sentinel
          (the trainer's :class:`repro.plan.PlannedBatch` folds Task-A
          pair requests and auxiliary corruption triples together): the
          sentinel sorts last in ``unique_participants``, so its row is
          substituted with the mean-participant embedding.
        """
        e_u = bundle_rows(emb.user, plan.unique_users, plan=plan, role="users")
        e_i = bundle_rows(emb.item, plan.unique_items, plan=plan, role="items")
        if plan.participants is None:
            e_p = emb.mean_participant()  # (1, 2d), cached across chunks
            part_pos = np.zeros(plan.n_pairs, dtype=np.int64)
        else:
            uniq_p = plan.unique_participants
            part_pos = plan.part_pos
            if len(uniq_p) and uniq_p[-1] == self.mean_participant_id:
                # The sentinel is not a table row, so this gather cannot
                # reuse the plan's cached "participants" shard map.
                real = uniq_p[:-1]
                mean_p = emb.mean_participant()
                if len(real):
                    e_p = concat(
                        [bundle_rows(emb.participant, real), mean_p], axis=0
                    )
                else:
                    e_p = mean_p
            else:
                e_p = bundle_rows(
                    emb.participant, uniq_p, plan=plan, role="participants"
                )
        return e_u, e_i, e_p, part_pos

    def _planned_towers(self, emb: EmbeddingBundle, plan: ScoringPlan):
        """Run the factorized stack over a plan → ``(g^L_A, g^L_B)``.

        Layer-0 partial projections are computed once per unique user /
        item / participant (:meth:`repro.core.mtl.MultiTaskModule
        .forward_planned`).

        Built entirely from autograd ops — called with a live training
        ``emb`` the towers back-propagate through the gathers and
        partial projections into the encoder.
        """
        e_u, e_i, e_p, part_pos = self._planned_entities(emb, plan)
        return self.mtl.forward_planned(
            e_u, e_i, e_p, plan.user_pos, plan.item_pos, part_pos
        )

    def _fused_score_plan(self, emb: EmbeddingBundle, plan: ScoringPlan, task: str):
        """Fused no-tape planned logits, or ``None`` to use the tape.

        Only taken when the planned hooks are un-overridden — a subclass
        customising ``_planned_towers`` or a score hook would otherwise
        silently diverge from what the fused mirror computes.
        """
        base = MGBR
        if type(self)._planned_towers is not base._planned_towers:
            return None
        if type(self)._planned_entities is not base._planned_entities:
            return None
        hook = "_score_item_plan" if task == "items" else "_score_participant_plan"
        if getattr(type(self), hook) is not getattr(base, hook):
            return None
        return fused_planned_scores(self, emb, plan, task)

    def _score_item_plan(self, emb: EmbeddingBundle, plan: ScoringPlan) -> Tensor:
        """Task-A raw logits for a plan's unique requests (factorized)."""
        g_a, _ = self._planned_towers(emb, plan)
        return self.head_a(g_a)

    def _score_participant_plan(self, emb: EmbeddingBundle, plan: ScoringPlan) -> Tensor:
        """Task-B raw logits for a plan's unique (u, i, p) requests."""
        _, g_b = self._planned_towers(emb, plan)
        return self.head_b(g_b)

    def planned_joint_logits(self, emb: EmbeddingBundle, plan: ScoringPlan):
        """Both heads' raw logits over one plan → ``(logits_a, logits_b)``.

        The expert/gate stack always computes both towers, so a trainer
        that folds *both* tasks' positives, negatives and auxiliary
        corruptions into one :class:`repro.plan.PlannedBatch` gets the
        second head's scores for just an extra MLP pass — and the
        item-corrupted triples shared by ``L'_A`` and ``L'_B`` (Eq. 21
        and 24 corrupt the same ``(u, i', p)`` set) are scored once.
        """
        g_a, g_b = self._planned_towers(emb, plan)
        return self.head_a(g_a), self.head_b(g_b)

    @property
    def scoring_cost_hint(self) -> float:
        """Model-cost term of the ``dedup="auto"`` heuristic.

        ≈ dense layer-0 FLOPs per request row over the planned path's
        per-row combine cost: the 12d/18d-wide expert and gate linears
        against the K·d gather-adds work out to roughly ``4d`` (see
        docs/training.md) — far above the planning threshold for any
        usable embedding width, which is the point: the stack always
        plans, dot-product scorers never accidentally do.
        """
        return float(4 * self.config.d)

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @property
    def supports_aux_losses(self) -> bool:
        """Whether the trainer should attach ``L'_A``/``L'_B`` (Sec. II-G)."""
        return self.config.use_aux_losses
