"""``repro.baselines`` — the six comparison models of Table III.

All were re-implemented on the NumPy substrate and tailored to the two
group-buying sub-tasks exactly as the paper describes (Sec. III-B):
Task A is ordinary item scoring; Task B scores a candidate participant
by the inner product of the participant's and initiator's user
representations (role-specific ones where the model has them).
"""

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.baselines.deepmf import DeepMF
from repro.baselines.diffnet import DiffNet
from repro.baselines.eatnn import EATNN
from repro.baselines.gbgcn import GBGCN
from repro.baselines.gbmf import GBMF
from repro.baselines.ngcf import NGCF

__all__ = [
    "GroupBuyingRecommender",
    "EmbeddingBundle",
    "DeepMF",
    "NGCF",
    "DiffNet",
    "EATNN",
    "GBGCN",
    "GBMF",
]
