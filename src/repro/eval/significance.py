"""Paired bootstrap significance testing for ranking metrics.

Given two models evaluated on *identical* candidate lists (the protocol
guarantees this), each test instance yields a paired (rank_A, rank_B).
The paired bootstrap resamples instances with replacement and reports
how often model A's mean metric beats model B's — the standard IR-style
significance check for claims like Table III's "MGBR improves Task B by
71.65%".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.eval.metrics import ndcg, reciprocal_rank
from repro.utils.rng import SeedLike, as_rng

__all__ = ["BootstrapResult", "paired_bootstrap", "collect_ranks"]


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison (A vs B)."""

    mean_a: float
    mean_b: float
    delta: float
    p_value: float
    n_instances: int
    n_resamples: int

    @property
    def significant(self) -> bool:
        """Conventional α = 0.05 call on the one-sided test."""
        return self.p_value < 0.05


def paired_bootstrap(
    ranks_a: Sequence[int],
    ranks_b: Sequence[int],
    cutoff: int = 10,
    metric: str = "mrr",
    n_resamples: int = 2000,
    seed: SeedLike = 0,
) -> BootstrapResult:
    """One-sided paired bootstrap: is A's mean metric > B's?

    Parameters
    ----------
    ranks_a / ranks_b: per-instance positive ranks, paired by index.
    cutoff: metric truncation (@10 or @100).
    metric: "mrr" or "ndcg".
    n_resamples: bootstrap iterations.
    seed: resampling RNG.

    Returns
    -------
    BootstrapResult with ``p_value`` = fraction of resamples where A does
    *not* beat B (small = significant superiority of A).
    """
    a = np.asarray(ranks_a, dtype=np.int64)
    b = np.asarray(ranks_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("ranks must be equal-length non-empty 1-D sequences")
    fns: dict[str, Callable[[int, int], float]] = {"mrr": reciprocal_rank, "ndcg": ndcg}
    if metric not in fns:
        raise ValueError(f"metric must be one of {sorted(fns)}, got {metric!r}")
    fn = fns[metric]
    per_a = np.array([fn(int(r), cutoff) for r in a])
    per_b = np.array([fn(int(r), cutoff) for r in b])

    rng = as_rng(seed)
    n = a.size
    not_better = 0
    for _ in range(n_resamples):
        idx = rng.integers(0, n, n)
        if per_a[idx].mean() <= per_b[idx].mean():
            not_better += 1
    return BootstrapResult(
        mean_a=float(per_a.mean()),
        mean_b=float(per_b.mean()),
        delta=float(per_a.mean() - per_b.mean()),
        p_value=not_better / n_resamples,
        n_instances=n,
        n_resamples=n_resamples,
    )


def collect_ranks(model, protocol, task: str = "a") -> np.ndarray:
    """Per-instance positive ranks of ``model`` under ``protocol``.

    Uses the protocol's batched scoring path (one encoder pass, chunked
    candidate-matrix model calls, vectorised ranking).

    Parameters
    ----------
    model: a GroupBuyingRecommender.
    protocol: an :class:`repro.eval.protocol.EvalProtocol`.
    task: "a" or "b".
    """
    from repro.eval.metrics import ranks_of_positives
    from repro.nn.tensor import dtype_scope, no_grad

    if task not in ("a", "b"):
        raise ValueError(f"task must be 'a' or 'b', got {task!r}")
    model.eval()
    try:
        with no_grad(), dtype_scope(protocol.dtype):
            if hasattr(model, "refresh_cache"):
                model.refresh_cache()
            lists_a, lists_b = protocol._candidate_lists()
            if task == "a":
                scores = protocol._score_task_a(model, lists_a)
            else:
                scores = protocol._score_task_b(model, lists_b)
    finally:
        if protocol.dtype != "float64" and hasattr(model, "invalidate_cache"):
            model.invalidate_cache()
    return ranks_of_positives(scores)
