"""Sharded embedding storage (ROADMAP "sharded embedding tables").

Public surface:

* :class:`EmbeddingStore` — the storage contract behind
  :class:`repro.nn.layers.Embedding`;
* :class:`DenseStore` — the single-table layout (default);
* :class:`ShardedStore` — rows hash/range-partitioned across N
  in-process shard workers, gathered once per shard per planned call;
* :class:`ProcessShardedStore` — the same partitioning with each shard
  owned by a **worker process**, answering gathers over shared-memory
  row buffers (the cross-process shard service, see
  :mod:`repro.store.service`);
* :class:`LRUCachedStore` / :func:`cache_hot_rows` — hot-row LRU cache
  decorating any store (serving's skewed id streams hit it instead of
  the shard machinery);
* :class:`Partitioner` / :class:`ShardMap` — id→shard assignment and
  compiled per-shard gather plans (also cached on scoring plans);
* :func:`make_store` — layout factory used by the layer constructors;
* :func:`iter_stores` — find store-backed embeddings in a module tree.
"""

from __future__ import annotations

import numpy as np

from repro.store.base import EmbeddingStore, Partitioner, ShardMap, iter_stores
from repro.store.dense import DenseStore
from repro.store.lru import LRUCachedStore, cache_hot_rows
from repro.store.service import ProcessShardedStore, RemoteShardParameter
from repro.store.sharded import ShardedStore

__all__ = [
    "EmbeddingStore",
    "DenseStore",
    "ShardedStore",
    "ProcessShardedStore",
    "RemoteShardParameter",
    "LRUCachedStore",
    "Partitioner",
    "ShardMap",
    "iter_stores",
    "cache_hot_rows",
    "make_store",
]


def make_store(
    values: np.ndarray,
    n_shards: int = 0,
    partition: str = "range",
    service: bool = False,
) -> EmbeddingStore:
    """Build the layout for an initial table: dense unless ``n_shards >= 2``.

    ``n_shards`` of 0 or 1 keeps the single-table :class:`DenseStore`
    (bit-for-bit the historical behaviour); 2+ partitions the same
    initial values across a :class:`ShardedStore`, so any layout built
    from one init array scores identically.  ``service=True`` moves the
    shards into worker *processes* (:class:`ProcessShardedStore`) —
    same contract, same bits, rows owned and gathered outside the GIL
    (one worker when ``n_shards`` is 0/1).
    """
    if n_shards < 0:
        raise ValueError(f"n_shards must be >= 0, got {n_shards}")
    if service:
        return ProcessShardedStore(values, max(n_shards, 1), partition)
    if n_shards <= 1:
        return DenseStore(values)
    return ShardedStore(values, n_shards, partition)
