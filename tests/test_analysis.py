"""Tests for the analysis package: params, timing, sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    count_parameters,
    format_param_table,
    parameter_breakdown,
    time_training_epoch,
)
from repro.analysis.sweeps import SweepPoint, SweepResult, run_sweep
from repro.baselines import GBMF
from repro.core import MGBRConfig
from repro.training import TrainConfig


class TestParams:
    def test_count_matches_module(self, tiny_mgbr):
        assert count_parameters(tiny_mgbr) == tiny_mgbr.num_parameters()

    def test_breakdown_sums_to_total(self, tiny_mgbr):
        breakdown = parameter_breakdown(tiny_mgbr, depth=1)
        assert sum(breakdown.values()) == tiny_mgbr.num_parameters()

    def test_breakdown_top_level_components(self, tiny_mgbr):
        breakdown = parameter_breakdown(tiny_mgbr, depth=1)
        assert {"encoder", "mtl", "head_a", "head_b"} <= set(breakdown)

    def test_breakdown_depth2_finer(self, tiny_mgbr):
        d1 = parameter_breakdown(tiny_mgbr, depth=1)
        d2 = parameter_breakdown(tiny_mgbr, depth=2)
        assert len(d2) > len(d1)
        assert sum(d2.values()) == sum(d1.values())

    def test_invalid_depth(self, tiny_mgbr):
        with pytest.raises(ValueError):
            parameter_breakdown(tiny_mgbr, depth=0)

    def test_format_table(self):
        text = format_param_table({"a": 10, "b": 200}, title="T")
        assert "T" in text and "TOTAL" in text and "210" in text


class TestTiming:
    def test_timing_runs_and_reports(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        timing = time_training_epoch(
            model, tiny_dataset,
            TrainConfig(epochs=1, batch_size=64, train_negatives=2, seed=0),
            n_epochs=1,
        )
        assert timing.seconds_per_epoch > 0
        assert timing.minutes_per_epoch == pytest.approx(timing.seconds_per_epoch / 60)
        assert timing.model_name == "GBMF"
        assert timing.n_parameters == model.num_parameters()

    def test_invalid_epochs(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        with pytest.raises(ValueError):
            time_training_epoch(model, tiny_dataset, n_epochs=0)


class TestSweepResult:
    def _result(self):
        result = SweepResult(parameter="beta_a")
        result.points = [
            SweepPoint(0.1, {"B/MRR@10": 0.3}),
            SweepPoint(0.3, {"B/MRR@10": 0.5}),
            SweepPoint(0.5, {"B/MRR@10": 0.4}),
        ]
        return result

    def test_series_and_values(self):
        result = self._result()
        assert result.values() == [0.1, 0.3, 0.5]
        assert result.series("B/MRR@10") == [0.3, 0.5, 0.4]

    def test_best(self):
        assert self._result().best("B/MRR@10").value == 0.3


class TestRunSweep:
    def test_two_point_sweep_executes(self, tiny_dataset):
        base = MGBRConfig.small(
            d=8, n_experts=2, mtl_layers=1, aux_negatives=2, train_negatives=2,
            learning_rate=5e-3, seed=0,
        )
        result = run_sweep(
            "beta_a", [0.1, 0.3], tiny_dataset, base,
            epochs=1, eval_max_instances=5, tie_parameters=("beta_b",),
        )
        assert len(result.points) == 2
        assert all("B/MRR@10" in p.metrics for p in result.points)
        assert result.values() == [0.1, 0.3]
