"""Tests for the asynchronous serving engine (repro.serving.engine)."""

import json
import threading
import time

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.serving import RequestBatcher, ServingEngine
from repro.store import cache_hot_rows


class _BoomGBMF(GBMF):
    """Task-A planned scoring always fails (failure-isolation tests)."""

    def score_item_plan(self, plan):
        raise ValueError("kaboom: item scorer exploded")


class _WrongShapeGBMF(GBMF):
    """Returns a wrong-length score vector — only the scatter catches it."""

    def score_item_plan(self, plan):
        return np.zeros(plan.n_pairs + 1)


class _DoubleBoomGBMF(_BoomGBMF):
    """Both tasks' planned scoring fails in the same flush."""

    def score_participant_plan(self, plan):
        raise ValueError("kaboom: participant scorer exploded")


@pytest.fixture()
def gbmf(tiny_dataset):
    return GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)


class TestLifecycle:
    def test_submit_before_start_raises(self, gbmf):
        engine = ServingEngine(gbmf)
        with pytest.raises(RuntimeError, match="not running"):
            engine.submit_items(0, [0, 1])

    def test_invalid_options_rejected(self, gbmf):
        with pytest.raises(ValueError):
            ServingEngine(gbmf, dtype="float16")
        with pytest.raises(ValueError):
            ServingEngine(gbmf, max_pending=0)
        with pytest.raises(ValueError):
            ServingEngine(gbmf, max_delay_ms=0.0)

    def test_start_stop_and_restart(self, gbmf):
        engine = ServingEngine(gbmf, max_delay_ms=5.0)
        engine.start()
        with pytest.raises(RuntimeError, match="already running"):
            engine.start()
        assert engine.score_items(0, [0, 1], timeout=5.0).shape == (2,)
        engine.stop()
        assert not engine.running
        engine.stop()  # idempotent
        engine.start()  # restartable
        assert engine.score_items(1, [2], timeout=5.0).shape == (1,)
        engine.stop()

    def test_submit_after_stop_raises(self, gbmf):
        engine = ServingEngine(gbmf).start()
        engine.stop()
        with pytest.raises(RuntimeError, match="not running"):
            engine.submit_items(0, [0])

    def test_context_manager(self, gbmf):
        with ServingEngine(gbmf, max_delay_ms=5.0) as engine:
            assert engine.running
            assert engine.score_items(0, [0, 1, 2], timeout=5.0).shape == (3,)
        assert not engine.running

    def test_submit_validation_matches_batcher(self, tiny_dataset, gbmf):
        with ServingEngine(gbmf) as engine:
            with pytest.raises(ValueError):
                engine.submit_items(0, [])
            with pytest.raises(ValueError):
                engine.submit_items(-1, [0])
            with pytest.raises(ValueError):
                engine.submit_items(0, [tiny_dataset.n_items])
            with pytest.raises(ValueError):
                engine.submit_participants(0, 0, [tiny_dataset.n_users])


class TestFlushClock:
    def test_deadline_triggered_flush(self, gbmf):
        # Size budget unreachable: only the worker's deadline clock can
        # resolve the ticket.
        with ServingEngine(gbmf, max_delay_ms=250.0, max_pending=10**6) as engine:
            started = time.perf_counter()
            ticket = engine.submit_items(0, [0, 1, 2])
            assert not ticket.ready  # the clock has 250ms to go
            scores = ticket.wait(timeout=5.0)
            elapsed = time.perf_counter() - started
            assert scores.shape == (3,)
            assert elapsed >= 0.2  # held until the deadline, not flushed eagerly
            assert engine.stats()["engine"]["flush_causes"]["deadline"] >= 1

    def test_size_budget_flush_beats_deadline(self, gbmf):
        # Deadline unreachable in test time: only the row budget fires.
        with ServingEngine(gbmf, max_delay_ms=60_000.0, max_pending=8) as engine:
            ticket = engine.submit_items(0, list(range(8)))
            scores = ticket.wait(timeout=5.0)
            assert scores.shape == (8,)
            causes = engine.stats()["engine"]["flush_causes"]
            assert causes["size"] >= 1 and causes["deadline"] == 0

    def test_explicit_drain(self, gbmf):
        with ServingEngine(gbmf, max_delay_ms=60_000.0, max_pending=10**6) as engine:
            tickets = [engine.submit_items(u, [0, 1]) for u in range(3)]
            assert not any(t.ready for t in tickets)
            engine.drain(timeout=10.0)
            assert all(t.ready for t in tickets)
            assert engine.stats()["engine"]["flush_causes"]["drain"] >= 1

    def test_stop_with_pending_drains(self, gbmf):
        engine = ServingEngine(gbmf, max_delay_ms=60_000.0, max_pending=10**6)
        engine.start()
        tickets = [engine.submit_items(u, [0, 1, 2]) for u in (0, 1)]
        t_b = engine.submit_participants(0, 1, [2, 3])
        assert not any(t.ready for t in tickets)
        engine.stop()
        assert all(t.ready for t in tickets) and t_b.ready
        assert tickets[0].scores.shape == (3,)
        assert engine.stats()["engine"]["flush_causes"]["stop"] >= 1

    def test_wait_timeout_on_distant_deadline(self, gbmf):
        with ServingEngine(gbmf, max_delay_ms=60_000.0, max_pending=10**6) as engine:
            ticket = engine.submit_items(0, [0])
            with pytest.raises(TimeoutError):
                ticket.wait(timeout=0.05)
            engine.drain(timeout=10.0)
            assert ticket.scores.shape == (1,)


class TestScoreParity:
    def test_bit_identical_to_sync_flush_over_same_requests(self, tiny_mgbr):
        """Acceptance gate: engine == RequestBatcher.flush at float64, bitwise.

        Both shells are held to one flush over the identical request
        sequence, so they compile the identical plan and run the same
        planned model call.
        """
        requests_a = [(u, [0, 3, 5, 3, u % 7]) for u in range(6)]
        requests_b = [(u, u % 5, [1, 2, 1, 8 + u]) for u in range(4)]

        sync = RequestBatcher(tiny_mgbr)
        sync_a = [sync.submit_items(u, c) for u, c in requests_a]
        sync_b = [sync.submit_participants(u, i, c) for u, i, c in requests_b]
        sync.flush()

        engine = ServingEngine(tiny_mgbr, max_delay_ms=60_000.0, max_pending=10**6)
        with engine:
            eng_a = [engine.submit_items(u, c) for u, c in requests_a]
            eng_b = [engine.submit_participants(u, i, c) for u, i, c in requests_b]
            engine.drain(timeout=30.0)
        assert engine.stats()["engine"]["flushes"] == 1
        for s, e in zip(sync_a, eng_a):
            np.testing.assert_array_equal(s.scores, e.scores)
        for s, e in zip(sync_b, eng_b):
            np.testing.assert_array_equal(s.scores, e.scores)
        sync.release()
        tiny_mgbr.invalidate_cache()

    def test_threaded_submitters_match_serial_replay(self, tiny_dataset):
        """Racing submitters batch arbitrarily; scores must not care."""
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=3)
        n_threads, per_thread = 6, 12
        rng = np.random.default_rng(7)
        plans = {
            t: [
                (
                    int(rng.integers(tiny_dataset.n_users)),
                    rng.integers(tiny_dataset.n_items, size=10).tolist(),
                )
                for _ in range(per_thread)
            ]
            for t in range(n_threads)
        }
        results = {}
        errors = []

        def submitter(tid):
            try:
                out = []
                for user, cands in plans[tid]:
                    out.append(engine.submit_items(user, cands).wait(timeout=30.0))
                results[tid] = out
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        engine = ServingEngine(model, max_delay_ms=1.0)
        with engine:
            threads = [
                threading.Thread(target=submitter, args=(t,)) for t in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        stats = engine.stats()
        assert stats["batcher"]["requests"] == n_threads * per_thread

        replay = RequestBatcher(model)
        for tid, requests in plans.items():
            for k, (user, cands) in enumerate(requests):
                np.testing.assert_array_equal(
                    results[tid][k], replay.score_items(user, cands)
                )
        replay.release()


class TestFailureIsolation:
    def test_sync_flush_failure_reresolves_tickets_with_error(self, tiny_dataset):
        model = _BoomGBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        front = RequestBatcher(model)
        bad = front.submit_items(0, [0, 1])
        bad2 = front.submit_items(1, [2])
        ok = front.submit_participants(0, 1, [2, 3])
        with pytest.raises(ValueError, match="kaboom"):
            front.flush()
        # Failed tickets re-raise the captured model error, not a
        # generic "never resolved" RuntimeError...
        for ticket in (bad, bad2):
            assert ticket.ready and ticket.failed
            with pytest.raises(ValueError, match="kaboom"):
                _ = ticket.scores
        # ...and the co-batched OTHER task still flushed fine.
        assert ok.scores.shape == (2,)
        assert front.stats["failed_flushes"] == 1

    def test_wrong_length_scores_fail_tickets_instead_of_stranding(
        self, tiny_dataset
    ):
        # The error fires inside the scatter (after the model call), a
        # path that must still resolve every ticket with the exception.
        model = _WrongShapeGBMF(tiny_dataset.n_users, tiny_dataset.n_items,
                                dim=4, seed=0)
        with ServingEngine(model, max_delay_ms=5.0) as engine:
            ticket = engine.submit_items(0, [0, 1])
            with pytest.raises(ValueError, match="unique scores"):
                ticket.wait(timeout=5.0)
            assert engine.running  # the worker shrugged it off

    def test_both_tasks_failing_counts_one_failed_flush(self, tiny_dataset):
        model = _DoubleBoomGBMF(tiny_dataset.n_users, tiny_dataset.n_items,
                                dim=4, seed=0)
        front = RequestBatcher(model)
        t_a = front.submit_items(0, [0, 1])
        t_b = front.submit_participants(0, 1, [2])
        with pytest.raises(ValueError, match="kaboom"):
            front.flush()
        assert t_a.failed and t_b.failed
        assert front.stats["flushes"] == 1
        assert front.stats["failed_flushes"] == 1

    def test_engine_survives_flush_failure(self, tiny_dataset):
        model = _BoomGBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        with ServingEngine(model, max_delay_ms=5.0) as engine:
            bad = engine.submit_items(0, [0, 1])
            ok = engine.submit_participants(0, 1, [2, 3])
            with pytest.raises(ValueError, match="kaboom"):
                bad.wait(timeout=5.0)
            assert ok.wait(timeout=5.0).shape == (2,)
            # The worker shrugged the error off and keeps serving.
            assert engine.running
            later = engine.submit_participants(1, 0, [3])
            assert later.wait(timeout=5.0).shape == (1,)
            assert engine.stats()["batcher"]["failed_flushes"] == 1


class TestStatsAndStores:
    def test_unified_stats_snapshot(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=1,
                     n_shards=4)
        caches = cache_hot_rows(model, capacity=32)
        assert set(caches) == {"initiator_table", "participant_table", "item_table"}
        with ServingEngine(model, max_delay_ms=2.0) as engine:
            for u in range(8):
                engine.submit_items(u % 3, [0, 1, 2, u % 5])
            engine.drain(timeout=10.0)
            stats = engine.stats()
        # Serializable end to end (the bench embeds it verbatim).
        json.dumps(stats)
        assert set(stats) == {"engine", "overload", "batcher", "stores", "cache",
                              "memory"}
        assert stats["overload"]["accepted"] == 8
        assert stats["overload"]["rejected"] == 0
        assert stats["overload"]["shed"] == 0
        assert stats["engine"]["flushes"] >= 1
        assert stats["batcher"]["requests"] == 8
        assert stats["batcher"]["flat_rows"] == 32
        for entry in stats["stores"].values():
            assert entry["n_shards"] == 4
            assert "inner" in entry  # LRU wrapper nests the inner counters
        memory = stats["memory"]
        assert set(memory["stores"]) == set(stats["stores"])
        assert memory["resident_bytes"] == sum(memory["stores"].values())
        assert memory["resident_bytes"] > 0  # sharded buffers + cache payloads
        cache = stats["cache"]
        assert cache["stores"] == 3
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_refresh_picks_up_new_weights_while_running(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=4)
        other = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=5)
        with ServingEngine(model, max_delay_ms=2.0) as engine:
            before = engine.score_items(0, [0, 1, 2], timeout=5.0).copy()
            model.load_state_dict(other.state_dict())
            engine.refresh()
            after = engine.score_items(0, [0, 1, 2], timeout=5.0)
            assert not np.allclose(before, after)
            reference = RequestBatcher(other).score_items(0, [0, 1, 2])
            np.testing.assert_allclose(after, reference)


@pytest.mark.slow
class TestLatencySweep:
    def test_open_loop_latency_respects_deadline_model(self, monkeypatch):
        """The bench's steady-state acceptance gate, at test scale."""
        import importlib.util
        from pathlib import Path

        # Short sweeps on shared CI runners need the wider scheduler
        # slack (mirrors the bench's own --smoke gate).
        monkeypatch.setenv("REPRO_BENCH_SERVE_SLACK_MS", "100.0")
        bench_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_serve_latency.py"
        )
        spec = importlib.util.spec_from_file_location("bench_serve_latency", bench_path)
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        report = bench.run_benchmark(
            rates=(400.0,), deadlines=(5.0,), n_requests=200
        )
        report["overload_cells"] = bench.run_overload_cells(workers=(2,))
        bench.check_report(report)
        steady = [c for c in report["cells"] if c["steady_state"]]
        assert {c["store"] for c in steady} == {"dense", "sharded", "lru"}
        (overload,) = report["overload_cells"]
        # Overload really overloaded and the budgets dropped the excess.
        assert overload["rejected"] + overload["shed"] > 0
        assert (
            overload["scored"] + overload["shed"] + overload["rejected"]
            == overload["n_requests"]
        )
