"""Differentiable activation and loss primitives.

These free functions build on :class:`repro.nn.tensor.Tensor` and provide
numerically-stable implementations of the nonlinearities MGBR's equations
use: the sigmoid ``σ`` appearing throughout Eq. 1-3 and Eq. 16/17, softmax
for gate attention, and the log-sigmoid / softplus pair underpinning the
BPR objectives (Eq. 19/24).  Keeping them out of the :class:`Tensor`
class mirrors the ``torch.nn.functional`` layout the paper's reference
code relies on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.backend import get_backend
from repro.nn.tensor import Tensor

__all__ = [
    "sigmoid",
    "logsigmoid",
    "softplus",
    "relu",
    "leaky_relu",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "binary_cross_entropy",
    "mse_loss",
    "l2_norm",
]


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable elementwise logistic function ``1/(1+e^-x)``."""
    value = _stable_sigmoid(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * value * (1.0 - value))

    return Tensor._make(value, (x,), backward)


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Stable sigmoid: never exponentiates a positive argument.

    Accumulates in float64 regardless of the input dtype (the caller's
    Tensor wrapper casts back to the scoped dtype), so float32 scoring
    rounds once rather than per branch.
    """
    b = get_backend()
    out = b.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + b.exp(-z[pos]))
    ez = b.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def logsigmoid(x: Tensor) -> Tensor:
    """Stable ``log σ(x) = -softplus(-x)``.

    This is the exact form of each BPR summand: Eq. 19 optimises
    ``log σ(s_pos - s_neg)``.
    """
    value = -_stable_softplus(-x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * _stable_sigmoid(-x.data))

    return Tensor._make(value, (x,), backward)


def _stable_softplus(z: np.ndarray) -> np.ndarray:
    """Stable ``log(1+e^z) = max(z,0) + log1p(e^{-|z|})``."""
    b = get_backend()
    return b.maximum(z, 0.0) + b.log1p(b.exp(-b.absolute(z)))


def softplus(x: Tensor) -> Tensor:
    """Stable elementwise softplus ``log(1 + e^x)``."""
    value = _stable_softplus(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * _stable_sigmoid(x.data))

    return Tensor._make(value, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(x, 0)``."""
    b = get_backend()
    mask = b.greater(x.data, 0)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(get_backend().multiply(g, mask))

    return Tensor._make(b.multiply(x.data, mask), (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """LeakyReLU, the activation NGCF's propagation layers use."""
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * scale)

    return Tensor._make(x.data * scale, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    value = get_backend().tanh(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * (1.0 - value**2))

    return Tensor._make(value, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (shift-stabilised).

    Gate attention weights over expert banks are softmax-normalised so
    each gate output is a convex combination of expert outputs.
    """
    b = get_backend()
    shifted = x.data - b.amax(x.data, axis=axis, keepdims=True)
    ez = b.exp(shifted)
    value = ez / b.sum(ez, axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            dot = (g * value).sum(axis=axis, keepdims=True)
            x._accumulate(value * (g - dot))

    return Tensor._make(value, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (used by the ListNet-style option)."""
    b = get_backend()
    shifted = x.data - b.amax(x.data, axis=axis, keepdims=True)
    log_z = b.log(b.sum(b.exp(shifted), axis=axis, keepdims=True))
    value = shifted - log_z
    soft = b.exp(value)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(value, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale by ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.data.shape) >= p) / (1.0 - p)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * keep)

    return Tensor._make(x.data * keep, (x,), backward)


def binary_cross_entropy(pred: Tensor, target: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Mean BCE between probabilities ``pred`` and 0/1 ``target``.

    Used by the literal reading of Eq. 21, where scores are sigmoid
    probabilities and only positive-labelled triples contribute.
    """
    clipped = pred.clip(eps, 1.0 - eps)
    t = Tensor(np.asarray(target, dtype=np.float64))
    loss = -(t * clipped.log() + (1.0 - t) * (1.0 - clipped).log())
    return loss.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def l2_norm(x: Tensor, axis: Optional[int] = None, eps: float = 1e-12) -> Tensor:
    """Euclidean norm along ``axis`` (safe at zero)."""
    return ((x * x).sum(axis=axis) + eps).sqrt()
