"""Prediction module (Eq. 16/17): one MLP head per sub-task.

``s(i|u) = σ(MLP_A(g^L_A))`` and ``s(p|u,i) = σ(MLP_B(g^L_B))``.  The
heads return *raw logits*; the model applies the sigmoid for evaluation
scores and feeds logits directly into the numerically-stable loss
functions (``log σ(x)`` = ``logsigmoid(logit)``) — the ranking is
unchanged since σ is monotone.
"""

from __future__ import annotations

from typing import Sequence

from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike

__all__ = ["PredictionHead"]


class PredictionHead(Module):
    """An MLP mapping a gate output ``(batch, d)`` to a logit ``(batch,)``."""

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int],
        activation: str = "relu",
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.mlp = MLP(in_dim, list(hidden), 1, activation=activation, seed=seed)

    def forward(self, gate_output: Tensor) -> Tensor:
        """Return per-sample logits (flattened to 1-D)."""
        out = self.mlp(gate_output)
        return out.reshape(out.shape[0])
