"""Unit tests for the autograd core: every adjoint vs finite differences.

The whole suite doubles as the **backend conformance suite**: the
autouse fixture below re-runs every test under each registered
:class:`repro.nn.ArrayBackend`, so a new backend passes the full adjoint
battery (values and gradients) before anything else trusts it.
"""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    available_backends,
    backend_scope,
    concat,
    gradcheck,
    is_grad_enabled,
    no_grad,
    ones,
    scatter_rows_sum,
    stack,
    take_rows,
    tensor,
    zeros,
)


@pytest.fixture(autouse=True, params=available_backends())
def active_backend(request):
    """Run every autograd test under each registered array backend."""
    with backend_scope(request.param):
        yield request.param


def _t(rng, *shape):
    return tensor(rng.normal(size=shape), requires_grad=True)


class TestConstruction:
    def test_tensor_wraps_float64(self, rng):
        t = tensor([[1, 2], [3, 4]])
        assert t.data.dtype == np.float64
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_zeros_and_ones(self):
        assert np.all(zeros(2, 3).data == 0)
        assert np.all(ones(4).data == 1)

    def test_item_on_scalar(self):
        assert tensor(3.5).item() == 3.5

    def test_item_requires_scalar(self):
        with pytest.raises(TypeError):
            tensor([1.0, 2.0]).item()

    def test_detach_breaks_graph(self, rng):
        a = _t(rng, 3)
        d = a.detach()
        assert not d.requires_grad

    def test_len_and_repr(self, rng):
        a = _t(rng, 5, 2)
        assert len(a) == 5
        assert "shape=(5, 2)" in repr(a)


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()

    def test_backward_needs_grad_for_nonscalar(self, rng):
        a = _t(rng, 3)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_gradient_accumulates_on_shared_node(self, rng):
        a = _t(rng, 3)
        out = (a * 2 + a * 3).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full(3, 5.0))

    def test_zero_grad_clears(self, rng):
        a = _t(rng, 2)
        (a * a).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_blocks_graph(self, rng):
        a = _t(rng, 2)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_diamond_graph_topological_order(self, rng):
        # b and c both depend on a; d on both: grads must not double-fire.
        a = _t(rng, 4)
        b = a * 2
        c = a + 1
        d = (b * c).sum()
        d.backward()
        expected = 2 * (a.data + 1) + 2 * a.data  # d/da of 2a(a+1)
        np.testing.assert_allclose(a.grad, expected)


class TestArithmeticGradients:
    def test_add(self, rng):
        assert gradcheck(lambda x, y: x + y, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_add_broadcast_row(self, rng):
        assert gradcheck(lambda x, y: x + y, [_t(rng, 3, 4), _t(rng, 4)])

    def test_add_broadcast_col(self, rng):
        assert gradcheck(lambda x, y: x + y, [_t(rng, 3, 4), _t(rng, 3, 1)])

    def test_add_scalar_constant(self, rng):
        assert gradcheck(lambda x: x + 2.5, [_t(rng, 3)])

    def test_sub_and_rsub(self, rng):
        assert gradcheck(lambda x, y: x - y, [_t(rng, 2, 3), _t(rng, 2, 3)])
        assert gradcheck(lambda x: 1.0 - x, [_t(rng, 4)])

    def test_mul(self, rng):
        assert gradcheck(lambda x, y: x * y, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_mul_broadcast(self, rng):
        assert gradcheck(lambda x, y: x * y, [_t(rng, 5, 1), _t(rng, 1, 4)])

    def test_div(self, rng):
        a = _t(rng, 3)
        b = tensor(rng.uniform(1.0, 2.0, size=3), requires_grad=True)
        assert gradcheck(lambda x, y: x / y, [a, b])

    def test_rdiv(self, rng):
        b = tensor(rng.uniform(1.0, 2.0, size=3), requires_grad=True)
        assert gradcheck(lambda y: 2.0 / y, [b])

    def test_neg(self, rng):
        assert gradcheck(lambda x: -x, [_t(rng, 2, 2)])

    def test_pow(self, rng):
        a = tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        assert gradcheck(lambda x: x**3, [a])
        assert gradcheck(lambda x: x**0.5, [a])

    def test_pow_requires_scalar_exponent(self, rng):
        with pytest.raises(TypeError):
            _ = _t(rng, 2) ** np.array([1.0, 2.0])


class TestMatmulGradients:
    def test_2d(self, rng):
        assert gradcheck(lambda x, y: x @ y, [_t(rng, 3, 4), _t(rng, 4, 5)])

    def test_matrix_vector(self, rng):
        assert gradcheck(lambda x, y: x @ y, [_t(rng, 3, 4), _t(rng, 4)])

    def test_vector_matrix(self, rng):
        assert gradcheck(lambda x, y: x @ y, [_t(rng, 4), _t(rng, 4, 3)])

    def test_batched(self, rng):
        assert gradcheck(lambda x, y: x @ y, [_t(rng, 2, 3, 4), _t(rng, 2, 4, 5)])

    def test_batched_broadcast_left(self, rng):
        assert gradcheck(lambda x, y: x @ y, [_t(rng, 3, 4), _t(rng, 2, 4, 5)])

    def test_gate_mix_pattern(self, rng):
        # The (B,1,K) @ (B,K,d) pattern used by all gate attentions.
        w = _t(rng, 2, 1, 3)
        bank = _t(rng, 2, 3, 5)
        assert gradcheck(lambda a, b: a @ b, [w, bank])


class TestElementwiseGradients:
    def test_exp(self, rng):
        assert gradcheck(lambda x: x.exp(), [_t(rng, 3)])

    def test_log(self, rng):
        a = tensor(rng.uniform(0.5, 3.0, size=4), requires_grad=True)
        assert gradcheck(lambda x: x.log(), [a])

    def test_sqrt(self, rng):
        a = tensor(rng.uniform(0.5, 3.0, size=4), requires_grad=True)
        assert gradcheck(lambda x: x.sqrt(), [a])

    def test_abs(self, rng):
        a = tensor(rng.normal(size=5) + 0.5, requires_grad=True)
        assert gradcheck(lambda x: x.abs(), [a])

    def test_clip_interior_and_exterior(self, rng):
        a = tensor(np.array([-2.0, -0.5, 0.3, 0.9, 2.0]), requires_grad=True)
        out = a.clip(-1.0, 1.0)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1, 1, 0])


class TestReductionGradients:
    def test_sum_all(self, rng):
        assert gradcheck(lambda x: x.sum(), [_t(rng, 3, 4)])

    def test_sum_axis0(self, rng):
        assert gradcheck(lambda x: x.sum(axis=0), [_t(rng, 3, 4)])

    def test_sum_axis1_keepdims(self, rng):
        assert gradcheck(lambda x: x.sum(axis=1, keepdims=True), [_t(rng, 3, 4)])

    def test_sum_negative_axis(self, rng):
        assert gradcheck(lambda x: x.sum(axis=-1), [_t(rng, 2, 3, 4)])

    def test_mean_all_and_axis(self, rng):
        assert gradcheck(lambda x: x.mean(), [_t(rng, 3, 4)])
        assert gradcheck(lambda x: x.mean(axis=0, keepdims=True), [_t(rng, 3, 4)])

    def test_max_axis(self, rng):
        # Perturbation-safe: values spaced apart so argmax never flips.
        a = tensor(np.array([[1.0, 5.0, 3.0], [9.0, 2.0, 4.0]]), requires_grad=True)
        assert gradcheck(lambda x: x.max(axis=1), [a])

    def test_max_all(self):
        a = tensor(np.array([1.0, 7.0, 3.0]), requires_grad=True)
        out = a.max()
        out.backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_max_ties_split_gradient(self):
        a = tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape(self, rng):
        assert gradcheck(lambda x: x.reshape(6, 2), [_t(rng, 3, 4)])

    def test_reshape_tuple_arg(self, rng):
        a = _t(rng, 4)
        assert a.reshape((2, 2)).shape == (2, 2)

    def test_transpose_default(self, rng):
        assert gradcheck(lambda x: x.transpose(), [_t(rng, 3, 4)])

    def test_transpose_axes(self, rng):
        assert gradcheck(lambda x: x.transpose(0, 2), [_t(rng, 2, 3, 4)])

    def test_T_property(self, rng):
        a = _t(rng, 2, 5)
        assert a.T.shape == (5, 2)

    def test_getitem_slice(self, rng):
        assert gradcheck(lambda x: x[1:3], [_t(rng, 5, 2)])

    def test_getitem_fancy_repeated(self, rng):
        idx = np.array([0, 2, 2, 1])
        a = _t(rng, 4, 3)
        out = a[idx]
        out.sum().backward()
        # Row 2 picked twice -> gradient 2.
        np.testing.assert_allclose(a.grad, [[1] * 3, [1] * 3, [2] * 3, [0] * 3])

    def test_getitem_tensor_index(self, rng):
        a = _t(rng, 4, 3)
        idx = tensor([0.0, 3.0])
        assert a[idx].shape == (2, 3)


class TestConcatStack:
    def test_concat_axis1(self, rng):
        assert gradcheck(lambda x, y: concat([x, y], axis=1), [_t(rng, 3, 2), _t(rng, 3, 4)])

    def test_concat_axis0(self, rng):
        assert gradcheck(lambda x, y: concat([x, y], axis=0), [_t(rng, 2, 3), _t(rng, 4, 3)])

    def test_concat_three_way(self, rng):
        parts = [_t(rng, 2, 2), _t(rng, 2, 3), _t(rng, 2, 1)]
        assert gradcheck(lambda *xs: concat(list(xs), axis=1), parts)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_stack_axis0_and_1(self, rng):
        assert gradcheck(lambda x, y: stack([x, y], axis=0), [_t(rng, 3, 2), _t(rng, 3, 2)])
        assert gradcheck(lambda x, y: stack([x, y], axis=1), [_t(rng, 3, 2), _t(rng, 3, 2)])

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            stack([])


class TestGatherScatter:
    def test_take_rows_gradcheck(self, rng):
        idx = np.array([0, 2, 2, 4, 1])
        assert gradcheck(lambda x: take_rows(x, idx), [_t(rng, 5, 3)])

    def test_take_rows_values(self, rng):
        a = _t(rng, 4, 2)
        out = take_rows(a, np.array([3, 0]))
        np.testing.assert_allclose(out.data, a.data[[3, 0]])

    def test_scatter_rows_sum_gradcheck(self, rng):
        idx = np.array([0, 1, 1, 2])
        assert gradcheck(lambda x: scatter_rows_sum(x, idx, 4), [_t(rng, 4, 3)])

    def test_scatter_accumulates_duplicates(self, rng):
        rows = tensor(np.ones((3, 2)), requires_grad=True)
        out = scatter_rows_sum(rows, np.array([1, 1, 0]), 3)
        np.testing.assert_allclose(out.data, [[1, 1], [2, 2], [0, 0]])

    @pytest.mark.parametrize("shape_tail", [(), (4,), (3, 5)])
    def test_scatter_rows_add_bit_identical_to_add_at(self, rng, shape_tail):
        # The CSR fast path must be indistinguishable from np.add.at —
        # duplicate indices accumulate in occurrence order — across the
        # small-scatter fallback and the sparse-matmul path, any grad
        # rank, and a narrower grad dtype.
        from repro.nn.tensor import _scatter_rows_add

        for n, dtype in ((37, np.float64), (4096, np.float64), (4096, np.float32)):
            idx = rng.integers(0, 19, size=n)
            grad = rng.normal(size=(n,) + shape_tail).astype(dtype)
            reference = np.zeros((19,) + shape_tail)
            np.add.at(reference, idx, grad)
            fast = _scatter_rows_add(idx, grad, 19, np.float64)
            np.testing.assert_array_equal(fast, reference)

    def test_scatter_rows_add_negative_and_empty_index(self, rng):
        from repro.nn.tensor import _scatter_rows_add

        empty = _scatter_rows_add(np.array([], dtype=np.int64), np.zeros((0, 2)), 3, np.float64)
        np.testing.assert_array_equal(empty, np.zeros((3, 2)))
        # Negative indices alias positive rows of the same buffer; the
        # add.at fallback must resolve them identically.
        idx = np.concatenate([rng.integers(-4, 4, size=600)])
        grad = rng.normal(size=(600, 2))
        reference = np.zeros((4, 2))
        np.add.at(reference, idx, grad)
        np.testing.assert_array_equal(
            _scatter_rows_add(idx, grad, 4, np.float64), reference
        )

    def test_getitem_int_vector_gradient_scatter_adds(self, rng):
        source = tensor(rng.normal(size=(5,)), requires_grad=True)
        idx = np.array([0, 3, 3, 1, 0, 0])
        gathered = source[idx]
        gathered.backward(np.ones(len(idx)))
        np.testing.assert_allclose(source.grad, [3.0, 1.0, 0.0, 2.0, 0.0])
