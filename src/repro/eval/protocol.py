"""Candidate-list evaluation protocols (paper Sec. III-A2 / III-D).

For each test instance the model scores a candidate list containing the
one positive and ``n_negatives`` sampled negatives:

* **Task A** — instance is an initiator ``u``; candidates are items.
  Negatives are items ``u`` never bought.
* **Task B** — instance is a pair ``(u, i)``; candidates are users.
  Negatives are users outside the observed participant set ``G_{u,i}``.

The paper computes MRR/NDCG@10 with 1:9 lists and MRR/NDCG@100 with
1:99 lists.  Candidate lists are drawn with a *fixed seed held constant
across models*, so Table III comparisons are paired.

Batched scoring
---------------
:meth:`EvalProtocol.run` is a fully batched matrix program: candidate
lists are built with one vectorised rejection-sampling pass, all
(instance × candidate) pairs are flattened into chunks of
``chunk_size`` rows, the model scores each chunk in a single call
against its cached encoder pass (``refresh_cache`` runs the GCN encoder
exactly once per evaluation), and the whole score matrix is ranked at
once by :func:`repro.eval.metrics.ranks_of_positives`.  This is an order
of magnitude faster than the historical per-instance loop, which is kept
as :meth:`EvalProtocol.run_per_instance` for parity testing and
throughput benchmarking.

Planned scoring (dedup)
-----------------------
With ``dedup=True`` each task's flattened request is first compiled
into a :class:`repro.plan.ScoringPlan`: repeated (u, i) / (u, i, p)
requests collapse onto unique pairs *globally* (dedup sees the whole
instance set, not one chunk), the model scores ``chunk_size``-row
windows of unique pairs via ``score_item_plan`` /
``score_participant_plan``, and one scatter rebuilds the full score
matrix.  Models inherit pair dedup from
:class:`repro.baselines.base.GroupBuyingRecommender`; MGBR additionally
runs its factorized expert/gate stack per plan, cutting the layer-0
FLOPs that dominate 1:99 lists.  ``dedup=False`` keeps the pre-plan flat
path for benchmarking.  ``dedup="auto"`` (the default) asks the model
(:meth:`repro.baselines.base.GroupBuyingRecommender.prefers_planned`)
whether planning pays for itself: the expert/gate stack always plans,
while near-free dot-product scorers (GBMF at toy scale) skip the
O(N log N) plan build that used to cost them more than it saved —
the ``dedup_speedup < 1`` cells in BENCH_eval_throughput.json.
Duplicate requests receive bit-equal scores on all paths, so ties (and
therefore metrics) are unaffected.

Scoring convention: the batched path ranks *raw logits* (see
:meth:`repro.baselines.base.GroupBuyingRecommender.score_items_matrix`),
which orders candidates identically to σ-probabilities except where the
sigmoid saturates to exactly 1.0 and the historical loop collapses
distinct candidates into (pessimistically broken) ties — there the
batched ranking is strictly more faithful.  For non-saturating models
(every test fixture and any un/normally-trained model at float64) the
two paths are bit-identical.

Dtype policy
------------
``dtype="float64"`` (default) scores at full precision — bit-identical
to the per-instance loop.  ``dtype="float32"`` opts into the substrate's
inference fast path (:func:`repro.nn.tensor.dtype_scope`), halving
memory bandwidth on the spmm/matmul hot paths; ranks can differ only
where float32 rounding reorders near-ties, so metrics match float64
within tolerance.  The model's embedding cache is invalidated afterwards
so no float32 tensors leak into training or analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.negative import NegativeSampler
from repro.executor import VALID_EXECUTORS
from repro.data.samples import extract_task_a, extract_task_b
from repro.data.schema import GroupBuyingDataset
from repro.eval.metrics import RankingAccumulator, rank_of_positive, ranks_of_positives
from repro.nn.backend import ArrayBackend, backend_scope, get_backend, resolve_backend
from repro.nn.tensor import dtype_scope, no_grad
from repro.plan import ScoringPlan
from repro.utils.rng import SeedLike

__all__ = ["EvalProtocol", "EvalResult", "evaluate_model"]


@dataclass(frozen=True)
class EvalResult:
    """Metric dictionaries per task and cutoff, e.g. ``task_a["MRR@10"]``."""

    task_a: Dict[str, float]
    task_b: Dict[str, float]

    def flat(self) -> Dict[str, float]:
        """Single dict keyed ``A/MRR@10`` style (handy for history logs)."""
        out = {}
        out.update({f"A/{k}": v for k, v in self.task_a.items()})
        out.update({f"B/{k}": v for k, v in self.task_b.items()})
        return out


@dataclass
class EvalProtocol:
    """A reusable evaluation configuration bound to a dataset.

    Parameters
    ----------
    dataset: evaluation source; candidates drawn against its train split.
    n_negatives: negatives per instance (9 → @10 lists, 99 → @100 lists).
    cutoff: metric truncation depth (10 or 100).
    seed: candidate-list RNG seed — keep identical across compared models.
    split: which split supplies the positive instances.
    max_instances: optional cap (benchmarks subsample for speed).
    chunk_size: target number of flattened (instance × candidate) rows
        (``dedup=False``) or unique planned requests (``dedup=True``)
        per model call on the batched path.
    dtype: scoring precision — ``"float64"`` (exact) or ``"float32"``
        (inference fast path; see the module docstring).
    dedup: ``True`` compiles each task's request into a
        :class:`ScoringPlan` first (see the module docstring);
        ``False`` scores every flat row the pre-plan way; ``"auto"``
        (default) lets the model's cost hint decide.
    executor: planned-call executor knob (``"auto"``/``"fused"``/
        ``"tape"``, see ``docs/backends.md``) applied to the model for
        the duration of :meth:`run` and restored afterwards.  At
        float64 the fused path is bit-identical to the tape, so metrics
        are executor-invariant (asserted in tests).
    backend: array-backend knob (``"auto"``, a registered backend name
        such as ``"parallel"``, or an :class:`repro.nn.backend
        .ArrayBackend` instance) scoped around :meth:`run`.  ``"auto"``
        keeps the calling thread's active backend.  The parallel
        backend preserves float64 bit-parity with numpy (see
        ``docs/backends.md``), so metrics are backend-invariant.
    """

    dataset: GroupBuyingDataset
    n_negatives: int = 9
    cutoff: int = 10
    seed: SeedLike = 123
    split: str = "test"
    max_instances: Optional[int] = None
    chunk_size: int = 4096
    dtype: str = "float64"
    dedup: object = "auto"
    executor: str = "auto"
    backend: object = "auto"
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be float32|float64, got {self.dtype!r}")
        if self.dedup not in (True, False, "auto"):
            raise ValueError(
                f"dedup must be True, False or 'auto', got {self.dedup!r}"
            )
        if self.executor not in VALID_EXECUTORS:
            raise ValueError(
                f"executor must be one of {VALID_EXECUTORS}, got {self.executor!r}"
            )
        if not isinstance(self.backend, ArrayBackend) and self.backend != "auto":
            get_backend(self.backend)  # fail fast on unknown backend names

    def _resolve_dedup(self, model) -> bool:
        """Map the ``dedup`` knob to a per-model decision."""
        resolver = getattr(model, "resolve_dedup", None)
        if resolver is not None:
            return resolver(self.dedup)
        return self.dedup is True

    def _groups(self):
        groups = getattr(self.dataset, self.split)
        if not groups:
            raise ValueError(f"split {self.split!r} is empty")
        return groups

    def _candidate_lists(self):
        """Materialise (and cache) the candidate lists for both tasks.

        Returns ``(task_a, task_b)`` where each entry is a dict of parallel
        arrays; candidate column 0 is always the positive.  Negatives for
        the whole instance set are drawn in one batched rejection-sampling
        pass per task (no per-row Python sampling calls).
        """
        key = (self.split, self.n_negatives, repr(self.seed), self.max_instances)
        if key in self._cache:
            return self._cache[key]
        groups = self._groups()
        sampler = NegativeSampler(
            self.dataset, seed=self.seed, splits=("train", "validation", "test")
        )
        task_a = extract_task_a(groups)
        task_b = extract_task_b(groups)

        a_idx = np.arange(len(task_a))
        b_idx = np.arange(len(task_b))
        if self.max_instances is not None:
            a_idx = a_idx[: self.max_instances]
            b_idx = b_idx[: self.max_instances]

        a_users = task_a.users[a_idx]
        a_pos = task_a.items[a_idx]
        # The positive may come from a non-train split, so the sampler's
        # train-interaction exclusion alone cannot guarantee it is absent
        # from the negatives — exclude it explicitly per instance.
        a_negs = sampler.sample_items_batch(
            a_users, self.n_negatives, extra_exclude=a_pos
        )
        a_cands = np.concatenate([a_pos[:, None], a_negs], axis=1)

        b_users = task_b.users[b_idx]
        b_items = task_b.items[b_idx]
        b_pos = task_b.participants[b_idx]
        # Negatives come from U \ G (Sec. III-A2): exclude the *entire*
        # observed participant set of this instance's group — the
        # sampler's train-split G_{u,i} does not know test-split groups.
        b_extra = [
            groups[int(task_b.group_index[row])].participants for row in b_idx
        ]
        b_negs = sampler.sample_participants_batch(
            b_users, b_items, self.n_negatives, extra_exclude=b_extra
        )
        b_cands = np.concatenate([b_pos[:, None], b_negs], axis=1)

        lists = (
            {"users": a_users, "candidates": a_cands},
            {"users": b_users, "items": b_items, "candidates": b_cands},
        )
        self._cache[key] = lists
        return lists

    # ------------------------------------------------------------------
    # Batched scoring path
    # ------------------------------------------------------------------
    def _instance_chunks(self, n_instances: int, n_list: int):
        """Yield instance-index slices covering ~``chunk_size`` flat rows."""
        per_chunk = max(1, self.chunk_size // n_list)
        for start in range(0, n_instances, per_chunk):
            yield slice(start, min(start + per_chunk, n_instances))

    def _run_plan(self, plan, score_chunk) -> np.ndarray:
        """Score a global plan's unique requests in ``chunk_size`` windows.

        Chunking over *unique pairs* (rather than flat rows) keeps every
        model call bounded while dedup stays global; each window is a
        sub-plan whose entity gather maps are rebuilt locally.
        """
        unique = np.empty(plan.n_pairs, dtype=np.float64)
        for start in range(0, plan.n_pairs, self.chunk_size):
            window = slice(start, min(start + self.chunk_size, plan.n_pairs))
            unique[window] = score_chunk(plan.pair_slice(window))
        return plan.scatter(unique)

    def _score_task_a(self, model, lists) -> np.ndarray:
        users, cands = lists["users"], lists["candidates"]
        if self._resolve_dedup(model) and hasattr(model, "score_item_plan"):
            plan = ScoringPlan.for_items(users, cands)
            return self._run_plan(plan, model.score_item_plan)
        # Plan-capable models get an explicit dedup=False (the pre-plan
        # flat path); duck-typed models keep their own signature.
        kwargs = {"dedup": False} if hasattr(model, "score_item_plan") else {}
        out = np.empty(cands.shape, dtype=np.float64)
        for chunk in self._instance_chunks(len(users), cands.shape[1]):
            out[chunk] = model.score_items_matrix(users[chunk], cands[chunk], **kwargs)
        return out

    def _score_task_b(self, model, lists) -> np.ndarray:
        users, items, cands = lists["users"], lists["items"], lists["candidates"]
        if self._resolve_dedup(model) and hasattr(model, "score_participant_plan"):
            plan = ScoringPlan.for_participants(users, items, cands)
            return self._run_plan(plan, model.score_participant_plan)
        kwargs = {"dedup": False} if hasattr(model, "score_participant_plan") else {}
        out = np.empty(cands.shape, dtype=np.float64)
        for chunk in self._instance_chunks(len(users), cands.shape[1]):
            out[chunk] = model.score_participants_matrix(
                users[chunk], items[chunk], cands[chunk], **kwargs
            )
        return out

    def run(self, model) -> EvalResult:
        """Score both tasks' candidate lists with ``model``, batched.

        The model must implement the :class:`repro.baselines.base
        .GroupBuyingRecommender` scoring interface (models overriding
        only the flat ``score_items``/``score_participants`` inherit the
        matrix path from the base class).  Runs in eval mode under
        ``no_grad``; the encoder cache is refreshed once up front and
        each chunk of flattened (instance × candidate) pairs is scored
        with a single model call.
        """
        was_training = getattr(model, "training", False)
        model.eval()
        # Scope the executor knob to this evaluation: the model may be
        # shared with serving code that configured its own executor.
        prior_executor = getattr(model, "executor", None)
        if prior_executor is not None:
            model.executor = self.executor
        try:
            with no_grad(), dtype_scope(self.dtype), \
                    backend_scope(resolve_backend(self.backend)):
                if hasattr(model, "refresh_cache"):
                    model.refresh_cache()
                task_a, task_b = self._candidate_lists()

                acc_a = RankingAccumulator(self.cutoff)
                acc_a.add_ranks(ranks_of_positives(self._score_task_a(model, task_a)))

                acc_b = RankingAccumulator(self.cutoff)
                acc_b.add_ranks(ranks_of_positives(self._score_task_b(model, task_b)))
        finally:
            if prior_executor is not None:
                model.executor = prior_executor
            if self.dtype != "float64" and hasattr(model, "invalidate_cache"):
                # Drop the reduced-precision encoder pass so later
                # full-precision consumers never see float32 tensors.
                model.invalidate_cache()
            if was_training:
                model.train()
        return EvalResult(task_a=acc_a.result(), task_b=acc_b.result())

    def run_per_instance(self, model) -> EvalResult:
        """Historical per-instance evaluation loop (one model call per row).

        Kept as the reference implementation: parity tests assert
        :meth:`run` reproduces it bit-identically at float64, and the
        throughput benchmark measures the speedup against it.  Prefer
        :meth:`run`.
        """
        was_training = getattr(model, "training", False)
        model.eval()
        try:
            with no_grad():
                if hasattr(model, "refresh_cache"):
                    model.refresh_cache()
                task_a, task_b = self._candidate_lists()
                acc_a = RankingAccumulator(self.cutoff)
                users, cands = task_a["users"], task_a["candidates"]
                n_list = cands.shape[1]
                for row in range(len(users)):
                    u_rep = np.full(n_list, users[row], dtype=np.int64)
                    scores = model.score_items(u_rep, cands[row])
                    acc_a.add(rank_of_positive(np.asarray(scores.data).ravel(), 0))

                acc_b = RankingAccumulator(self.cutoff)
                users, items, cands = (
                    task_b["users"],
                    task_b["items"],
                    task_b["candidates"],
                )
                n_list = cands.shape[1]
                for row in range(len(users)):
                    u_rep = np.full(n_list, users[row], dtype=np.int64)
                    i_rep = np.full(n_list, items[row], dtype=np.int64)
                    scores = model.score_participants(u_rep, i_rep, cands[row])
                    acc_b.add(rank_of_positive(np.asarray(scores.data).ravel(), 0))
        finally:
            if was_training:
                model.train()
        return EvalResult(task_a=acc_a.result(), task_b=acc_b.result())


def evaluate_model(
    model,
    dataset: GroupBuyingDataset,
    protocols: Sequence[tuple] = ((9, 10), (99, 100)),
    seed: SeedLike = 123,
    split: str = "test",
    max_instances: Optional[int] = None,
    chunk_size: int = 4096,
    dtype: str = "float64",
    dedup="auto",
    executor: str = "auto",
    backend: object = "auto",
) -> Dict[str, EvalResult]:
    """Run the paper's two standard protocols and key results by cutoff.

    Returns e.g. ``{"@10": EvalResult, "@100": EvalResult}``.  ``dtype``,
    ``chunk_size``, ``dedup``, ``executor`` and ``backend`` forward to
    :class:`EvalProtocol`.
    """
    out: Dict[str, EvalResult] = {}
    for n_neg, cutoff in protocols:
        protocol = EvalProtocol(
            dataset=dataset,
            n_negatives=n_neg,
            cutoff=cutoff,
            seed=seed,
            split=split,
            max_instances=max_instances,
            chunk_size=chunk_size,
            dtype=dtype,
            dedup=dedup,
            executor=executor,
            backend=backend,
        )
        out[f"@{cutoff}"] = protocol.run(model)
    return out
