"""Graceful degradation: trade scoring fidelity for staying alive.

Admission control (depth budget) and load shedding (age budget) convert
excess load into typed errors.  A :class:`DegradationPolicy` adds a
*middle* response between "full fidelity" and "refused": under sustained
queue pressure the engine keeps answering every admitted request, but
cheaper —

* **top-K truncation** — each request's candidate list is cut to its
  first ``top_k`` entries before planning; the unscored tail resolves to
  ``-inf`` so the response stays aligned with the submitted list (the
  tail simply ranks last);
* **fallback routing** — the whole flush is scored by a registered
  cheap baseline (e.g. GBMF instead of the full MGBR expert/gate stack)
  through its own :class:`repro.serving.core.ScoringCore`.

This is the accuracy-vs-cost trade GBGCN ("Group-Buying Recommendation
for Social E-Commerce") makes explicit between full graph convolution
and matrix-factorization scoring — here it is taken *dynamically*, per
flush, driven by queue depth.

Pressure detection is hysteretic in one direction: degradation engages
only after the queue depth has been **at or above** ``watermark_rows``
for ``trigger_flushes`` consecutive flushes (one deep flush after a
burst is normal; a *streak* means the engine is not keeping up), and
disengages on the first flush that drains below the watermark.  Every
ticket served by a degraded flush carries ``degraded=True`` and is
counted in the engine's ``stats()["overload"]["degraded"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["DegradationPolicy"]


@dataclass
class DegradationPolicy:
    """When and how a serving engine degrades under queue pressure.

    Parameters
    ----------
    watermark_rows:
        Queue depth (total pending flat rows, measured as each flush
        drains the queue) at or above which a flush counts as
        "pressured".
    trigger_flushes:
        How many *consecutive* pressured flushes engage degradation
        (``1`` = degrade immediately on a deep queue).
    top_k:
        Truncate each request's candidate list to its first ``top_k``
        candidates while degraded; positions past K resolve to ``-inf``.
        ``None`` disables truncation.
    fallback_model:
        Score degraded flushes with this model (same ``n_users`` /
        ``n_items`` catalog) instead of the primary.  ``None`` disables
        routing.  The fallback is driven by the engine's worker thread
        only — it must not be shared with another live engine.

    At least one of ``top_k`` / ``fallback_model`` must be set.
    """

    watermark_rows: int
    trigger_flushes: int = 3
    top_k: Optional[int] = None
    fallback_model: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.watermark_rows < 1:
            raise ValueError(
                f"watermark_rows must be >= 1, got {self.watermark_rows}"
            )
        if self.trigger_flushes < 1:
            raise ValueError(
                f"trigger_flushes must be >= 1, got {self.trigger_flushes}"
            )
        if self.top_k is not None and self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.top_k is None and self.fallback_model is None:
            raise ValueError(
                "a DegradationPolicy needs top_k and/or fallback_model — "
                "otherwise there is nothing to degrade to"
            )

    def check_compatible(self, model) -> None:
        """Reject a fallback whose catalog disagrees with the primary's.

        A fallback with fewer rows would turn valid ids into flush-time
        explosions exactly when the engine is under the most pressure —
        validate at engine construction instead.
        """
        if self.fallback_model is None:
            return
        if self.fallback_model is model:
            raise ValueError("fallback_model must be a different model instance")
        for attr in ("n_users", "n_items"):
            primary = getattr(model, attr, None)
            fallback = getattr(self.fallback_model, attr, None)
            if primary is not None and fallback is not None and primary != fallback:
                raise ValueError(
                    f"fallback_model.{attr}={fallback} does not match the "
                    f"primary model's {attr}={primary}"
                )

    def truncate(self, items, participants):
        """Apply top-K truncation to drained request lists.

        Returns possibly-rewritten ``(items, participants)`` lists:
        requests longer than ``top_k`` get their candidate array cut and
        their ticket's pad-length set so the resolved score vector keeps
        the submitted length (``-inf`` tail).  Tickets are *not* marked
        degraded here — the engine marks every ticket of a degraded
        flush, truncated or not.
        """
        if self.top_k is None:
            return items, participants
        return (
            [self._truncate_one(req, cands_idx=1) for req in items],
            [self._truncate_one(req, cands_idx=2) for req in participants],
        )

    def _truncate_one(self, req: tuple, cands_idx: int):
        cands = req[cands_idx]
        if cands.size <= self.top_k:
            return req
        ticket = req[-2]
        ticket._pad_to = cands.size
        out = list(req)
        out[cands_idx] = cands[: self.top_k]
        return tuple(out)
