"""Dataset persistence.

Datasets round-trip through a compressed ``.npz`` with ragged groups
encoded as flat arrays plus offsets — robust, dependency-free, and fast
to reload in benchmarks that share a dataset across many model runs.
A JSON export is provided for human inspection / interchange.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.data.schema import DealGroup, GroupBuyingDataset

__all__ = ["save_dataset", "load_dataset", "export_json", "import_json"]

PathLike = Union[str, Path]

_SPLITS = ("train", "validation", "test")


def _encode_groups(groups: Sequence[DealGroup]):
    initiators = np.fromiter((g.initiator for g in groups), dtype=np.int64, count=len(groups))
    items = np.fromiter((g.item for g in groups), dtype=np.int64, count=len(groups))
    sizes = np.fromiter((g.size for g in groups), dtype=np.int64, count=len(groups))
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    flat = np.fromiter(
        (p for g in groups for p in g.participants), dtype=np.int64, count=int(offsets[-1])
    )
    return initiators, items, offsets, flat


def _decode_groups(initiators, items, offsets, flat) -> List[DealGroup]:
    out: List[DealGroup] = []
    for k in range(len(initiators)):
        lo, hi = int(offsets[k]), int(offsets[k + 1])
        out.append(
            DealGroup(
                initiator=int(initiators[k]),
                item=int(items[k]),
                participants=tuple(int(p) for p in flat[lo:hi]),
            )
        )
    return out


def save_dataset(dataset: GroupBuyingDataset, path: PathLike) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {
        "n_users": np.int64(dataset.n_users),
        "n_items": np.int64(dataset.n_items),
        "name": np.bytes_(dataset.name.encode()),
    }
    for split in _SPLITS:
        initiators, items, offsets, flat = _encode_groups(getattr(dataset, split))
        payload[f"{split}_initiators"] = initiators
        payload[f"{split}_items"] = items
        payload[f"{split}_offsets"] = offsets
        payload[f"{split}_participants"] = flat
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_dataset(path: PathLike) -> GroupBuyingDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        splits = {}
        for split in _SPLITS:
            splits[split] = _decode_groups(
                archive[f"{split}_initiators"],
                archive[f"{split}_items"],
                archive[f"{split}_offsets"],
                archive[f"{split}_participants"],
            )
        return GroupBuyingDataset(
            n_users=int(archive["n_users"]),
            n_items=int(archive["n_items"]),
            train=splits["train"],
            validation=splits["validation"],
            test=splits["test"],
            name=bytes(archive["name"]).decode(),
        )


def export_json(dataset: GroupBuyingDataset, path: PathLike) -> Path:
    """Write a human-readable JSON version of ``dataset``."""
    path = Path(path)
    doc = {
        "name": dataset.name,
        "n_users": dataset.n_users,
        "n_items": dataset.n_items,
        "splits": {
            split: [
                {"initiator": g.initiator, "item": g.item, "participants": list(g.participants)}
                for g in getattr(dataset, split)
            ]
            for split in _SPLITS
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1))
    return path


def import_json(path: PathLike) -> GroupBuyingDataset:
    """Load a dataset from the JSON produced by :func:`export_json`."""
    doc = json.loads(Path(path).read_text())
    splits = {
        split: [
            DealGroup(
                initiator=int(g["initiator"]),
                item=int(g["item"]),
                participants=tuple(int(p) for p in g["participants"]),
            )
            for g in doc["splits"][split]
        ]
        for split in _SPLITS
    }
    return GroupBuyingDataset(
        n_users=int(doc["n_users"]),
        n_items=int(doc["n_items"]),
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
        name=doc.get("name", "imported"),
    )
