"""Negative sampling for training, evaluation and the auxiliary losses.

Three distinct samplers, matching Sec. III-A2 and Sec. II-G:

* **Task A negatives** — for initiator ``u``, draw items ``u`` has *never
  bought* (any role, training split).  Training uses ratio 1:9; the test
  candidate lists use 9 (``@10``) or 99 (``@100``) negatives.
* **Task B negatives** — for a group ``<u, i, G>``, draw users from
  ``U \\ G`` (also excluding ``u`` itself).
* **Auxiliary corruption sets** — for a positive triple ``t=(u,i,p)``,
  ``T_I_t`` corrupts the item (``i' ∈ I\\{i}``) and ``T_P_t`` corrupts the
  participant (``p' ∈ U \\ G_{u,i}``), both of fixed size ``|T|``.

All batch entry points (``*_batch``, ``corrupt_*``) run one vectorised
rejection-sampling pass over the whole batch
(:func:`repro.utils.rng.choice_excluding_batch`) instead of a Python
call per row — this is what makes candidate-list construction and the
training samplers scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.schema import GroupBuyingDataset
from repro.utils.rng import SeedLike, as_rng, choice_excluding, choice_excluding_batch

__all__ = ["NegativeSampler", "NegativePool"]


class NegativePool:
    """Pre-sampled negatives reused across epochs (training-path batching).

    Rejection sampling is the trainer's main per-epoch Python cost; a
    pool pays it once.  It holds ``pool_size`` pre-drawn negatives per
    training row; each epoch reads a *rotated* window of ``n`` columns
    (epoch ``e`` starts at column ``e·n mod pool_size``), so consecutive
    epochs see different negatives while the underlying draws — and
    their exclusion-set guarantees — are reused verbatim.

    Size the pool at a non-multiple of ``n`` (ideally ≥ 2-3×) for
    variety: when ``n`` divides ``pool_size`` the rotation cycles
    through exactly ``pool_size / n`` distinct windows, and the
    degenerate ``pool_size == n`` setting pins every epoch to the *same*
    fixed negatives (a deliberate, maximally-cached regime — fine for
    benchmarking the overhead, rarely what training wants).
    """

    def __init__(self, negatives: np.ndarray) -> None:
        negatives = np.asarray(negatives, dtype=np.int64)
        if negatives.ndim != 2 or negatives.shape[1] < 1:
            raise ValueError(f"need a (rows, pool_size) pool, got {negatives.shape}")
        self.negatives = negatives

    @property
    def n_rows(self) -> int:
        """Training rows the pool covers."""
        return self.negatives.shape[0]

    @property
    def size(self) -> int:
        """Pre-drawn negatives per row."""
        return self.negatives.shape[1]

    def draw(self, rows: np.ndarray, n: int, epoch: int = 0) -> np.ndarray:
        """Negatives for the given training rows → ``(len(rows), n)``.

        ``rows`` are indices into the pool's row axis (the batcher's
        ``"index"`` field); ``epoch`` selects the rotation window.
        """
        if n > self.size:
            raise ValueError(
                f"requested {n} negatives from a pool of {self.size}; "
                "grow negative_pool_size"
            )
        rows = np.asarray(rows, dtype=np.int64)
        start = (int(epoch) * n) % self.size
        cols = (start + np.arange(n)) % self.size
        return self.negatives[rows[:, None], cols[None, :]]


class NegativeSampler:
    """Draws all three kinds of negatives against a dataset's training split.

    Parameters
    ----------
    dataset: the source of exclusion sets.
    seed: RNG seed; evaluation protocols pass a fixed seed so candidate
        lists are identical across models.
    splits: which splits feed the exclusion sets.  Training uses just
        ``("train",)``; the evaluation protocol passes all three splits
        because the paper's negatives are "products u has *not* bought"
        over the whole dataset.
    """

    def __init__(
        self,
        dataset: GroupBuyingDataset,
        seed: SeedLike = None,
        splits: Sequence[str] = ("train",),
    ) -> None:
        self.dataset = dataset
        self.rng = as_rng(seed)
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self._user_items: Dict[int, Set[int]] = dataset.user_items(splits)
        self._group_members: Dict[Tuple[int, int], Set[int]] = dataset.group_members(splits)

    def _participant_excludes(self, users, items) -> List[Set[int]]:
        """Per-row Task-B base exclusions: ``G_{u,i}`` plus ``u`` itself."""
        out: List[Set[int]] = []
        for u, i in zip(users, items):
            exc = set(self._group_members.get((int(u), int(i)), set()))
            exc.add(int(u))
            out.append(exc)
        return out

    @staticmethod
    def _merge_extra(base: Sequence[Set[int]], extra) -> List[Sequence[int]]:
        """Combine per-row base exclusion sets with optional extras.

        ``extra`` may be ``None``, a ``(rows,)`` array (one extra id per
        row) or a sequence of per-row iterables.
        """
        if extra is None:
            return [tuple(b) for b in base]
        merged: List[Sequence[int]] = []
        for row, b in enumerate(base):
            e = extra[row]
            additions = (int(e),) if np.isscalar(e) else tuple(int(x) for x in e)
            merged.append(tuple(b) + additions)
        return merged

    # ------------------------------------------------------------------
    # Task A
    # ------------------------------------------------------------------
    def sample_items(self, user: int, n: int, extra_exclude: Sequence[int] = ()) -> np.ndarray:
        """Items ``user`` never bought (plus ``extra_exclude``), size ``n``."""
        exclude = set(self._user_items.get(int(user), set()))
        exclude.update(int(x) for x in extra_exclude)
        return choice_excluding(self.rng, self.n_items, exclude, n)

    def sample_items_batch(
        self, users: np.ndarray, n: int, extra_exclude: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vector form of :meth:`sample_items` → shape ``(len(users), n)``.

        One batched rejection-sampling pass over all rows; ``extra_exclude``
        optionally adds per-row exclusions (e.g. each row's positive item
        when building evaluation candidate lists).
        """
        base = [self._user_items.get(int(u), set()) for u in users]
        excludes = self._merge_extra(base, extra_exclude)
        return choice_excluding_batch(self.rng, self.n_items, excludes, n)

    # ------------------------------------------------------------------
    # Task B
    # ------------------------------------------------------------------
    def sample_participants(
        self,
        user: int,
        item: int,
        n: int,
        extra_exclude: Sequence[int] = (),
    ) -> np.ndarray:
        """Users outside ``G_{u,i}`` (and not ``u``), size ``n``."""
        exclude = set(self._group_members.get((int(user), int(item)), set()))
        exclude.add(int(user))
        exclude.update(int(x) for x in extra_exclude)
        return choice_excluding(self.rng, self.n_users, exclude, n)

    def sample_participants_batch(
        self,
        users: np.ndarray,
        items: np.ndarray,
        n: int,
        extra_exclude: Optional[Sequence] = None,
    ) -> np.ndarray:
        """Vector form of :meth:`sample_participants` → ``(len(users), n)``.

        ``extra_exclude`` optionally supplies per-row extra exclusions
        (the evaluation protocol passes each instance's full observed
        participant set, which the train-split ``G_{u,i}`` cannot know).
        """
        if len(users) != len(items):
            raise ValueError("users and items must be the same length")
        excludes = self._merge_extra(self._participant_excludes(users, items), extra_exclude)
        return choice_excluding_batch(self.rng, self.n_users, excludes, n)

    # ------------------------------------------------------------------
    # Pre-sampled pools (reused across epochs)
    # ------------------------------------------------------------------
    def build_item_pool(self, users: np.ndarray, pool_size: int) -> NegativePool:
        """One batched Task-A sampling pass sized for epoch reuse.

        Row ``k`` of the pool holds ``pool_size`` items ``users[k]``
        never bought — the same exclusion rule as the per-step
        :meth:`sample_items_batch`, paid once instead of per epoch.
        """
        return NegativePool(self.sample_items_batch(users, pool_size))

    def build_participant_pool(
        self, users: np.ndarray, items: np.ndarray, pool_size: int
    ) -> NegativePool:
        """Task-B analogue of :meth:`build_item_pool` (``U \\ G_{u,i}``)."""
        return NegativePool(self.sample_participants_batch(users, items, pool_size))

    # ------------------------------------------------------------------
    # Auxiliary corruption sets (Sec. II-G)
    # ------------------------------------------------------------------
    def corrupt_items(self, users: np.ndarray, items: np.ndarray, size: int) -> np.ndarray:
        """``T_I``: replace the item with any other item, ``(batch, size)``.

        The definition is ``i' ∈ I \\ i`` — only the true item is
        excluded, not the user's other purchases.
        """
        excludes = [(int(item),) for item in items]
        return choice_excluding_batch(self.rng, self.n_items, excludes, size)

    def corrupt_participants(
        self, users: np.ndarray, items: np.ndarray, size: int
    ) -> np.ndarray:
        """``T_P``: replace the participant with ``p' ∈ U \\ G_{u,i}``."""
        excludes = self._participant_excludes(users, items)
        return choice_excluding_batch(self.rng, self.n_users, excludes, size)
