"""Training history: loss curves and periodic evaluation snapshots.

A :class:`History` is a list of per-epoch records the trainer appends
to; it renders compact progress lines, answers "best epoch so far" for
early stopping, and serialises to JSON for the benchmark harness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["EpochRecord", "History"]


@dataclass
class EpochRecord:
    """One epoch's bookkeeping.

    ``phases`` breaks the epoch's wall-clock into the trainer's four
    step phases (``sampling`` / ``forward`` / ``backward`` /
    ``optimizer`` seconds, summed over the epoch's steps) so users and
    the training-throughput benchmark can see where a step's time goes.
    """

    epoch: int
    losses: Dict[str, float]
    metrics: Dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)

    def line(self) -> str:
        """Human-readable one-line summary."""
        parts = [f"epoch {self.epoch:3d}", f"{self.seconds:6.2f}s"]
        if self.phases:
            split = " ".join(f"{k[:3]} {v:.2f}s" for k, v in self.phases.items())
            parts.append(f"[{split}]")
        parts += [f"{k}={v:.4f}" for k, v in self.losses.items()]
        parts += [f"{k}={v:.4f}" for k, v in self.metrics.items()]
        return "  ".join(parts)


@dataclass
class History:
    """Ordered collection of :class:`EpochRecord`."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        """Add an epoch record (epochs must be monotone)."""
        if self.records and record.epoch <= self.records[-1].epoch:
            raise ValueError(
                f"epoch {record.epoch} not after {self.records[-1].epoch}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def last(self) -> EpochRecord:
        """Most recent record."""
        if not self.records:
            raise IndexError("history is empty")
        return self.records[-1]

    def best_epoch(self, metric: str, maximize: bool = True) -> Optional[EpochRecord]:
        """Record with the best value of ``metric`` (None if never logged)."""
        scored = [r for r in self.records if metric in r.metrics]
        if not scored:
            return None
        key = (lambda r: r.metrics[metric]) if maximize else (lambda r: -r.metrics[metric])
        return max(scored, key=key)

    def loss_curve(self, name: str = "total") -> List[float]:
        """Sequence of one loss component across epochs."""
        return [r.losses[name] for r in self.records if name in r.losses]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self, path) -> Path:
        """Dump the history to a JSON file; returns the path."""
        path = Path(path)
        doc = [
            {
                "epoch": r.epoch,
                "losses": r.losses,
                "metrics": r.metrics,
                "seconds": r.seconds,
                "phases": r.phases,
            }
            for r in self.records
        ]
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=1))
        return path

    @classmethod
    def from_json(cls, path) -> "History":
        """Load a history previously written by :meth:`to_json`."""
        doc = json.loads(Path(path).read_text())
        history = cls()
        for entry in doc:
            history.append(
                EpochRecord(
                    epoch=int(entry["epoch"]),
                    losses=dict(entry["losses"]),
                    metrics=dict(entry.get("metrics", {})),
                    seconds=float(entry.get("seconds", 0.0)),
                    phases=dict(entry.get("phases", {})),
                )
            )
        return history
