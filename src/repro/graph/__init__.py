"""``repro.graph`` — interaction views, normalized adjacencies, GCNs.

MGBR learns embeddings from three undirected graphs built from the
observed deal groups (paper Sec. II-C):

* initiator-view ``G_UI`` — initiator→item launch edges,
* participant-view ``G_PI`` — participant→item join edges,
* social-view ``G_UP`` — initiator↔participant co-group edges
  (participant↔participant edges deliberately omitted).

This package builds those graphs from a dataset, normalizes them
(``Â = D^{-1/2}(A+I)D^{-1/2}``), runs GCN stacks over them (Eq. 1-3),
and also provides the merged heterogeneous graph used by the MGBR-D
ablation.
"""

from repro.graph.adjacency import (
    degree_vector,
    edges_to_adjacency,
    normalized_adjacency,
)
from repro.graph.gcn import GCN, GCNLayer
from repro.graph.hin import build_hin_adjacency
from repro.graph.views import GraphViews, build_views

__all__ = [
    "edges_to_adjacency",
    "normalized_adjacency",
    "degree_vector",
    "GCNLayer",
    "GCN",
    "GraphViews",
    "build_views",
    "build_hin_adjacency",
]
