"""Property-based tests (hypothesis) for data-pipeline invariants.

The preprocessing pipeline makes hard promises — the filter reaches a
true fixed point, remapping is a bijection, splits partition exactly,
metrics respect their bounds — and these properties must hold for *any*
group structure, not just the synthetic generator's output.  Hypothesis
builds adversarial deal-group lists to probe them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DealGroup, extract_task_a, extract_task_b, remap_ids, split_groups
from repro.data.preprocess import filter_min_interactions
from repro.eval.metrics import ndcg, rank_of_positive, reciprocal_rank


@st.composite
def deal_groups(draw, max_users=12, max_items=6, max_groups=14):
    """Random well-formed deal-group lists."""
    n = draw(st.integers(1, max_groups))
    groups = []
    for _ in range(n):
        initiator = draw(st.integers(0, max_users - 1))
        item = draw(st.integers(0, max_items - 1))
        pool = [u for u in range(max_users) if u != initiator]
        participants = draw(
            st.lists(st.sampled_from(pool), max_size=4, unique=True)
        )
        groups.append(DealGroup(initiator, item, tuple(participants)))
    return groups


@settings(max_examples=40, deadline=None)
@given(deal_groups(), st.integers(0, 4))
def test_filter_reaches_true_fixed_point(groups, threshold):
    data, _ = filter_min_interactions(groups, 12, 6, min_interactions=threshold)
    counts = {}
    for g in data.groups:
        counts[g.initiator] = counts.get(g.initiator, 0) + 1
        for p in g.participants:
            counts[p] = counts.get(p, 0) + 1
    # Every surviving user satisfies the threshold — no second pass needed.
    assert all(c >= threshold for c in counts.values())


@settings(max_examples=40, deadline=None)
@given(deal_groups())
def test_remap_is_bijective_and_structure_preserving(groups):
    remapped, user_map, item_map = remap_ids(groups)
    # Bijection: distinct originals -> distinct new ids, contiguous range.
    assert sorted(user_map.values()) == list(range(len(user_map)))
    assert sorted(item_map.values()) == list(range(len(item_map)))
    # Structure preserved group-by-group.
    for old, new in zip(groups, remapped):
        assert user_map[old.initiator] == new.initiator
        assert item_map[old.item] == new.item
        assert tuple(user_map[p] for p in old.participants) == new.participants


@settings(max_examples=40, deadline=None)
@given(deal_groups(), st.integers(0, 2**31 - 1))
def test_split_partitions_exactly(groups, seed):
    train, val, test = split_groups(groups, (7, 3, 1), seed)
    assert len(train) + len(val) + len(test) == len(groups)
    # Multiset equality: every group appears exactly once across splits.
    combined = sorted(
        (g.initiator, g.item, g.participants) for g in train + val + test
    )
    original = sorted((g.initiator, g.item, g.participants) for g in groups)
    assert combined == original


@settings(max_examples=40, deadline=None)
@given(deal_groups())
def test_sample_extraction_counts(groups):
    task_a = extract_task_a(groups)
    task_b = extract_task_b(groups)
    assert len(task_a) == len(groups)
    assert len(task_b) == sum(g.size for g in groups)
    # Every task-B triple's group index points at a group containing it.
    for k in range(len(task_b)):
        g = groups[int(task_b.group_index[k])]
        assert task_b.participants[k] in g.participants
        assert task_b.users[k] == g.initiator


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=20
    ),
    st.integers(0, 19),
)
def test_rank_of_positive_bounds_and_metrics(scores, pos_index):
    pos_index = pos_index % len(scores)
    rank = rank_of_positive(scores, pos_index)
    assert 1 <= rank <= len(scores)
    for cutoff in (1, 10, 100):
        rr = reciprocal_rank(rank, cutoff)
        nd = ndcg(rank, cutoff)
        assert 0.0 <= rr <= 1.0
        assert 0.0 <= nd <= 1.0
        assert nd >= rr or rank == 1  # NDCG decays more gently


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=10
    )
)
def test_rank_improves_when_positive_score_rises(scores):
    # Monotonicity: raising the positive's score never worsens its rank.
    before = rank_of_positive(scores, 0)
    boosted = [scores[0] + 100.0] + scores[1:]
    after = rank_of_positive(boosted, 0)
    assert after <= before
