"""Ranking metrics: MRR@N and NDCG@N (plus HR@N).

The paper evaluates with MRR@N (mean reciprocal rank) and NDCG@N
(normalized discounted cumulative gain), Sec. III-D.  Every test instance
has exactly one positive inside a candidate list (1 positive : 9 or 99
negatives), so per-instance:

* ``MRR@N  = 1/rank``            if ``rank <= N`` else 0
* ``NDCG@N = 1/log2(rank + 1)``  if ``rank <= N`` else 0  (IDCG = 1)
* ``HR@N   = 1``                 if ``rank <= N`` else 0

where ``rank`` is the 1-based position of the positive when candidates
are sorted by descending score.

Ranking is fully vectorized: :func:`ranks_of_positives` ranks a whole
``(n_instances, n_candidates)`` score matrix in one shot, which is what
the batched evaluation protocol feeds it; :func:`rank_of_positive` is
the single-list form.  Both use the same pessimistic tie convention, so
the batched protocol is bit-identical to a per-instance loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "rank_of_positive",
    "ranks_of_positives",
    "reciprocal_rank",
    "ndcg",
    "hit",
    "RankingAccumulator",
]


def rank_of_positive(scores: Sequence[float], positive_index: int = 0) -> int:
    """1-based rank of ``scores[positive_index]`` under descending sort.

    Ties are broken *against* the positive (ties with negatives count as
    ranked above it), the pessimistic convention — a model cannot earn
    metric mass by outputting constant scores.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if not 0 <= positive_index < scores.size:
        raise IndexError(
            f"positive_index {positive_index} outside candidate list of size {scores.size}"
        )
    target = scores[positive_index]
    others = np.delete(scores, positive_index)
    return int(1 + (others >= target).sum())


def ranks_of_positives(scores: np.ndarray, positive_index: int = 0) -> np.ndarray:
    """Vectorized :func:`rank_of_positive` over a whole score matrix.

    Parameters
    ----------
    scores: ``(n_instances, n_candidates)`` matrix — one candidate list
        per row, all rows sharing the positive's column.
    positive_index: column of the positive candidate.

    Returns
    -------
    np.ndarray
        ``(n_instances,)`` int64 1-based ranks with the same pessimistic
        tie convention as :func:`rank_of_positive`: the positive's rank
        is ``#(candidates >= positive)`` including itself exactly once.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected a 2-D score matrix, got shape {scores.shape}")
    if not 0 <= positive_index < scores.shape[1]:
        raise IndexError(
            f"positive_index {positive_index} outside candidate lists of size {scores.shape[1]}"
        )
    target = scores[:, positive_index][:, None]
    # The positive compares >= to itself exactly once, which contributes
    # the "+1" of the 1-based rank; every tied negative also counts,
    # matching the pessimistic convention.
    ranks = (scores >= target).sum(axis=1).astype(np.int64)
    # A NaN positive compares False even to itself; the scalar form then
    # yields rank 1 (no comparison wins against NaN) — mirror that
    # instead of emitting an invalid rank 0.
    return np.where(np.isnan(target[:, 0]), np.int64(1), ranks)


def reciprocal_rank(rank: int, cutoff: int) -> float:
    """``1/rank`` truncated at ``cutoff`` (the @N in MRR@N)."""
    _check_rank(rank, cutoff)
    return 1.0 / rank if rank <= cutoff else 0.0


def ndcg(rank: int, cutoff: int) -> float:
    """Single-positive NDCG@cutoff: ``1/log2(rank+1)`` inside the cutoff.

    With one relevant item the ideal DCG is 1, so DCG is already
    normalized.
    """
    _check_rank(rank, cutoff)
    return 1.0 / np.log2(rank + 1.0) if rank <= cutoff else 0.0


def hit(rank: int, cutoff: int) -> float:
    """Hit-rate indicator: 1 if the positive made the top-``cutoff``."""
    _check_rank(rank, cutoff)
    return 1.0 if rank <= cutoff else 0.0


def _check_rank(rank: int, cutoff: int) -> None:
    if rank < 1:
        raise ValueError(f"rank is 1-based, got {rank}")
    if cutoff < 1:
        raise ValueError(f"cutoff must be >= 1, got {cutoff}")


@dataclass
class RankingAccumulator:
    """Accumulates per-instance ranks and reports mean metrics.

    One accumulator per (task, protocol) pair; the evaluation protocol
    feeds it the ranks of the test instances' positives (a whole array
    at once via :meth:`add_ranks` on the batched path) and finally calls
    :meth:`result`.
    """

    cutoff: int
    _ranks: list = None

    def __post_init__(self) -> None:
        if self.cutoff < 1:
            raise ValueError(f"cutoff must be >= 1, got {self.cutoff}")
        self._ranks = []

    def add(self, rank: int) -> None:
        """Record one test instance's positive rank."""
        if rank < 1:
            raise ValueError(f"rank is 1-based, got {rank}")
        self._ranks.append(int(rank))

    def add_ranks(self, ranks: np.ndarray) -> None:
        """Record a whole array of ranks (validated vectorised)."""
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and int(ranks.min()) < 1:
            raise ValueError(f"rank is 1-based, got {int(ranks.min())}")
        self._ranks.extend(int(r) for r in ranks)

    def extend(self, ranks: Iterable[int]) -> None:
        """Record many ranks at once."""
        for r in ranks:
            self.add(r)

    def __len__(self) -> int:
        return len(self._ranks)

    def result(self) -> Dict[str, float]:
        """Mean MRR@cutoff / NDCG@cutoff / HR@cutoff over recorded instances."""
        if not self._ranks:
            raise ValueError("no ranks recorded")
        n = self.cutoff
        ranks = np.asarray(self._ranks, dtype=np.float64)
        inside = ranks <= n
        return {
            f"MRR@{n}": float(np.mean(np.where(inside, 1.0 / ranks, 0.0))),
            f"NDCG@{n}": float(np.mean(np.where(inside, 1.0 / np.log2(ranks + 1.0), 0.0))),
            f"HR@{n}": float(np.mean(inside.astype(np.float64))),
        }
