"""First-order optimizers.

The paper trains with Adam (Sec. II-F, learning rate 2e-4 in Table II);
SGD is included for tests and sanity baselines.  Optimizers hold no
references to the computation graph — only to the parameter tensors whose
``.grad`` buffers the backward pass fills.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base class: owns a parameter list and a ``zero_grad`` helper."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        """Apply one descent update to every parameter with a gradient."""
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for i, p in enumerate(self.params):
            remote = getattr(p, "remote_sgd_step", None)
            if remote is not None:
                # Cross-process shard parameters apply the identical
                # update inside their worker (grad and velocity live
                # there); True means a gradient existed and was applied.
                if remote(
                    lr=self.lr, momentum=self.momentum, weight_decay=self.weight_decay
                ):
                    p.bump_version()
                    p.touched_rows = None
                continue
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity[i]
                vel *= self.momentum
                vel += grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * grad
            p.bump_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the paper's optimizer.

    Parameters follow the PyTorch defaults except ``lr`` which the paper
    sets to ``2e-4`` (Table II, ``ρ``).

    ``lazy_rows=True`` enables *sparse per-shard updates*: a parameter
    whose gradient provably touched only some rows — embedding-store
    gathers record them in ``Parameter.touched_rows`` — gets its
    moment-decay and data update applied to those rows only, turning the
    per-step cost of a sharded table from O(num_rows·dim) into O(touched
    ·dim).  This is standard *lazy* Adam semantics: an untouched row's
    moments do not decay that step, so results diverge from dense Adam
    once a previously-touched row sits out a step (the first step from
    fresh state is bit-identical).  Parameters without row bookkeeping
    (every dense weight matrix) always take the dense update.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 2e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        lazy_rows: bool = False,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.lazy_rows = lazy_rows
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one bias-corrected adaptive update."""
        self._step += 1
        t = self._step
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            remote = getattr(p, "remote_adam_step", None)
            if remote is not None:
                # Cross-process shard parameters apply the identical
                # per-row update inside their worker (grad, moments and
                # the touched-row record live there); True means a
                # gradient existed and was applied.
                if remote(
                    lr=self.lr,
                    beta1=self.beta1,
                    beta2=self.beta2,
                    eps=self.eps,
                    weight_decay=self.weight_decay,
                    t=t,
                    lazy=self.lazy_rows,
                ):
                    p.bump_version()
                    p.touched_rows = None
                continue
            if p.grad is None:
                continue
            rows = getattr(p, "touched_rows", None) if self.lazy_rows else None
            if rows is not None and rows is not True and p.data.ndim >= 1:
                self._row_update(p, np.asarray(rows, dtype=np.int64), i, bc1, bc2)
            else:
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                m, v = self._m[i], self._v[i]
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad**2
                p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.bump_version()
            p.touched_rows = None

    def _row_update(self, p: Parameter, rows: np.ndarray, i: int, bc1: float, bc2: float) -> None:
        """Lazy Adam on the touched rows only (identical per-row math)."""
        grad = p.grad[rows]
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data[rows]
        m, v = self._m[i], self._v[i]
        m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * grad
        v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * grad**2
        m[rows] = m_rows
        v[rows] = v_rows
        p.data[rows] -= self.lr * (m_rows / bc1) / (np.sqrt(v_rows / bc2) + self.eps)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Deep expert/gate stacks occasionally spike
    early in training; clipping keeps the Adam updates well-scaled.

    Cross-process shard parameters contribute their worker-held
    gradient's square-sum through the duck-typed ``remote_grad_sqsum``
    hook, *at their position in the parameter order* — floating-point
    summation order is part of the bit-parity contract with the
    in-process layouts — and are rescaled in place inside their worker.
    """
    entries = []
    total_sq = 0.0
    for p in params:
        sqsum = getattr(p, "remote_grad_sqsum", None)
        if sqsum is not None:
            term = sqsum()
            if term is None:
                continue
            total_sq += term
            entries.append((p, True))
        else:
            if p.grad is None:
                continue
            total_sq += float((p.grad**2).sum())
            entries.append((p, False))
    total = float(np.sqrt(total_sq))
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p, remote in entries:
            if remote:
                p.remote_scale_grad(scale)
            else:
                p.grad *= scale
    return total
