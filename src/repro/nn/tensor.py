"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the reproduction: the paper's reference
implementation uses PyTorch, which is unavailable in this offline
environment, so we implement the subset of tensor autograd that MGBR and
the baselines need — dense broadcasting arithmetic, matrix products
(including batched), gather/scatter row indexing for embedding lookups,
reductions, concatenation, and the usual activation functions (the
nonlinearities themselves live in :mod:`repro.nn.functional`).

Design notes
------------
* A :class:`Tensor` wraps an ``np.ndarray`` (``float64`` by default so the
  finite-difference gradient checker in :mod:`repro.nn.gradcheck` is
  meaningful) plus an optional gradient buffer and a backward closure.
* The graph is a DAG of tensors; :meth:`Tensor.backward` runs a
  depth-first topological sort and accumulates gradients with ``+=`` so
  shared sub-expressions (e.g. the GCN embeddings feeding three gates)
  receive the sum of their downstream gradients.
* Broadcasting follows NumPy semantics; :func:`_unbroadcast` folds a
  gradient back onto the operand's original shape by summing the
  broadcast axes.
* :func:`no_grad` disables graph construction, mirroring
  ``torch.no_grad`` — evaluation loops use it to avoid building graphs
  for millions of candidate scores.

Thread-locality
---------------
The grad-enabled flag and the default dtype are **thread-local** (each
thread starts at the ``grad enabled / float64`` defaults).  The serving
engine (:mod:`repro.serving.engine`) runs its flushes under
``no_grad()``/``dtype_scope`` on a dedicated worker thread, and a
trainer concurrently building graphs on the main thread must not see
those scopes; conversely a trainer's scopes never bleed into serving.
Scopes therefore cannot be used to communicate state across threads —
enter them on the thread that does the math.

Dtype policy
------------
The substrate carries a global *default dtype* (:func:`get_default_dtype`
/ :func:`set_default_dtype`).  It is ``float64`` out of the box — the
finite-difference gradient checker and training both rely on double
precision — but serving-style scoring can opt into ``float32`` to halve
memory bandwidth on the hot ``spmm``/matmul paths:

* :func:`dtype_scope` temporarily switches the default dtype, so every
  tensor created inside the block (including op results) is cast to it;
* :func:`inference_mode` combines :func:`no_grad` with a ``float32``
  (or caller-chosen) :func:`dtype_scope` — the evaluation protocol's
  ``dtype="float32"`` fast path uses exactly this.

Gradients always accumulate in the owning tensor's dtype, so training at
the ``float64`` default is bit-for-bit unaffected by the policy's
existence.

Array backends
--------------
Every array primitive (arithmetic, matmuls, transcendentals, reductions,
gathers/scatters) is executed through the thread-local
:class:`repro.nn.backend.ArrayBackend` — the tape itself only knows
about graph plumbing (parents, closures, :func:`_unbroadcast`).  NumPy
is the reference backend; see :mod:`repro.nn.backend` for the contract
and the instrumented counting backend used by the copy-audit tests.

Each thread *starts* at the process default backend — the numpy
reference, or whatever ``REPRO_BACKEND`` names (the thread-parallel
GIL-releasing backend in :mod:`repro.nn.parallel` registers as
``"parallel"``).  The thread-local selection does **not** cross thread
spawns, so code handing work to a pool must capture its active backend
at submission (:func:`repro.nn.backend.bind_backend`) — the serving
engine's worker thread and the parallel backend's own chunk tasks both
do.  Every backend is bit-identical to the reference at float64, so ops
here never care which one is active.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import backend as _backend

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "inference_mode",
    "concat",
    "stack",
    "take_rows",
    "scatter_rows_sum",
    "scatter_cache_stats",
    "clear_scatter_cache",
]

# Thread-local backend holder (shared with repro.nn.backend); ops read
# ``_B_STATE.backend`` directly to keep the hot path to one attribute load.
_B_STATE = _backend._STATE

ArrayLike = Union[np.ndarray, float, int, Sequence]

_SUPPORTED_DTYPES = (np.float32, np.float64)


class _ThreadState(threading.local):
    """Per-thread autograd mode and default dtype.

    ``threading.local`` re-runs ``__init__`` on first access from each
    new thread, so every thread independently starts at the safe
    defaults (grad enabled, float64) no matter what scopes other
    threads have entered.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.default_dtype = np.dtype(np.float64)


_STATE = _ThreadState()


def _coerce_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in tuple(np.dtype(d) for d in _SUPPORTED_DTYPES):
        raise ValueError(
            f"unsupported tensor dtype {dtype!r}; supported: float32, float64"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype newly created tensors (and op results) are cast to."""
    return _STATE.default_dtype


def set_default_dtype(dtype) -> None:
    """Set the calling thread's default dtype (``float32``/``float64``).

    Training and gradcheck assume the ``float64`` default; prefer the
    scoped :func:`dtype_scope` / :func:`inference_mode` for the
    ``float32`` inference fast path so the change cannot leak.  The
    setting is thread-local: other threads keep their own default.
    """
    _STATE.default_dtype = _coerce_dtype(dtype)


@contextlib.contextmanager
def dtype_scope(dtype):
    """Temporarily switch this thread's default tensor dtype."""
    previous = _STATE.default_dtype
    _STATE.default_dtype = _coerce_dtype(dtype)
    try:
        yield
    finally:
        _STATE.default_dtype = previous


@contextlib.contextmanager
def inference_mode(dtype=np.float32):
    """``no_grad()`` + :func:`dtype_scope` — the serving fast path.

    Inside the block no autograd graphs are built and every op result is
    cast to ``dtype`` (default ``float32``), halving memory bandwidth on
    the dense/sparse matmul hot paths.
    """
    with no_grad(), dtype_scope(dtype):
        yield


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _STATE.grad_enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction.

    Inside the block every operation produces constant tensors with
    ``requires_grad=False`` and no backward closure, exactly like
    ``torch.no_grad()``.  Used by evaluation, serving flushes and the
    trainers' embedding pre-computation step.  Thread-local: only the
    entering thread stops recording.
    """
    previous = _STATE.grad_enabled
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


# ----------------------------------------------------------------------
# CSR one-hot scatter-matrix cache
# ----------------------------------------------------------------------
# The planned training path back-propagates through the *same* scatter
# maps (``plan.user_pos`` / ``item_pos`` / ``part_pos`` and the per-shard
# inverses) roughly a dozen times per step, and the maps themselves are
# long-lived plan attributes.  The CSR operator depends only on the
# index array, its length, the row count and the accumulate dtype, so —
# like ``Linear.folded_blocks``'s version key — we key on the identity
# of the index array and revalidate with ``is`` before reuse (the cache
# holds a strong reference, so an id can never be silently recycled).
# Index arrays must not be mutated in place; plan arrays never are.
_SCATTER_CACHE_CAPACITY = 64
_SCATTER_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_SCATTER_CACHE_LOCK = threading.Lock()
_SCATTER_CACHE_COUNTS = {"hits": 0, "misses": 0, "evictions": 0}


def scatter_cache_stats() -> dict:
    """Snapshot of the CSR scatter-matrix cache counters (+ current size)."""
    with _SCATTER_CACHE_LOCK:
        snap = dict(_SCATTER_CACHE_COUNTS)
        snap["size"] = len(_SCATTER_CACHE)
        return snap


def clear_scatter_cache() -> None:
    """Drop all cached CSR scatter operators and zero the counters."""
    with _SCATTER_CACHE_LOCK:
        _SCATTER_CACHE.clear()
        for key in _SCATTER_CACHE_COUNTS:
            _SCATTER_CACHE_COUNTS[key] = 0


def _cached_one_hot(index: np.ndarray, n_rows: int, dtype: np.dtype):
    """The CSR one-hot operator for ``index``, built once per plan/shape."""
    key = (id(index), index.size, n_rows, dtype.str)
    with _SCATTER_CACHE_LOCK:
        entry = _SCATTER_CACHE.get(key)
        if entry is not None and entry[0] is index:
            _SCATTER_CACHE.move_to_end(key)
            _SCATTER_CACHE_COUNTS["hits"] += 1
            return entry[1]
    import scipy.sparse as sp  # deferred: keep the numpy-only core lazy

    order = np.argsort(index, kind="stable")
    counts = np.bincount(index, minlength=n_rows)
    indptr = np.empty(n_rows + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    one_hot = sp.csr_matrix(
        (np.ones(index.size, dtype=dtype), order, indptr),
        shape=(n_rows, index.size),
    )
    with _SCATTER_CACHE_LOCK:
        _SCATTER_CACHE_COUNTS["misses"] += 1
        _SCATTER_CACHE[key] = (index, one_hot)
        _SCATTER_CACHE.move_to_end(key)
        while len(_SCATTER_CACHE) > _SCATTER_CACHE_CAPACITY:
            _SCATTER_CACHE.popitem(last=False)
            _SCATTER_CACHE_COUNTS["evictions"] += 1
    return one_hot


def _scatter_rows_add(
    index: np.ndarray,
    grad: np.ndarray,
    n_rows: int,
    dtype,
) -> np.ndarray:
    """Fresh ``(n_rows, ...)`` buffer with ``buffer[index] += grad`` applied.

    The adjoint of every row gather (:func:`take_rows`,
    ``Tensor.__getitem__`` with an integer vector, and the scoring plan's
    gather/scatter maps).  Semantically ``np.zeros(...)`` + ``np.add.at``
    — and *bit-identical* to it: the fast path expresses the scatter as
    a sparse one-hot matmul ``M @ grad`` where CSR row ``r`` holds the
    positions ``j`` with ``index[j] == r`` in occurrence order, and
    scipy's CSR·dense kernel accumulates each row's terms sequentially
    left-to-right — the same order ``add.at``'s element loop uses.
    ``np.add.at`` is a per-element indexed loop, 3-7× slower at the
    ``(unique_requests, K·d)`` gradient scatters the planned training
    path back-propagates every step.
    """
    b = _B_STATE.backend
    out_shape = (n_rows,) + grad.shape[1:]
    if index.size == 0:
        return b.zeros(out_shape, dtype=dtype)
    if index.size < 512 or index.min() < 0:
        # Tiny scatters are not worth building a sparse operator for;
        # negative indices alias positive rows, which only add.at's
        # sequential loop resolves.
        out = b.zeros(out_shape, dtype=dtype)
        b.add_at(out, index, grad)
        return out
    one_hot = _cached_one_hot(index, n_rows, np.dtype(dtype))
    # Cast before multiplying: add.at accumulates each element in the
    # output's dtype, so summing in a narrower grad dtype first would
    # round differently.  ``ensure_contiguous`` elides the copy when the
    # gradient already arrives contiguous in the accumulate dtype (the
    # common case the copy-audit tests pin down).
    flat = b.ensure_contiguous(grad, dtype).reshape(index.size, -1)
    return np.asarray(one_hot @ flat).reshape(out_shape)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    NumPy broadcasting either prepends length-1 axes or stretches existing
    length-1 axes; the adjoint of both is a sum over those axes.
    """
    if grad.shape == shape:
        return grad
    b = _B_STATE.backend
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = b.sum(grad, axis=tuple(range(extra)))
    # Sum over axes that were stretched from 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = b.sum(grad, axis=axes, keepdims=True)
    return b.reshape(grad, shape)


class Tensor:
    """A NumPy array with reverse-mode automatic differentiation.

    Attributes
    ----------
    data:
        The underlying ``np.ndarray`` value.
    grad:
        Accumulated gradient of the same shape, or ``None`` before
        :meth:`backward` (or for constants).
    requires_grad:
        Whether this tensor participates in differentiation.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
        dtype=None,
    ) -> None:
        if isinstance(data, Tensor):  # pragma: no cover - defensive
            data = data.data
        state = _STATE
        arr = _B_STATE.backend.asarray(
            data, dtype=dtype if dtype is not None else state.default_dtype
        )
        self.data = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and state.grad_enabled
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total element count."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor (alias for :meth:`transpose`)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{tag})"

    def numpy(self) -> np.ndarray:
        """Return the raw value (no copy); do not mutate in place."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a constant tensor sharing this tensor's data."""
        out = Tensor(self.data)
        out.requires_grad = False
        return out

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        b = _B_STATE.backend
        if self.grad is None:
            self.grad = b.zeros_like(self.data)
        b.add(self.grad, grad, out=self.grad)

    def zero_grad(self) -> None:
        """Clear the gradient buffer (used by optimizers between steps)."""
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some downstream scalar with respect to this
            tensor.  Defaults to 1 for scalar tensors (the usual
            ``loss.backward()`` call); required for non-scalars.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        b = _B_STATE.backend
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = b.ones(self.data.shape, dtype=self.data.dtype)
        grad = b.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = b.broadcast_to(grad, self.data.shape).copy()

        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Construct a graph node whose grad flows to ``parents``."""
        needs = _STATE.grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data)
        if needs:
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._make(_B_STATE.backend.add(self.data, other.data), (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_B_STATE.backend.negative(g))

        return Tensor._make(_B_STATE.backend.negative(self.data), (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if self.requires_grad:
                self._accumulate(_unbroadcast(b.multiply(g, other.data), self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(b.multiply(g, self.data), other.data.shape))

        return Tensor._make(
            _B_STATE.backend.multiply(self.data, other.data), (self, other), backward
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if self.requires_grad:
                self._accumulate(_unbroadcast(b.divide(g, other.data), self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(
                        b.divide(
                            b.multiply(b.negative(g), self.data),
                            b.power(other.data, 2),
                        ),
                        other.data.shape,
                    )
                )

        return Tensor._make(
            _B_STATE.backend.divide(self.data, other.data), (self, other), backward
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if self.requires_grad:
                self._accumulate(
                    b.multiply(b.multiply(g, exponent), b.power(self.data, exponent - 1))
                )

        return Tensor._make(_B_STATE.backend.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if self.requires_grad:
                if other.data.ndim == 1:
                    # (..., n) @ (n,) -> (...): outer-product adjoint.
                    grad_self = b.multiply(b.expand_dims(g, -1), other.data)
                else:
                    grad_self = b.matmul(g, b.swapaxes(other.data, -1, -2))
                if self.data.ndim == 1 and grad_self.ndim > 1:
                    grad_self = b.sum(grad_self, axis=tuple(range(grad_self.ndim - 1)))
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = b.multiply(b.expand_dims(self.data, -1), b.expand_dims(g, -2))
                elif other.data.ndim == 1:
                    grad_other = b.matmul(
                        b.swapaxes(self.data, -1, -2), b.expand_dims(g, -1)
                    )[..., 0]
                    if grad_other.ndim > 1:
                        grad_other = b.sum(grad_other, axis=tuple(range(grad_other.ndim - 1)))
                else:
                    grad_other = b.matmul(b.swapaxes(self.data, -1, -2), g)
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return Tensor._make(
            _B_STATE.backend.matmul(self.data, other.data), (self, other), backward
        )

    # ------------------------------------------------------------------
    # Elementwise transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        value = _B_STATE.backend.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_B_STATE.backend.multiply(g, value))

        return Tensor._make(value, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_B_STATE.backend.divide(g, self.data))

        return Tensor._make(_B_STATE.backend.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        value = _B_STATE.backend.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if self.requires_grad:
                self._accumulate(b.divide(b.multiply(g, 0.5), value))

        return Tensor._make(value, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at 0)."""

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if self.requires_grad:
                self._accumulate(b.multiply(g, b.sign(self.data)))

        return Tensor._make(_B_STATE.backend.absolute(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        mask = (self.data >= low) & (self.data <= high)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_B_STATE.backend.multiply(g, mask))

        return Tensor._make(_B_STATE.backend.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    grad = b.expand_dims(grad, a)
            self._accumulate(b.broadcast_to(grad, self.data.shape).copy())

        return Tensor._make(
            _B_STATE.backend.sum(self.data, axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when ``None``)."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties split gradient equally."""
        value = _B_STATE.backend.amax(self.data, axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> None:
            b = _B_STATE.backend
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                grad = b.expand_dims(grad, axis)
            elif axis is None and not keepdims:
                grad = b.broadcast_to(grad, (1,) * self.data.ndim)
            mask = self.data == value
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(
                b.divide(b.multiply(b.broadcast_to(grad, self.data.shape), mask), counts)
            )

        out_value = (
            value if keepdims or axis is None else _B_STATE.backend.squeeze(value, axis=axis)
        )
        if axis is None and not keepdims:
            out_value = np.asarray(out_value).reshape(())
        return Tensor._make(out_value, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of this tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_B_STATE.backend.reshape(g, self.data.shape))

        return Tensor._make(_B_STATE.backend.reshape(self.data, shape), (self,), backward)

    def transpose(self, axis0: int = -2, axis1: int = -1) -> "Tensor":
        """Swap two axes (defaults transpose the trailing matrix dims)."""

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_B_STATE.backend.swapaxes(g, axis0, axis1))

        return Tensor._make(
            _B_STATE.backend.swapaxes(self.data, axis0, axis1), (self,), backward
        )

    def __getitem__(self, key) -> "Tensor":
        """Slice / fancy-index; gradients scatter-add back into place.

        A 1-D integer-array key (the scoring plan's scatter maps) takes
        the :func:`_scatter_rows_add` fast backward; every other index
        expression keeps the general ``np.add.at`` adjoint.
        """
        if isinstance(key, Tensor):
            key = key.data.astype(np.int64)
        value = self.data[key]
        fast_rows = (
            isinstance(key, np.ndarray)
            and key.ndim == 1
            and np.issubdtype(key.dtype, np.integer)
        )

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if fast_rows:
                self._accumulate(
                    _scatter_rows_add(key, g, self.data.shape[0], self.data.dtype)
                )
                return
            b = _B_STATE.backend
            grad = b.zeros_like(self.data)
            b.add_at(grad, key, g)
            self._accumulate(grad)

        return Tensor._make(value, (self,), backward)

    # ------------------------------------------------------------------
    # Convenience constructors on instances
    # ------------------------------------------------------------------
    def zeros_like(self) -> "Tensor":
        """Constant zero tensor with this tensor's shape."""
        return Tensor(_B_STATE.backend.zeros_like(self.data))


def _as_tensor(value: ArrayLike) -> Tensor:
    """Coerce scalars/arrays into constant tensors (no-op for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def tensor(data: ArrayLike, requires_grad: bool = False, name: str = "") -> Tensor:
    """Create a tensor (the public constructor).

    Parameters
    ----------
    data: array-like initial value (cast to the current default dtype,
        ``float64`` unless inside a :func:`dtype_scope`).
    requires_grad: whether to track operations for differentiation.
    name: optional debugging label.
    """
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """Tensor of zeros with the given shape."""
    return Tensor(
        _B_STATE.backend.zeros(shape, dtype=_STATE.default_dtype), requires_grad=requires_grad
    )


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """Tensor of ones with the given shape."""
    return Tensor(
        _B_STATE.backend.ones(shape, dtype=_STATE.default_dtype), requires_grad=requires_grad
    )


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (the paper's ``||`` operator).

    Gradient slices flow back to each operand.  This is the workhorse of
    MGBR: view concatenation (Eq. 4-6), gate inputs (Eq. 7-9) and the
    adjusted-gate pair features (Eq. 11) are all concatenations.
    """
    tensors = [_as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concat() needs at least one tensor")
    value = _B_STATE.backend.concatenate([t.data for t in tensors], axis=axis)
    ax = axis % value.ndim
    sizes = [t.data.shape[ax] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[ax] = slice(int(start), int(stop))
                t._accumulate(g[tuple(index)])

    return Tensor._make(value, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new axis.

    Used to assemble the per-layer expert banks ``E^l`` from the ``K``
    individual expert outputs before the gate attention.
    """
    tensors = [_as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("stack() needs at least one tensor")
    value = _B_STATE.backend.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        slices = np.moveaxis(g, axis, 0)
        for t, piece in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(value, tuple(tensors), backward)


def take_rows(source: Tensor, index: ArrayLike) -> Tensor:
    """Gather rows ``source[index]`` (embedding lookup).

    ``index`` is a 1-D integer array; the gradient scatter-adds into the
    source rows (via the sort-based :func:`_scatter_rows_add`, bit-equal
    to ``np.add.at``), which makes repeated indices (mini-batches and
    scoring plans hitting the same entity) accumulate correctly.
    """
    idx = np.asarray(index, dtype=np.int64)
    value = _B_STATE.backend.take(source.data, idx)

    def backward(g: np.ndarray) -> None:
        if source.requires_grad:
            source._accumulate(
                _scatter_rows_add(idx, g, source.data.shape[0], source.data.dtype)
            )

    return Tensor._make(value, (source,), backward)


def scatter_rows_sum(rows: Tensor, index: ArrayLike, n_rows: int) -> Tensor:
    """Scatter-add ``rows`` into an ``(n_rows, d)`` zero tensor.

    The adjoint of :func:`take_rows`; used for segment-sum style pooling
    (e.g. averaging participant embeddings per group).
    """
    idx = np.asarray(index, dtype=np.int64)
    value = _scatter_rows_add(idx, rows.data, n_rows, rows.data.dtype)

    def backward(g: np.ndarray) -> None:
        if rows.requires_grad:
            rows._accumulate(_B_STATE.backend.take(g, idx))

    return Tensor._make(value, (rows,), backward)
