"""``repro.nn.parallel`` — thread-parallel, GIL-releasing array backend.

:class:`ParallelBackend` implements the :data:`repro.nn.backend.PRIMITIVES`
contract with row-chunked formulations that let one flush use every core:
elementwise transcendentals, per-row reductions, ``take`` and sorted
``add_at`` split their leading axis into contiguous row chunks executed
on a persistent :class:`~concurrent.futures.ThreadPoolExecutor` (NumPy
releases the GIL inside ufunc inner loops on large contiguous operands,
so the chunks genuinely overlap), while ``matmul`` stays inherited —
BLAS already drops the GIL and threads itself.

Bit-parity is the design constraint, not an afterthought.  Every
parallelized primitive is *row-independent*: an elementwise ufunc, a
reduction over a non-leading axis (NumPy's pairwise ``np.sum`` order is
preserved because each output row's reduction happens entirely inside
one chunk), a row gather, or a scatter-add whose sorted index makes
chunk destinations disjoint.  Chunking those is bitwise invariant under
*any* chunk grid, so float64 results are identical to
:class:`~repro.nn.backend.NumpyBackend` regardless of thread count —
asserted by the conformance lane and the thread-stress tests.

GEMMs are deliberately **not** row-chunked: OpenBLAS selects kernels and
k-blocking by the full problem shape, so ``(A @ B)[s:e]`` and
``A[s:e] @ B`` differ in last-bit rounding for many shapes (measured on
this container for shapes as small as ``(m, 96) @ (96, 12)`` — every
row changes when ``m`` does).  Full-batch matmul keeps serial parity
and still parallelizes through BLAS's own GIL-free threads.

Two thresholds gate the parallel path (constructor arguments, with
environment defaults for the registered instance):

* ``n_threads`` (``REPRO_PARALLEL_THREADS``, default ``os.cpu_count()``)
  — pool width; ``1`` disables chunking entirely, so a 1-CPU container
  pays only the threshold comparison over the serial backend.
* ``min_parallel_rows`` (``REPRO_PARALLEL_MIN_ROWS``, default 8192) —
  arrays with fewer leading rows take the inherited serial path
  unchanged; each chunk keeps at least half the threshold so dispatch
  overhead stays amortized.

The module registers a default instance under the name ``"parallel"``
at import, so ``backend_scope("parallel")``, the ``backend`` knobs on
serving/eval, and the conformance-parametrized test lane all see it.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.backend import (
    NumpyBackend,
    bind_backend,
    refresh_default_backend,
    register_backend,
)

__all__ = ["ParallelBackend", "THREADS_ENV", "MIN_ROWS_ENV"]

#: Environment default for the registered instance's pool width.
THREADS_ENV = "REPRO_PARALLEL_THREADS"

#: Environment default for the registered instance's row threshold.
MIN_ROWS_ENV = "REPRO_PARALLEL_MIN_ROWS"

# Pool worker threads mark themselves here so a primitive invoked from
# *inside* a chunk task always takes the serial path: nested submission
# could deadlock a saturated pool, and the fused slab runner relies on
# slab bodies executing serially within their slab.
_IN_WORKER = threading.local()


def _mark_worker() -> None:
    _IN_WORKER.active = True


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError:
        return fallback


class ParallelBackend(NumpyBackend):
    """Reference numerics, row-chunked across a persistent thread pool.

    Inherits every primitive from :class:`NumpyBackend` and overrides
    the row-independent ones with chunked equivalents.  All overrides
    fall back to the inherited serial call whenever the operands do not
    qualify (too few rows, broadcasting that does not carry the full
    leading axis, unsorted scatter indices, non-ndarray inputs), so the
    backend is a strict superset of the reference semantics.
    """

    name = "parallel"

    def __init__(
        self,
        n_threads: Optional[int] = None,
        min_parallel_rows: Optional[int] = None,
    ) -> None:
        if n_threads is None:
            n_threads = _env_int(THREADS_ENV, 0) or (os.cpu_count() or 1)
        if min_parallel_rows is None:
            min_parallel_rows = _env_int(MIN_ROWS_ENV, 8192)
        self.n_threads = max(1, int(n_threads))
        self.min_parallel_rows = max(2, int(min_parallel_rows))
        # With one thread no sweep ever chunks; pre-deciding it here
        # lets every override bail to the inherited call before any
        # shape inspection — the "overhead ≤ threshold check" promise
        # for 1-CPU containers.
        self._serial_only = self.n_threads < 2
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_pid: Optional[int] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _get_pool(self) -> ThreadPoolExecutor:
        """The persistent pool, rebuilt after a fork (pid change)."""
        pool = self._pool
        if pool is not None and self._pool_pid == os.getpid():
            return pool
        with self._pool_lock:
            if self._pool is None or self._pool_pid != os.getpid():
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_threads,
                    thread_name_prefix="repro-parallel",
                    initializer=_mark_worker,
                )
                self._pool_pid = os.getpid()
            return self._pool

    def close(self) -> None:
        """Shut the pool down (tests; the registered instance never needs it)."""
        with self._pool_lock:
            if self._pool is not None and self._pool_pid == os.getpid():
                self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_pid = None

    # ------------------------------------------------------------------
    # Chunk planning / dispatch
    # ------------------------------------------------------------------
    def row_partition(self, n_rows: int) -> Optional[List[Tuple[int, int]]]:
        """Contiguous ``(start, stop)`` slabs for a parallel row sweep.

        ``None`` means "run serial": too few rows, a single-thread
        configuration, or a caller already inside a pool worker.  The
        grid depends only on ``(n_rows, n_threads, min_parallel_rows)``
        — never on runtime load — which is what the scheduling-
        determinism tests pin down.
        """
        if (
            n_rows < self.min_parallel_rows
            or self.n_threads < 2
            or getattr(_IN_WORKER, "active", False)
        ):
            return None
        # Every slab keeps >= min_parallel_rows // 2 rows so barely-over-
        # threshold sweeps split in two instead of shattering.
        max_slabs = max(1, (2 * n_rows) // self.min_parallel_rows)
        n_slabs = min(self.n_threads, max_slabs)
        if n_slabs < 2:
            return None
        step = -(-n_rows // n_slabs)
        return [(s, min(s + step, n_rows)) for s in range(0, n_rows, step)]

    def run_slabs(
        self,
        slabs: Sequence[Tuple[int, int]],
        body: Callable[[int, int, int], None],
    ) -> None:
        """Execute ``body(slab_index, start, stop)`` across the pool.

        Slab 0 runs inline on the calling thread (it would otherwise
        idle on the join); the submitting thread's active backend is
        captured and installed in each worker (``bind_backend``), so
        backend-routed calls inside a slab body resolve exactly as they
        would have on the caller.  The first slab exception is re-raised
        after every slab has finished — no partial writes race a
        propagating error.
        """
        if len(slabs) == 1:
            body(0, *slabs[0])
            return
        pool = self._get_pool()
        bound = bind_backend(body)
        futures = [
            pool.submit(bound, i, s, e)
            for i, (s, e) in enumerate(slabs[1:], start=1)
        ]
        error: Optional[BaseException] = None
        # The inline slab runs under the worker flag too: its body must
        # not re-chunk (and re-submit) while the pool drains the rest.
        prev = getattr(_IN_WORKER, "active", False)
        _IN_WORKER.active = True
        try:
            body(0, *slabs[0])
        except BaseException as exc:  # noqa: BLE001 — must still join
            error = exc
        finally:
            _IN_WORKER.active = prev
        for future in futures:
            try:
                future.result()
            except BaseException as exc:  # noqa: BLE001
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def _run_rows(self, slabs, body: Callable[[int, int], None]) -> None:
        self.run_slabs(slabs, lambda _i, s, e: body(s, e))

    # ------------------------------------------------------------------
    # Elementwise machinery
    # ------------------------------------------------------------------
    def _ew(self, ufunc, args, out, dtype=None):
        """Chunked ``ufunc(*args, out=out)`` when the result is row-wide.

        Operands that carry the full leading axis are sliced per chunk;
        broadcast operands (bias rows, ``(n, 1)`` columns only when they
        match rows, scalars) pass through whole.  Falls back to one
        serial call whenever anything is unusual — a non-ndarray
        sequence, an ``out`` of the wrong shape, 0-d results.
        """
        if self._serial_only:
            return ufunc(*args, out=out) if out is not None else ufunc(*args)
        shapes = []
        for a in args:
            if isinstance(a, np.ndarray):
                shapes.append(a.shape)
            elif np.ndim(a) == 0:
                shapes.append(())
            else:  # list/tuple operand: let NumPy handle it serially
                return ufunc(*args, out=out) if out is not None else ufunc(*args)
        first = shapes[0]
        if all(s == first for s in shapes):
            shape = first
        else:
            shape = np.broadcast_shapes(*shapes)
        slabs = self.row_partition(shape[0]) if shape else None
        if slabs is None or (out is not None and out.shape != shape):
            return ufunc(*args, out=out) if out is not None else ufunc(*args)
        rows, nd = shape[0], len(shape)
        sliced = [
            isinstance(a, np.ndarray) and a.ndim == nd and a.shape[0] == rows
            for a in args
        ]
        if out is None:
            if dtype is None:
                dtype = np.result_type(*args)
            if dtype == object:
                return ufunc(*args)
            out = np.empty(shape, dtype=dtype)

        def body(s, e):
            chunk = [a[s:e] if use else a for a, use in zip(args, sliced)]
            ufunc(*chunk, out=out[s:e])

        self._run_rows(slabs, body)
        return out

    # -- arithmetic -----------------------------------------------------
    def add(self, a, b, out=None):
        return self._ew(np.add, (a, b), out)

    def subtract(self, a, b, out=None):
        return self._ew(np.subtract, (a, b), out)

    def negative(self, a, out=None):
        return self._ew(np.negative, (a,), out)

    def multiply(self, a, b, out=None):
        return self._ew(np.multiply, (a, b), out)

    def divide(self, a, b, out=None):
        return self._ew(np.divide, (a, b), out)

    # ``power`` stays inherited: ``a ** e`` takes NumPy's small-integer
    # fast paths (``np.square`` for 2, ``np.sqrt`` for 0.5) whose results
    # a chunked ``np.power`` call would not reproduce bit-for-bit, and it
    # is nowhere near the planned hot path.

    # -- transcendental / elementwise ----------------------------------
    def exp(self, a, out=None):
        return self._ew(np.exp, (a,), out)

    def log(self, a):
        return self._ew(np.log, (a,), None)

    def log1p(self, a):
        return self._ew(np.log1p, (a,), None)

    def sqrt(self, a):
        return self._ew(np.sqrt, (a,), None)

    def absolute(self, a):
        return self._ew(np.absolute, (a,), None)

    def sign(self, a):
        return self._ew(np.sign, (a,), None)

    def tanh(self, a):
        return self._ew(np.tanh, (a,), None)

    def maximum(self, a, b, out=None):
        return self._ew(np.maximum, (a, b), out)

    def greater(self, a, b):
        return self._ew(np.greater, (a, b), None, dtype=np.bool_)

    def clip(self, a, low, high):
        if self._serial_only or not isinstance(a, np.ndarray) or a.ndim == 0:
            return np.clip(a, low, high)
        slabs = self.row_partition(a.shape[0])
        if slabs is None or np.ndim(low) != 0 or np.ndim(high) != 0:
            return np.clip(a, low, high)
        out = np.empty(a.shape, dtype=np.clip(a[:0], low, high).dtype)

        def body(s, e):
            np.clip(a[s:e], low, high, out=out[s:e])

        self._run_rows(slabs, body)
        return out

    def where(self, cond, a, b):
        if self._serial_only or not isinstance(cond, np.ndarray) or cond.ndim == 0:
            return np.where(cond, a, b)
        for operand in (a, b):
            if not isinstance(operand, np.ndarray) and np.ndim(operand) != 0:
                return np.where(cond, a, b)
        shape = np.broadcast_shapes(
            cond.shape, np.shape(a), np.shape(b)
        )
        slabs = self.row_partition(shape[0]) if shape else None
        if slabs is None:
            return np.where(cond, a, b)
        rows, nd = shape[0], len(shape)
        operands = (cond, a, b)
        sliced = [
            isinstance(x, np.ndarray) and x.ndim == nd and x.shape[0] == rows
            for x in operands
        ]
        dtype = np.result_type(a, b)
        if dtype == object:
            return np.where(cond, a, b)
        out = np.empty(shape, dtype=dtype)

        def body(s, e):
            chunk = [x[s:e] if use else x for x, use in zip(operands, sliced)]
            out[s:e] = np.where(*chunk)

        self._run_rows(slabs, body)
        return out

    # -- reductions -----------------------------------------------------
    def _reduce_rows(self, a, axis, keepdims, out, reducer):
        """Row-chunked reduction over a non-leading axis, or ``None``."""
        if (
            self._serial_only
            or not isinstance(a, np.ndarray)
            or a.ndim < 2
            or axis is None
            or isinstance(axis, tuple)
        ):
            return None
        ax = axis % a.ndim
        if ax == 0:
            return None
        slabs = self.row_partition(a.shape[0])
        if slabs is None:
            return None
        # A zero-row probe yields the exact result dtype/shape NumPy
        # would produce, whatever the input dtype's promotion rules.
        probe = reducer(a[:0], ax, keepdims)
        expected = (a.shape[0],) + probe.shape[1:]
        if out is None:
            out = np.empty(expected, dtype=probe.dtype)
        elif out.shape != expected:
            return None

        def body(s, e):
            reducer(a[s:e], ax, keepdims, out[s:e])

        self._run_rows(slabs, body)
        return out

    def sum(self, a, axis=None, keepdims=False, out=None):
        # Reductions that keep the leading axis intact are per-row
        # independent, and NumPy's pairwise summation order for each row
        # lives entirely inside its chunk — bitwise chunk-invariant.
        done = self._reduce_rows(
            a, axis, keepdims, out,
            lambda x, ax, kd, o=None: x.sum(axis=ax, keepdims=kd)
            if o is None else x.sum(axis=ax, keepdims=kd, out=o),
        )
        if done is not None:
            return done
        return NumpyBackend.sum(self, a, axis=axis, keepdims=keepdims, out=out)

    def amax(self, a, axis=None, keepdims=False):
        done = self._reduce_rows(
            a, axis, keepdims, None,
            lambda x, ax, kd, o=None: x.max(axis=ax, keepdims=kd)
            if o is None else x.max(axis=ax, keepdims=kd, out=o),
        )
        if done is not None:
            return done
        return NumpyBackend.amax(self, a, axis=axis, keepdims=keepdims)

    # -- gather / scatter ----------------------------------------------
    def take(self, a, index, out=None):
        if (
            self._serial_only
            or not isinstance(a, np.ndarray)
            or not isinstance(index, np.ndarray)
            or index.ndim != 1
        ):
            return NumpyBackend.take(self, a, index, out=out)
        slabs = self.row_partition(index.shape[0])
        if slabs is None:
            return NumpyBackend.take(self, a, index, out=out)
        clip = out is not None
        if out is None:
            out = np.empty((index.shape[0],) + a.shape[1:], dtype=a.dtype)
        elif out.shape != (index.shape[0],) + a.shape[1:]:
            return NumpyBackend.take(self, a, index, out=out)

        def body(s, e):
            if clip:
                # Mirror the reference out= contract: in-range ids,
                # bounds checks skipped (mode="clip").
                a.take(index[s:e], axis=0, out=out[s:e], mode="clip")
            else:
                # Default mode raises on out-of-range and accepts
                # negative indices — exactly ``a[index]``.
                np.take(a, index[s:e], axis=0, out=out[s:e])

        self._run_rows(slabs, body)
        return out

    def add_at(self, a, index, values):
        """Chunked ``np.add.at`` when the index is sorted (else serial).

        Sorted indices let chunk boundaries snap to the first occurrence
        of each boundary id, making destination rows disjoint across
        chunks; within a chunk the unbuffered accumulation order is the
        serial order, so every destination row sees the identical
        addition sequence — bitwise parity with one big ``add.at``.
        """
        if (
            self._serial_only
            or not isinstance(a, np.ndarray)
            or not isinstance(index, np.ndarray)
            or index.ndim != 1
            or index.dtype.kind not in "iu"
        ):
            return NumpyBackend.add_at(self, a, index, values)
        n = index.shape[0]
        slabs = self.row_partition(n)
        if slabs is None or not bool((index[1:] >= index[:-1]).all()):
            return NumpyBackend.add_at(self, a, index, values)
        slice_values = (
            isinstance(values, np.ndarray)
            and values.ndim >= 1
            and values.shape[0] == n
        )
        if not slice_values and np.ndim(values) != 0 and not isinstance(
            values, np.ndarray
        ):
            return NumpyBackend.add_at(self, a, index, values)
        edges = {0, n}
        for start, _ in slabs[1:]:
            edges.add(int(np.searchsorted(index, index[start], side="left")))
        bounds = sorted(edges)
        spans = [
            (s, e) for s, e in zip(bounds, bounds[1:]) if e > s
        ]
        if len(spans) < 2:
            return NumpyBackend.add_at(self, a, index, values)

        def body(s, e):
            np.add.at(a, index[s:e], values[s:e] if slice_values else values)

        self._run_rows(spans, body)
        return a


register_backend(ParallelBackend())
# The module imports after repro.nn.backend created the main thread's
# state — re-resolve the env-driven default now that "parallel" exists.
refresh_default_backend()
