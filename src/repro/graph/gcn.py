"""Graph convolutional network stack (paper Eq. 1-3).

Each layer computes ``X^l = σ(Â X^{l-1} W^{l-1})`` where ``σ`` is the
sigmoid (the paper's stated activation), ``Â`` is a fixed normalized
adjacency, and ``X⁰`` is a learnable Gaussian-initialised node-feature
table.  The stack returns the H-th layer output, which Eq. 4-6
concatenate across views.

The adjacency is fixed for the lifetime of the model, so :class:`GCN`
accepts it at construction, canonicalises it to CSR exactly once, and
thereafter propagates without per-call conversion (``forward()`` with no
argument).  Passing an explicit adjacency to ``forward`` remains
supported for ad-hoc use, e.g. evaluating the same weights on a
perturbed graph.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear, resolve_activation
from repro.nn.module import Module
from repro.nn.sparse import spmm, to_csr
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng

__all__ = ["GCNLayer", "GCN"]


class GCNLayer(Module):
    """One propagation step ``σ(Â X W)``.

    Parameters
    ----------
    in_dim / out_dim: feature dimensions of ``W ∈ R^{in×out}``.
    activation: nonlinearity; the paper uses sigmoid.
    bias: whether ``W`` carries a bias (paper's Eq. 1-3 has none).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation="sigmoid",
        bias: bool = False,
        seed: SeedLike = None,
        gain: float = 1.0,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_dim, out_dim, bias=bias, seed=seed, gain=gain)
        self.activation = resolve_activation(activation)

    def forward(self, adjacency: sp.spmatrix, features: Tensor) -> Tensor:
        """Propagate ``features`` one hop over ``adjacency``."""
        return self.activation(self.linear(spmm(adjacency, features)))


class GCN(Module):
    """An H-layer GCN over one fixed graph with learnable layer-0 features.

    This is one of MGBR's three per-view encoders.  ``forward()``
    re-derives embeddings from the current parameters (needed during
    training so gradients reach ``X⁰`` and every ``W^l``).

    Parameters
    ----------
    n_nodes: number of graph nodes (rows of ``X⁰``).
    dim: embedding width ``d`` (constant across layers, as in the paper).
    n_layers: ``H`` in the paper (Table II uses 2).
    activation: per-layer nonlinearity (paper: sigmoid).
    feature_std: std-dev of the Gaussian layer-0 initialisation.
    adjacency: the fixed graph to propagate over; canonicalised to CSR
        once here, so ``forward()`` needs no argument and pays no
        per-call conversion.  Omit it to keep the legacy call style
        ``gcn(adjacency)``.
    """

    def __init__(
        self,
        n_nodes: int,
        dim: int,
        n_layers: int = 2,
        activation="sigmoid",
        feature_std: float = 0.1,
        seed: SeedLike = None,
        gain: float = 1.0,
        adjacency: Optional[sp.spmatrix] = None,
        n_shards: int = 0,
        partition: str = "range",
        service: bool = False,
        quantize: Optional[str] = None,
    ) -> None:
        super().__init__()
        if n_layers < 1:
            raise ValueError(f"GCN needs at least one layer, got {n_layers}")
        rng = as_rng(seed)
        self.n_nodes = n_nodes
        self.dim = dim
        self.n_layers = n_layers
        self.adjacency = None if adjacency is None else self._check_adjacency(adjacency)
        # ``n_shards``/``partition``/``service`` pick the feature table's
        # storage layout (repro.store); propagation reads the logical
        # table via ``features.all()`` either way, so the math is
        # layout-blind.
        self.features = Embedding(
            n_nodes, dim, seed=rng, std=feature_std,
            n_shards=n_shards, partition=partition, service=service,
            quantize=quantize,
        )
        self._layers: List[GCNLayer] = []
        for layer_idx in range(n_layers):
            layer = GCNLayer(dim, dim, activation=activation, seed=rng, gain=gain)
            setattr(self, f"gcn{layer_idx}", layer)
            self._layers.append(layer)

    def _check_adjacency(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        if adjacency.shape != (self.n_nodes, self.n_nodes):
            raise ValueError(
                f"adjacency shape {adjacency.shape} does not match n_nodes={self.n_nodes}"
            )
        # Pin to float64 regardless of any active dtype scope — the
        # stored adjacency is model state; spmm casts per-use instead.
        return to_csr(adjacency, dtype=np.float64)

    def _resolve_adjacency(self, adjacency: Optional[sp.spmatrix]) -> sp.spmatrix:
        if adjacency is None:
            if self.adjacency is None:
                raise ValueError(
                    "GCN was built without an adjacency; pass one to forward()"
                )
            return self.adjacency
        return self._check_adjacency(adjacency)

    def forward(self, adjacency: Optional[sp.spmatrix] = None) -> Tensor:
        """Return the final-layer node embeddings ``X^H``.

        Uses the adjacency bound at construction when called with no
        argument (the fast path — no conversion, cached ``spmm``
        operands).
        """
        adjacency = self._resolve_adjacency(adjacency)
        x = self.features.all()
        for layer in self._layers:
            x = layer(adjacency, x)
        return x

    def all_layer_outputs(self, adjacency: Optional[sp.spmatrix] = None) -> List[Tensor]:
        """Return ``[X⁰, X¹, …, X^H]`` (NGCF-style consumers concatenate these)."""
        adjacency = self._resolve_adjacency(adjacency)
        x = self.features.all()
        outputs = [x]
        for layer in self._layers:
            x = layer(adjacency, x)
            outputs.append(x)
        return outputs
