"""Expert networks of the multi-task learning module (Eq. 7-9).

Each of the three sub-modules (A = Task A, B = Task B, S = shared) owns
``K`` expert networks per layer.  An expert is a single linear map:

* ``e^l_{Ai} = (g^{l-1}_A || g^{l-1}_S) W^l_{Ai}``   (Eq. 7)
* ``e^l_{Bi} = (g^{l-1}_B || g^{l-1}_S) W^l_{Bi}``   (Eq. 8)
* ``e^l_{Si} = (g^{l-1}_A || g^{l-1}_S || g^{l-1}_B) W^l_{Si}``  (Eq. 9)

The bank's forward takes the already-concatenated gate state and returns
the stacked expert outputs ``E^l ∈ (batch, K, d)`` which the gates
attend over.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.backend import get_backend
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, stack
from repro.utils.rng import SeedLike, as_rng

__all__ = ["ExpertBank"]


class ExpertBank(Module):
    """``K`` parallel linear experts sharing an input, stacked on output.

    Parameters
    ----------
    in_dim: width of the concatenated gate state feeding the experts.
    out_dim: expert output width ``d`` (all experts share it).
    n_experts: ``K`` (Table II uses 6).
    seed: initialisation RNG.
    """

    def __init__(self, in_dim: int, out_dim: int, n_experts: int, seed: SeedLike = None) -> None:
        super().__init__()
        if n_experts < 1:
            raise ValueError(f"need at least one expert, got {n_experts}")
        rng = as_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.n_experts = n_experts
        self._experts: List[Linear] = []
        for k in range(n_experts):
            expert = Linear(in_dim, out_dim, bias=False, seed=rng)
            setattr(self, f"expert{k}", expert)
            self._experts.append(expert)
        self._bank_fold_cache = {}  # blocks -> (expert versions, stacked ndarray)

    def forward(self, gate_state: Tensor) -> Tensor:
        """Apply every expert to ``gate_state`` → ``(batch, K, d)``.

        ``gate_state`` is the concatenation the relevant equation calls
        for (A/B: two gates; S: three gates).
        """
        if gate_state.shape[-1] != self.in_dim:
            raise ValueError(
                f"expert bank expects input width {self.in_dim}, got {gate_state.shape[-1]}"
            )
        outputs = [expert(gate_state) for expert in self._experts]
        return stack(outputs, axis=1)

    def project_blocks(self, x: Tensor, blocks) -> Tensor:
        """Per-entity partial bank: every expert's weight-row blocks on ``x``.

        ``blocks`` selects (and sums) the rows of each expert weight that
        multiply one segment of the concatenated gate state (see
        :meth:`repro.nn.layers.Linear.project_blocks`).  Returns
        ``(rows, K, d)`` — the contribution of this segment to the full
        expert bank; the scoring plan computes it once per unique entity
        and gathers per pair, which is where the layer-0 FLOP cut comes
        from (Eq. 7-9 distribute over the concatenation).

        The ``K`` per-expert folds are stacked column-wise into one
        ``(width, K·d)`` weight so the whole bank is a *single* matmul
        (ROADMAP "Planned-step follow-ons": one stacked GEMM per bank
        instead of ``K`` thin ones, and one fused scatter on the way
        back); results match the per-expert loop up to BLAS
        re-association (see tests/test_fold_cache.py's parity test).
        """
        key = self._experts[0].check_blocks(x, blocks)
        return (x @ self._stacked_folds(key)).reshape(x.shape[0], self.n_experts, self.out_dim)

    def _stacked_folds(self, blocks) -> Tensor:
        """Column-stacked fold weights ``(width, K·d)``, cached like
        :meth:`repro.nn.layers.Linear.folded_blocks`.

        Values are cached per block set keyed on the tuple of expert
        weight versions (any optimizer step or state load bumps them);
        every call returns a fresh graph node whose backward slices the
        ``(width, K·d)`` gradient into per-expert columns and adds each
        into that expert's weight blocks, so cached values can never be
        stale and cached nodes are never shared between graphs.
        """
        stacked = self.stacked_folds_raw(blocks)
        weights = [expert.weight for expert in self._experts]
        d = self.out_dim

        def backward(g: np.ndarray) -> None:
            for k, weight in enumerate(weights):
                if not weight.requires_grad:
                    continue
                grad = np.zeros_like(weight.data)
                g_k = g[:, k * d : (k + 1) * d]
                for start, stop in blocks:
                    grad[start:stop] += g_k
                weight._accumulate(grad)

        return Tensor._make(stacked, tuple(weights), backward)

    def stacked_folds_raw(self, blocks) -> np.ndarray:
        """The cached ``(width, K·d)`` stacked fold as a raw array.

        Shares the version-keyed cache with :meth:`_stacked_folds`; the
        fused no-tape executor reads the bank fold through this accessor
        so both executors multiply the identical cached array (needed
        for float64 bit-parity).  Callers must not mutate the result.
        """
        versions = tuple(expert.weight.version for expert in self._experts)
        entry = self._bank_fold_cache.get(blocks)
        if entry is None or entry[0] != versions:
            backend = get_backend()
            folds = []
            for expert in self._experts:
                folded = backend.ensure_contiguous(
                    expert.weight.data[blocks[0][0] : blocks[0][1]]
                )
                for start, stop in blocks[1:]:
                    folded = folded + expert.weight.data[start:stop]
                folds.append(folded)
            entry = (versions, np.concatenate(folds, axis=1))
            self._bank_fold_cache[blocks] = entry
        return entry[1]
