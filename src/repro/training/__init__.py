"""``repro.training`` — the joint two-task optimisation loop.

Implements Sec. II-F: BPR objectives for both sub-tasks with negative
sampling, the auxiliary losses of Sec. II-G for models that support
them, Adam updates, early stopping, histories and checkpoints.
"""

from repro.training.checkpoint import load_checkpoint, restore_model, save_checkpoint
from repro.training.history import EpochRecord, History
from repro.training.trainer import TrainConfig, Trainer

__all__ = [
    "Trainer",
    "TrainConfig",
    "History",
    "EpochRecord",
    "save_checkpoint",
    "load_checkpoint",
    "restore_model",
]
