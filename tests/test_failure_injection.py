"""Failure-injection tests: corrupted inputs must fail loudly, not drift.

A recommender pipeline has many silent-corruption hazards (NaNs from a
degenerate graph, stale caches after parameter surgery, truncated
checkpoints).  These tests pin the failure behaviour.
"""

import threading

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.data import DealGroup, GroupBuyingDataset
from repro.graph import normalized_adjacency, edges_to_adjacency
from repro.nn import Adam, tensor
from repro.training import Trainer, TrainConfig, load_checkpoint, restore_model, save_checkpoint


class TestNaNPropagation:
    def test_normalization_never_produces_nan(self):
        # Isolated nodes / zero degrees must not create NaN rows.
        adj = edges_to_adjacency([], 5)  # fully disconnected
        norm = normalized_adjacency(adj, add_self_loops=False)
        assert np.all(np.isfinite(norm.toarray()))

    def test_training_detects_injected_nan(self, tiny_dataset, small_config):
        model = MGBR(tiny_dataset.train, tiny_dataset.n_users,
                     tiny_dataset.n_items, config=small_config)
        # Poison one GCN weight.
        model.encoder.gcn_ui.features.weight.data[0, 0] = np.nan
        emb = model.compute_embeddings()
        assert np.isnan(emb.user.data).any()  # NaN visibly propagates


class TestCheckpointCorruption:
    def test_truncated_file_raises(self, tmp_path, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        path = save_checkpoint(model, tmp_path / "ok")
        data = path.read_bytes()
        bad = tmp_path / "bad.npz"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_checkpoint(bad)

    def test_wrong_shape_state_rejected(self, tmp_path, tiny_dataset):
        small = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        path = save_checkpoint(small, tmp_path / "small")
        big = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        with pytest.raises(ValueError):
            restore_model(big, path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nowhere.npz")


class TestStaleCaches:
    def test_table_backed_cache_sees_inplace_updates(self, tiny_dataset):
        # MF caches hold *live references* to the embedding tables, so
        # optimizer-style in-place updates flow through without refresh —
        # unlike GCN models whose caches hold computed outputs (covered in
        # test_core_model::test_public_scoring_uses_cache).
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        model.refresh_cache()
        users, items = np.array([0]), np.array([0])
        before = float(model.score_items(users, items).data[0])
        model.initiator_table.weight.data += 10.0
        after = float(model.score_items(users, items).data[0])
        assert after != before

    def test_trainer_invalidates_cache_each_step(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        model.refresh_cache()
        trainer = Trainer(
            model, tiny_dataset,
            TrainConfig(epochs=1, batch_size=64, train_negatives=2, seed=0),
        )
        trainer.train_epoch()
        assert model._cached is None  # last step left no stale cache


class TestDegenerateDatasets:
    def test_single_item_dataset_trains(self):
        # Degenerate but legal: every group buys the same item.
        groups = [DealGroup(u, 0, ((u + 1) % 6,)) for u in range(6)] * 2
        ds = GroupBuyingDataset(n_users=6, n_items=1, train=groups)
        model = GBMF(6, 1, dim=4, seed=0)
        # Task A negative sampling is impossible (no second item):
        with pytest.raises(ValueError):
            Trainer(
                model, ds, TrainConfig(epochs=1, batch_size=4, train_negatives=1, seed=0)
            ).train_epoch()

    def test_group_with_no_participants_is_fine_for_task_a(self):
        groups = [DealGroup(u, u % 3, ()) for u in range(6)] * 2
        ds = GroupBuyingDataset(n_users=6, n_items=3, train=groups)
        from repro.data import extract_task_a, extract_task_b

        assert len(extract_task_a(ds.train)) == 12
        assert len(extract_task_b(ds.train)) == 0  # trainer would reject

    def test_optimizer_survives_zero_gradient_step(self):
        from repro.nn.module import Parameter

        p = Parameter(np.ones(3))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * tensor(np.zeros(3))).sum().backward()
        opt.step()  # gradient exactly zero: update must stay finite
        assert np.all(np.isfinite(p.data))


class _FlakyItemScorerGBMF(GBMF):
    """Task-A planned scoring explodes on every odd-numbered flush.

    Task-B scoring is untouched, so a mixed flush exercises the engine's
    failure-isolation contract under load: the poisoned task's tickets
    must fail with *this* error while co-batched Task-B tickets resolve.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.item_calls = 0

    def score_item_plan(self, plan):
        self.item_calls += 1
        if self.item_calls % 2 == 0:
            raise ValueError("injected: item scorer died mid-flush")
        return super().score_item_plan(plan)


class TestServingMidFlushFaults:
    def test_concurrent_load_with_mid_flush_model_failure(self):
        """Model raises mid-flush under concurrent submitters.

        Pinned behaviour: every ticket resolves (scores or the *real*
        injected error — never a generic "never resolved"), Task-B
        tickets co-batched with a poisoned Task-A call still score, the
        engine worker survives to serve later flushes, and the overload
        counters stay consistent (nothing shed/aborted/rejected).
        """
        from repro.serving import ServingEngine

        n_users, n_items = 40, 25
        model = _FlakyItemScorerGBMF(n_users, n_items, dim=8, seed=0)
        engine = ServingEngine(model, max_delay_ms=1.0, max_pending=32)
        item_tickets, part_tickets = [], []
        lock = threading.Lock()

        def submitter(seed):
            rng = np.random.default_rng(seed)
            for k in range(30):
                user = int(rng.integers(n_users))
                if k % 2 == 0:
                    t = engine.submit_items(
                        user, rng.integers(n_items, size=4).tolist()
                    )
                    with lock:
                        item_tickets.append(t)
                else:
                    t = engine.submit_participants(
                        user,
                        int(rng.integers(n_items)),
                        rng.integers(n_users, size=4).tolist(),
                    )
                    with lock:
                        part_tickets.append(t)

        with engine:
            threads = [
                threading.Thread(target=submitter, args=(s,)) for s in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            engine.drain(timeout=30.0)
            stats = engine.stats()

        assert all(t.ready for t in item_tickets + part_tickets), "stranded"
        # Task B never co-fails with the poisoned Task-A scorer.
        for t in part_tickets:
            assert not t.failed
            assert t.scores.shape == (4,)
        # Task-A tickets either scored or carry the injected error.
        scored = [t for t in item_tickets if not t.failed]
        failed = [t for t in item_tickets if t.failed]
        for t in failed:
            with pytest.raises(ValueError, match="injected: item scorer died"):
                _ = t.scores
        assert model.item_calls >= 2  # the fault actually fired
        if model.item_calls >= 2:
            assert failed, "no flush hit the injected fault"
        assert scored, "no flush survived the injected fault"
        # Counter consistency: all 120 submits admitted, none shed/aborted.
        overload = stats["overload"]
        assert overload["accepted"] == 120
        assert overload["rejected"] == 0
        assert overload["shed"] == 0
        assert overload["aborted"] == 0
        assert stats["engine"]["served"] == 120

    def test_engine_keeps_serving_after_poisoned_flush(self):
        """A failed flush must not kill the worker or poison later ones."""
        from repro.serving import ServingEngine

        model = _FlakyItemScorerGBMF(40, 25, dim=8, seed=0)
        with ServingEngine(model, max_delay_ms=60_000.0) as engine:
            ok_first = engine.submit_items(0, [0, 1])
            engine.drain(timeout=10.0)            # flush 1: scores
            boom = engine.submit_items(1, [0, 1])
            engine.drain(timeout=10.0)            # flush 2: injected failure
            ok_after = engine.submit_items(2, [0, 1])
            engine.drain(timeout=10.0)            # flush 3: recovered
        assert ok_first.scores.shape == (2,)
        with pytest.raises(ValueError, match="injected"):
            _ = boom.scores
        assert ok_after.scores.shape == (2,)
