"""Unit tests for the Module system and the standard layers."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, Dropout, Embedding, Identity, Linear, Module, Parameter, Sequential, tensor
from repro.nn.layers import resolve_activation


class TestModuleRegistration:
    def test_parameters_registered_via_setattr(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.child = Linear(2, 2, seed=0)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "child.weight" in names
        assert "child.bias" in names

    def test_parameters_deduplicated(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                shared = Parameter(np.ones(2))
                self.a = shared
                self.b = shared

        assert len(M().parameters()) == 1

    def test_num_parameters(self):
        layer = Linear(4, 3, seed=0)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_recursive(self):
        seq = Sequential(Linear(2, 2, seed=0), Dropout(0.5, seed=0))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2, seed=0)
        out = layer(tensor(np.ones((4, 3)), requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_roundtrip(self):
        src = MLP(4, [5], 2, seed=0)
        dst = MLP(4, [5], 2, seed=99)
        dst.load_state_dict(src.state_dict())
        for (_, a), (_, b) in zip(src.named_parameters(), dst.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_strict_missing_key(self):
        src = Linear(2, 2, seed=0)
        state = src.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            Linear(2, 2, seed=1).load_state_dict(state)

    def test_strict_unexpected_key(self):
        state = Linear(2, 2, seed=0).state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            Linear(2, 2, seed=1).load_state_dict(state)

    def test_non_strict_ignores_extras(self):
        state = Linear(2, 2, seed=0).state_dict()
        state["ghost"] = np.ones(1)
        Linear(2, 2, seed=1).load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        state = Linear(2, 2, seed=0).state_dict()
        state["weight"] = np.ones((3, 3))
        with pytest.raises(ValueError):
            Linear(2, 2, seed=1).load_state_dict(state, strict=False)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 6, seed=0)
        out = layer(tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 6)

    def test_no_bias(self):
        layer = Linear(4, 6, bias=False, seed=0)
        assert layer.bias is None
        assert layer.num_parameters() == 24

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gain_scales_init(self):
        small = Linear(50, 50, seed=0, gain=1.0)
        large = Linear(50, 50, seed=0, gain=4.0)
        assert large.weight.data.std() > 3 * small.weight.data.std()

    def test_deterministic_seed(self):
        a = Linear(3, 3, seed=42)
        b = Linear(3, 3, seed=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup_matches_table(self, rng):
        emb = Embedding(10, 4, seed=0)
        idx = np.array([2, 7, 2])
        np.testing.assert_array_equal(emb(idx).data, emb.weight.data[idx])

    def test_gradient_scatter(self):
        emb = Embedding(5, 3, seed=0)
        out = emb(np.array([1, 1, 4]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2, 2, 2])
        np.testing.assert_allclose(emb.weight.grad[0], [0, 0, 0])

    def test_all_returns_full_table(self):
        emb = Embedding(5, 3, seed=0)
        assert emb.all() is emb.weight

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Embedding(5, 0)


class TestDropoutLayer:
    def test_train_mode_drops(self):
        drop = Dropout(0.5, seed=0)
        out = drop(tensor(np.ones((100, 100))))
        assert (out.data == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_eval_mode_identity(self):
        drop = Dropout(0.5, seed=0)
        drop.eval()
        x = tensor(np.ones(10))
        assert drop(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestMLP:
    def test_depth_and_shapes(self, rng):
        mlp = MLP(6, [8, 4], 2, seed=0)
        out = mlp(tensor(rng.normal(size=(5, 6))))
        assert out.shape == (5, 2)

    def test_no_hidden(self, rng):
        mlp = MLP(3, [], 1, seed=0)
        assert mlp(tensor(rng.normal(size=(2, 3)))).shape == (2, 1)

    def test_last_layer_linear(self, rng):
        # Output may be negative => no activation applied after last layer.
        mlp = MLP(4, [4], 1, activation="relu", seed=0)
        outs = mlp(tensor(rng.normal(size=(200, 4)))).data
        assert outs.min() < 0

    def test_gradients_reach_all_layers(self, rng):
        mlp = MLP(4, [5, 3], 1, seed=0)
        mlp(tensor(rng.normal(size=(7, 4)))).sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())

    def test_dropout_only_in_training(self, rng):
        mlp = MLP(4, [16], 1, dropout=0.9, seed=0)
        x = tensor(rng.normal(size=(3, 4)))
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        np.testing.assert_array_equal(a, b)


class TestActivationsRegistry:
    def test_resolve_by_name(self):
        assert resolve_activation("relu") is not None
        assert resolve_activation("SIGMOID") is not None

    def test_resolve_callable_passthrough(self):
        f = lambda x: x
        assert resolve_activation(f) is f

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_activation("swishish")


class TestSequentialIdentity:
    def test_sequential_chains(self, rng):
        seq = Sequential(Linear(3, 4, seed=0), Identity(), Linear(4, 2, seed=1))
        assert seq(tensor(rng.normal(size=(2, 3)))).shape == (2, 2)
        assert len(seq) == 3

    def test_identity_passthrough(self, rng):
        x = tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x
