"""Common interface for all group-buying recommenders.

Every model in this repository — MGBR, its ablation variants, and the six
baselines — implements the same contract so the trainer, the evaluation
protocol and the benchmark harness treat them uniformly:

* :meth:`compute_embeddings` builds the differentiable entity
  representations (one full forward of whatever encoder the model uses);
* :meth:`score_items_from` / :meth:`score_participants_from` score Task A
  pairs and Task B triples *given* those embeddings, so one encoder pass
  is shared across positives, negatives, and both tasks within a
  training step;
* :meth:`score_items` / :meth:`score_participants` are the stateless
  public equivalents used by evaluation (they reuse a cached encoder
  pass created by :meth:`refresh_cache` when available);
* :meth:`score_items_matrix` / :meth:`score_participants_matrix` are the
  **batched scoring path**: they score one candidate *matrix* — many
  instances × many candidates — in a single flattened model call against
  the cached encoder pass.  The batched evaluation protocol calls these
  once per chunk (thousands of rows), so the encoder runs exactly once
  per evaluation and the expert/gate stack amortises across instances
  instead of running on 10-row micro-batches.

Baselines that were not designed for Task B inherit the paper's
tailoring (Sec. III-B): the participant score is the inner product of
the participant's and the initiator's user embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor, take_rows

__all__ = ["EmbeddingBundle", "GroupBuyingRecommender"]


@dataclass
class EmbeddingBundle:
    """Entity representations produced by one encoder pass.

    Attributes
    ----------
    user:
        ``(|U|, d_u)`` initiator-role user embeddings.
    item:
        ``(|I|, d_i)`` item embeddings.
    participant:
        ``(|U|, d_p)`` participant-role user embeddings; models without
        role separation pass the same tensor as ``user``.
    """

    user: Tensor
    item: Tensor
    participant: Tensor


class GroupBuyingRecommender(Module):
    """Abstract base: two scoring functions over one embedding pass."""

    #: Whether the trainer should attach the auxiliary losses (Sec. II-G).
    #: Only the MGBR family overrides this.
    supports_aux_losses: bool = False

    def __init__(self, n_users: int, n_items: int) -> None:
        super().__init__()
        if n_users <= 0 or n_items <= 0:
            raise ValueError(f"need positive entity counts, got {n_users}/{n_items}")
        self.n_users = n_users
        self.n_items = n_items
        self._cached: Optional[EmbeddingBundle] = None

    # ------------------------------------------------------------------
    # To be provided by concrete models
    # ------------------------------------------------------------------
    def compute_embeddings(self) -> EmbeddingBundle:
        """One differentiable encoder pass over all entities."""
        raise NotImplementedError

    def score_items_from(self, emb: EmbeddingBundle, users, items, raw: bool = False) -> Tensor:
        """Task A scores ``s(i|u)`` for paired index arrays → ``(batch,)``.

        Default: the user-item inner product, the standard CF scoring the
        MF-style baselines use.  ``raw=True`` returns the logits (the
        training losses consume these); otherwise σ-probabilities.
        """
        e_u = take_rows(emb.user, users)
        e_i = take_rows(emb.item, items)
        logits = (e_u * e_i).sum(axis=1)
        return logits if raw else F.sigmoid(logits)

    def score_participants_from(
        self, emb: EmbeddingBundle, users, items, participants, raw: bool = False
    ) -> Tensor:
        """Task B scores ``s(p|u,i)`` → ``(batch,)``.

        Default: the paper's baseline tailoring — inner product between
        the participant's and initiator's embeddings (Sec. III-B; the
        item is ignored by models with no Task-B head).
        """
        del items
        e_u = take_rows(emb.user, users)
        e_p = take_rows(emb.participant, participants)
        logits = (e_u * e_p).sum(axis=1)
        return logits if raw else F.sigmoid(logits)

    # ------------------------------------------------------------------
    # Cached public scoring (evaluation path)
    # ------------------------------------------------------------------
    def refresh_cache(self) -> None:
        """Recompute and store the encoder pass for repeated scoring.

        Call under ``no_grad`` (the evaluation protocol does); training
        code never uses the cache.
        """
        self._cached = self.compute_embeddings()

    def invalidate_cache(self) -> None:
        """Drop the cached encoder pass (after a parameter update)."""
        self._cached = None

    def _bundle(self) -> EmbeddingBundle:
        if self._cached is None:
            self._cached = self.compute_embeddings()
        return self._cached

    def score_items(self, users, items) -> Tensor:
        """Public Task-A scoring against the cached encoder pass."""
        return self.score_items_from(self._bundle(), users, items)

    def score_participants(self, users, items, participants) -> Tensor:
        """Public Task-B scoring against the cached encoder pass."""
        return self.score_participants_from(self._bundle(), users, items, participants)

    # ------------------------------------------------------------------
    # Batched (matrix) scoring — the evaluation/serving hot path
    # ------------------------------------------------------------------
    def score_items_matrix(self, users, candidate_items) -> np.ndarray:
        """Task-A *ranking* scores for per-instance candidate lists.

        Parameters
        ----------
        users: ``(n,)`` instance initiators.
        candidate_items: ``(n, m)`` candidate items — row ``k`` is the
            list scored for ``users[k]``.

        Returns
        -------
        np.ndarray
            ``(n, m)`` score matrix, flattened into a single model call.
            On the default path the values are raw logits rather than
            σ-probabilities: the sigmoid is monotonic so ranks are
            unchanged, but saturated probabilities (σ → exactly 1.0,
            common under float32 inference on confident models) would
            collapse distinct candidates into ties.  Models overriding
            the public ``score_items`` keep their own score scale.
        """
        users = np.asarray(users, dtype=np.int64)
        cands = np.asarray(candidate_items, dtype=np.int64)
        if cands.ndim != 2 or len(users) != cands.shape[0]:
            raise ValueError(
                f"need (n,) users and (n, m) candidates, got {users.shape}/{cands.shape}"
            )
        flat_users = np.repeat(users, cands.shape[1])
        if type(self).score_items is GroupBuyingRecommender.score_items:
            scores = self.score_items_from(
                self._bundle(), flat_users, cands.ravel(), raw=True
            )
        else:
            scores = self.score_items(flat_users, cands.ravel())
        return np.asarray(scores.data, dtype=np.float64).reshape(cands.shape)

    def score_participants_matrix(self, users, items, candidate_participants) -> np.ndarray:
        """Task-B ranking scores for per-instance candidate lists.

        ``users``/``items`` are ``(n,)`` instance pairs and
        ``candidate_participants`` is ``(n, m)``; returns the ``(n, m)``
        score matrix via one flattened model call.  Same raw-logit
        convention as :meth:`score_items_matrix`.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        cands = np.asarray(candidate_participants, dtype=np.int64)
        if cands.ndim != 2 or not (len(users) == len(items) == cands.shape[0]):
            raise ValueError(
                "need (n,) users, (n,) items and (n, m) candidates, got "
                f"{users.shape}/{items.shape}/{cands.shape}"
            )
        n_list = cands.shape[1]
        flat = (np.repeat(users, n_list), np.repeat(items, n_list), cands.ravel())
        if type(self).score_participants is GroupBuyingRecommender.score_participants:
            scores = self.score_participants_from(self._bundle(), *flat, raw=True)
        else:
            scores = self.score_participants(*flat)
        return np.asarray(scores.data, dtype=np.float64).reshape(cands.shape)

    # ------------------------------------------------------------------
    # Case-study hook (Fig. 6)
    # ------------------------------------------------------------------
    def entity_embeddings(self) -> Dict[str, np.ndarray]:
        """Detached role-keyed embedding matrices for analysis/plotting."""
        bundle = self._bundle()
        return {
            "initiator": np.array(bundle.user.data),
            "item": np.array(bundle.item.data),
            "participant": np.array(bundle.participant.data),
        }
