"""``repro.serving`` — request-batching front-end over planned scoring.

Coalesces incoming (user, candidates) scoring requests into one
:class:`repro.plan.ScoringPlan` per task and scatters the scores back to
each caller; see :mod:`repro.serving.frontend`.
"""

from repro.serving.frontend import PendingScores, RequestBatcher

__all__ = ["RequestBatcher", "PendingScores"]
