"""Tests for the request-batching serving front-end (repro.serving)."""

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.serving import RequestBatcher
from repro.training.checkpoint import restore_model, save_checkpoint


@pytest.fixture()
def batcher(tiny_mgbr):
    front = RequestBatcher(tiny_mgbr)
    yield front
    front.release()  # never leak a serving cache into other tests


class TestRequestBatcher:
    def test_single_request_round_trip(self, tiny_mgbr, batcher):
        candidates = [0, 3, 5, 3]
        scores = batcher.score_items(2, candidates)
        assert scores.shape == (4,)
        # Duplicate candidates score identically (planned dedup).
        assert scores[1] == scores[3]
        # Agrees with the model's own matrix path.
        reference = tiny_mgbr.score_items_matrix(
            np.array([2]), np.array([candidates])
        )[0]
        np.testing.assert_allclose(scores, reference)

    def test_coalesced_requests_resolve_every_ticket(self, batcher):
        tickets = [batcher.submit_items(u, [0, 1, 2]) for u in (0, 1, 0)]
        t_b = batcher.submit_participants(0, 1, [4, 5])
        assert not tickets[0].ready
        batcher.flush()
        assert all(t.ready for t in tickets) and t_b.ready
        # Identical requests (users 0) received identical score vectors.
        np.testing.assert_array_equal(tickets[0].scores, tickets[2].scores)
        assert batcher.stats["flushes"] == 1
        assert batcher.stats["requests"] == 4
        assert batcher.stats["unique_pairs"] < batcher.stats["flat_rows"]

    def test_reading_scores_triggers_flush(self, batcher):
        ticket = batcher.submit_items(1, [0, 1])
        assert ticket.scores.shape == (2,)  # lazy flush
        assert batcher.stats["flushes"] == 1

    def test_max_pending_auto_flush(self, tiny_mgbr):
        front = RequestBatcher(tiny_mgbr, max_pending=4)
        first = front.submit_items(0, [0, 1])
        second = front.submit_items(1, [2, 3])  # reaches the cap -> flush
        assert first.ready and second.ready
        front.release()

    def test_empty_candidates_rejected(self, batcher):
        with pytest.raises(ValueError):
            batcher.submit_items(0, [])

    def test_out_of_range_ids_rejected_at_submit(self, tiny_dataset, batcher):
        # A bad id must bounce at submit time, not poison a later flush.
        with pytest.raises(ValueError):
            batcher.submit_items(-1, [0, 1])
        with pytest.raises(ValueError):
            batcher.submit_items(0, [tiny_dataset.n_items])
        with pytest.raises(ValueError):
            batcher.submit_participants(0, 0, [tiny_dataset.n_users])
        # Well-formed neighbours still flush fine afterwards.
        assert batcher.score_items(0, [0, 1]).shape == (2,)

    def test_flush_serves_in_eval_mode(self, tiny_mgbr, batcher):
        tiny_mgbr.train()
        try:
            batcher.score_items(0, [0, 1])
            assert tiny_mgbr.training  # mode restored after the flush
        finally:
            tiny_mgbr.eval()

    def test_invalid_options_rejected(self, tiny_mgbr):
        with pytest.raises(ValueError):
            RequestBatcher(tiny_mgbr, dtype="float16")
        with pytest.raises(ValueError):
            RequestBatcher(tiny_mgbr, max_pending=0)

    def test_float32_serving_and_release(self, tiny_mgbr):
        front = RequestBatcher(tiny_mgbr, dtype="float32")
        scores = front.score_items(0, [0, 1, 2])
        assert scores.shape == (3,)
        # Serving keeps its reduced-precision cache across flushes...
        assert tiny_mgbr._cached is not None
        assert tiny_mgbr._cached.user.data.dtype == np.float32
        # ...and release() hands the model back clean.
        front.release()
        assert tiny_mgbr._cached is None

    def test_works_with_baselines(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        front = RequestBatcher(model)
        scores = front.score_participants(0, 1, [2, 3, 2])
        assert scores[0] == scores[2]
        front.release()


class TestServingWithCheckpoints:
    def test_float32_checkpoint_feeds_serving(self, tiny_dataset, tmp_path):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=4)
        path = save_checkpoint(model, tmp_path / "serve", dtype="float32")

        clone = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=9)
        restore_model(clone, path, dtype="float32")
        front = RequestBatcher(clone, dtype="float32")
        scores = front.score_items(0, [0, 1, 2])
        reference = RequestBatcher(model).score_items(0, [0, 1, 2])
        np.testing.assert_allclose(scores, reference, rtol=1e-5, atol=1e-6)
        front.release()

    def test_refresh_picks_up_new_weights(self, tiny_dataset, tmp_path):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=4)
        other = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=5)
        path = save_checkpoint(other, tmp_path / "swap")

        front = RequestBatcher(model)
        before = front.score_items(0, [0, 1, 2]).copy()
        restore_model(model, path, strict=True)
        front.refresh()
        after = front.score_items(0, [0, 1, 2])
        assert not np.allclose(before, after)
        front.release()
