"""Serving-latency benchmark: open-loop Poisson traffic vs ServingEngine.

Measures what the async serving engine trades: **latency** (the
deadline-triggered flush clock bounds how long a request waits for
co-batching) against **throughput** (bigger planned calls amortise
model dispatch).  Traffic is open-loop: request arrival times are drawn
from a Poisson process at a fixed offered rate and a submitter thread
sticks to that schedule regardless of how the engine keeps up — the
honest way to measure a queueing system (closed loops hide overload by
slowing the clients).

Cells sweep ``offered rate × flush deadline × store layout``:

* ``dense``   — GBMF over single-table stores;
* ``sharded`` — the same tables range-partitioned 4 ways (every flush
  regroups ids per shard);
* ``lru``     — the sharded layout fronted by a
  :class:`repro.store.LRUCachedStore` hot-row cache; ids are
  Zipf-skewed, so the cache absorbs the head of the distribution.

Per cell: p50/p95/p99 request latency (submit → ticket resolution),
achieved submit rate, served QPS, the engine's flush-cause breakdown
and cache hit rates.  Steady-state cells (the submitter held the
offered rate and the engine kept up) must respect the latency model

    ``p95  <=  max_delay_ms + one flush duration (+ scheduler slack)``

— a request waits at most one full deadline, then one flush.

**Overload cells** drive the engine far past saturation on purpose:
offered rate = ``OVERLOAD_MULT`` × a measured closed-loop capacity
probe, against 1/2/4-worker :class:`repro.serving.MultiWorkerEngine`
fleets with admission (``max_queue_rows``) and age
(``max_queue_age_ms``) budgets armed.  The gates are the overload
contract, not raw speed:

* conservation — every submit is rejected (``OverloadError``), shed
  (``DeadlineExceeded``) or scored; zero tickets stranded;
* bounded latency — p95 of the *scored* requests stays within
  ``age budget + one flush (+ slack)`` no matter how hot the offered
  rate runs, because anything older is shed before planning;
* the drop rate (rejected + shed) absorbs the offered excess.

**Fused-scaling cells** measure the 1/2/4-worker scored/sec curve with
the fused no-tape executor (``fused_scaling`` in the report).  Unlike
the overload cells — whose budgets assume each extra worker brings a
fresh core — this probe keeps the *single-worker* queue depth per
worker and scales the age budget with fleet size, so a bigger fleet
converts its deeper aggregate queue into bigger per-flush co-batches
(higher Zipf dedup, fewer flush cycles per scored request).  That is
the mechanism that lets scored/sec rise with fleet size even on hosts
with fewer cores than workers; the curve must be strictly increasing —
and on hosts with ≥2 cores each step must clear a 1.05× floor, since
real parallelism compounds with the batching win.  The cell records
``cpu_count`` and the active array backend so the gate stays honest
across hosts.

**Backend-parity cells** serve identical request streams through
``backend="numpy"`` and a chunk-forcing
:class:`repro.nn.ParallelBackend` engine (fused executor, GBMF *and*
MGBR) and assert the served scores are bitwise identical — the serving
mirror of the eval benchmark's parity gate.

Writes ``BENCH_serve_latency.json`` at the repository root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_serve_latency.py``);
``--smoke`` runs a seconds-scale configuration (one steady cell per
store + one overload cell + a two-point fused-scaling probe) and skips
the artifact.  Environment knobs:
``REPRO_BENCH_SERVE_USERS / ITEMS / DIM / CANDIDATES / SLACK_MS /
SCALING_TRIALS``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.nn import ParallelBackend
from repro.nn.backend import get_backend
from repro.serving import (
    DeadlineExceeded,
    MultiWorkerEngine,
    OverloadError,
    ServingEngine,
)
from repro.store import cache_hot_rows

N_USERS = int(os.environ.get("REPRO_BENCH_SERVE_USERS", "3000"))
N_ITEMS = int(os.environ.get("REPRO_BENCH_SERVE_ITEMS", "1000"))
DIM = int(os.environ.get("REPRO_BENCH_SERVE_DIM", "32"))
CANDIDATES = int(os.environ.get("REPRO_BENCH_SERVE_CANDIDATES", "20"))
#: Scheduler/GIL slack added on top of the latency model before the
#: p95 assertion — generous for shared CI runners, still far below the
#: deadlines it guards.
SLACK_MS = float(os.environ.get("REPRO_BENCH_SERVE_SLACK_MS", "25.0"))

RATES = (200.0, 800.0, 2000.0)       # offered requests/sec
DEADLINES_MS = (2.0, 10.0)           # engine max_delay_ms
STORES = ("dense", "sharded", "lru")
N_SHARDS = 4
LRU_CAPACITY = 256
ZIPF_A = 1.2
SEED = 23

OVERLOAD_WORKERS = (1, 2, 4)         # MultiWorkerEngine fleet sizes
OVERLOAD_MULT = 3.0                  # offered rate / measured capacity
OVERLOAD_DEADLINE_MS = 5.0           # flush deadline == age budget
#: Overload requests are 10× wider than steady-state ones so that
#: per-request scoring cost dominates and a Python submitter thread can
#: genuinely offer several times the engine's capacity.
OVERLOAD_CANDIDATES = 10 * CANDIDATES

#: Flood repetitions per fleet size in the fused-scaling probe (median
#: reported; trials interleave across fleet sizes so host noise lands
#: on every curve point evenly).
SCALING_TRIALS = int(os.environ.get("REPRO_BENCH_SERVE_SCALING_TRIALS", "5"))

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve_latency.json"


def _zipf_ids(rng: np.random.Generator, n: int, bound: int) -> np.ndarray:
    """Zipf-skewed ids in ``[0, bound)`` — serving's hot-head traffic."""
    raw = rng.zipf(ZIPF_A, size=n)
    return (raw - 1) % bound


def build_model(store: str) -> GBMF:
    n_shards = 0 if store == "dense" else N_SHARDS
    model = GBMF(N_USERS, N_ITEMS, dim=DIM, seed=SEED, n_shards=n_shards)
    if store == "lru":
        cache_hot_rows(model, LRU_CAPACITY)
    model.eval()
    model.refresh_cache()
    return model


def make_requests(rng: np.random.Generator, n: int, width: int = CANDIDATES):
    users = _zipf_ids(rng, n, N_USERS)
    candidates = _zipf_ids(rng, n * width, N_ITEMS).reshape(n, width)
    return users, candidates


def run_cell(model: GBMF, rate: float, deadline_ms: float, n_requests: int,
             rng: np.random.Generator) -> dict:
    users, candidates = make_requests(rng, n_requests)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n_requests))
    engine = ServingEngine(model, max_delay_ms=deadline_ms, max_pending=8192)
    tickets = [None] * n_requests
    submit_at = np.empty(n_requests)

    def submitter() -> None:
        t0 = time.perf_counter()
        for k in range(n_requests):
            lag = t0 + arrivals[k] - time.perf_counter()
            if lag > 0:
                time.sleep(lag)
            submit_at[k] = time.perf_counter()
            tickets[k] = engine.submit_items(int(users[k]), candidates[k])

    with engine:
        thread = threading.Thread(target=submitter)
        started = time.perf_counter()
        thread.start()
        thread.join()
        engine.drain(timeout=60.0)
        stats = engine.stats()
    assert all(t is not None and t.ready for t in tickets), "unresolved tickets"
    assert stats["batcher"]["failed_flushes"] == 0, "flush failures during bench"

    resolved_at = np.array([t.resolved_at for t in tickets])
    latency_ms = (resolved_at - submit_at) * 1000.0
    span = submit_at[-1] - submit_at[0]
    achieved_rate = (n_requests - 1) / span if span > 0 else float("inf")
    served_span = resolved_at.max() - started
    p50, p95, p99 = np.percentile(latency_ms, (50, 95, 99))
    engine_stats = stats["engine"]
    batcher = stats["batcher"]
    steady = achieved_rate >= 0.85 * rate
    cell = {
        "offered_rate": rate,
        "achieved_rate": round(float(achieved_rate), 1),
        "deadline_ms": deadline_ms,
        "n_requests": n_requests,
        "steady_state": bool(steady),
        "served_qps": round(n_requests / served_span, 1) if served_span > 0 else None,
        "latency_ms": {
            "p50": round(float(p50), 3),
            "p95": round(float(p95), 3),
            "p99": round(float(p99), 3),
            "max": round(float(latency_ms.max()), 3),
        },
        "flushes": engine_stats["flushes"],
        "flush_causes": engine_stats["flush_causes"],
        "avg_flush_ms": round(engine_stats["avg_flush_seconds"] * 1000.0, 3),
        "max_flush_ms": round(engine_stats["max_flush_seconds"] * 1000.0, 3),
        "rows_per_flush": round(batcher["flat_rows"] / max(engine_stats["flushes"], 1), 1),
        "dedup_ratio": round(batcher["flat_rows"] / max(batcher["unique_pairs"], 1), 3),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 4)
        if stats["cache"]["stores"]
        else None,
        "p95_bound_ms": round(
            deadline_ms + engine_stats["max_flush_seconds"] * 1000.0 + SLACK_MS, 3
        ),
    }
    return cell


def overload_budget_rows(capacity_rps: float, n_workers: int,
                         deadline_ms: float) -> int:
    """Per-worker depth budget: ~4 flush-deadlines of scoring work
    (floor: two full requests so a single request is always admissible)."""
    rows_per_worker_s = capacity_rps * OVERLOAD_CANDIDATES / n_workers
    return max(
        2 * OVERLOAD_CANDIDATES,
        int(rows_per_worker_s * (deadline_ms / 1000.0) * 4),
    )


def build_overload_engine(n_workers: int, capacity_rps: float,
                          deadline_ms: float) -> MultiWorkerEngine:
    models = [build_model("dense") for _ in range(n_workers)]
    return MultiWorkerEngine(
        models,
        max_delay_ms=deadline_ms,
        max_pending=8192,
        max_queue_rows=overload_budget_rows(capacity_rps, n_workers, deadline_ms),
        max_queue_age_ms=deadline_ms,
    )


def measure_capacity(n_workers: int, deadline_ms: float,
                     rng: np.random.Generator,
                     probe_seconds: float = 0.8) -> float:
    """Scored requests/sec of an ``n_workers`` fleet in the shedding regime.

    Two stages.  A closed-loop burst (submit everything, drain, divide)
    gives a rough rate to size the budgets — rough only, because giant
    backlog flushes have a different per-row cost than deadline-sized
    ones.  Then a no-sleep flood against the *budgeted* engine counts
    what actually gets scored per second with admission and age
    shedding active: the same regime the overload cells run in, so
    ``OVERLOAD_MULT`` × this is unambiguous overload.
    """
    models = [build_model("dense") for _ in range(n_workers)]
    users, candidates = make_requests(rng, 600, width=OVERLOAD_CANDIDATES)
    with MultiWorkerEngine(models, max_delay_ms=deadline_ms,
                           max_pending=8192) as engine:
        for k in range(64):
            engine.submit_items(int(users[k]), candidates[k])
        engine.drain(timeout=60.0)
        t0 = time.perf_counter()
        for k in range(600):
            engine.submit_items(int(users[k]), candidates[k])
        engine.drain(timeout=120.0)
        rough = 600 / (time.perf_counter() - t0)

    pool_users, pool_candidates = make_requests(
        rng, 1024, width=OVERLOAD_CANDIDATES
    )
    tickets = []
    with build_overload_engine(n_workers, rough, deadline_ms) as engine:
        t0 = time.perf_counter()
        t_end = t0 + probe_seconds
        k = 0
        while time.perf_counter() < t_end:
            i = k % 1024
            try:
                tickets.append(
                    engine.submit_items(int(pool_users[i]), pool_candidates[i])
                )
            except OverloadError:
                time.sleep(0.0002)  # queue full: yield to the workers
            k += 1
        engine.drain(timeout=120.0)
        elapsed = time.perf_counter() - t0
    scored = sum(1 for t in tickets if not t.failed)
    return max(scored / elapsed, 1.0)


def run_overload_cell(n_workers: int, capacity_rps: float, deadline_ms: float,
                      n_requests: int, rng: np.random.Generator) -> dict:
    """One overload cell: offered ≫ capacity against armed budgets."""
    offered = OVERLOAD_MULT * capacity_rps
    max_queue_rows = overload_budget_rows(capacity_rps, n_workers, deadline_ms)
    engine = build_overload_engine(n_workers, capacity_rps, deadline_ms)
    users, candidates = make_requests(rng, n_requests, width=OVERLOAD_CANDIDATES)
    arrivals = np.cumsum(rng.exponential(1.0 / offered, size=n_requests))
    tickets, ticket_submit_at = [], []
    n_rejected = 0

    with engine:
        t0 = time.perf_counter()
        first = last = None
        for k in range(n_requests):
            lag = t0 + arrivals[k] - time.perf_counter()
            if lag > 0:
                time.sleep(lag)
            now = time.perf_counter()
            first = now if first is None else first
            last = now
            try:
                ticket = engine.submit_items(int(users[k]), candidates[k])
            except OverloadError:
                n_rejected += 1
            else:
                tickets.append(ticket)
                ticket_submit_at.append(now)
        engine.drain(timeout=120.0)
        stats = engine.stats()

    # --- conservation: nothing stranded, every outcome typed ----------
    assert all(t.ready for t in tickets), "stranded tickets under overload"
    scored_lat, n_shed = [], 0
    for ticket, submitted in zip(tickets, ticket_submit_at):
        if ticket.failed:
            assert isinstance(ticket.error, DeadlineExceeded), ticket.error
            n_shed += 1
        else:
            scored_lat.append((ticket.resolved_at - submitted) * 1000.0)
    agg = stats["aggregate"]
    assert agg["accepted"] == len(tickets)
    assert agg["rejected"] == n_rejected
    assert agg["shed"] == n_shed
    assert agg["aborted"] == 0
    assert len(tickets) + n_rejected == n_requests

    span = (last - first) if last is not None and last > first else 0.0
    achieved = (n_requests - 1) / span if span > 0 else float("inf")
    scored_lat = np.array(scored_lat) if scored_lat else np.array([0.0])
    p50, p95 = np.percentile(scored_lat, (50, 95))
    max_flush_ms = agg["max_flush_seconds"] * 1000.0
    n_scored = len(tickets) - n_shed
    return {
        "n_workers": n_workers,
        "capacity_rps": round(float(capacity_rps), 1),
        "offered_rate": round(float(offered), 1),
        "achieved_rate": round(float(achieved), 1),
        "overload_mult": round(float(achieved / capacity_rps), 2),
        "deadline_ms": deadline_ms,
        "candidates_per_request": OVERLOAD_CANDIDATES,
        "max_queue_rows": max_queue_rows,
        "max_queue_age_ms": deadline_ms,
        "n_requests": n_requests,
        "accepted": len(tickets),
        "rejected": n_rejected,
        "shed": n_shed,
        "scored": n_scored,
        "drop_frac": round((n_rejected + n_shed) / n_requests, 4),
        "scored_latency_ms": {
            "p50": round(float(p50), 3),
            "p95": round(float(p95), 3),
            "max": round(float(scored_lat.max()), 3),
        },
        "max_flush_ms": round(max_flush_ms, 3),
        "p95_bound_ms": round(deadline_ms + max_flush_ms + SLACK_MS, 3),
    }


def _scaling_flood(n_workers: int, rows_per_worker: int,
                   probe_seconds: float, rng: np.random.Generator) -> dict:
    """One fused flood against an ``n_workers`` fleet → scored/sec."""
    pool_users, pool_candidates = make_requests(
        rng, 1024, width=OVERLOAD_CANDIDATES
    )
    models = [build_model("dense") for _ in range(n_workers)]
    engine = MultiWorkerEngine(
        models,
        max_delay_ms=OVERLOAD_DEADLINE_MS,
        max_pending=8192,
        max_queue_rows=rows_per_worker,
        # A fleet's aggregate queue is n× deeper and on a shared host
        # each worker's flush slot comes around n× less often — the age
        # budget must cover one fleet-wide drain cycle, not one worker's.
        max_queue_age_ms=OVERLOAD_DEADLINE_MS * n_workers,
        executor="fused",
    )
    tickets = []
    with engine:
        t0 = time.perf_counter()
        t_end = t0 + probe_seconds
        k = 0
        while time.perf_counter() < t_end:
            i = k % 1024
            try:
                tickets.append(
                    engine.submit_items(int(pool_users[i]), pool_candidates[i])
                )
            except OverloadError:
                time.sleep(0.0002)  # queue full: yield to the workers
            k += 1
        engine.drain(timeout=120.0)
        elapsed = time.perf_counter() - t0
        agg = engine.stats()["aggregate"]
    assert all(t.ready for t in tickets), "stranded tickets in scaling probe"
    assert agg["fused_calls"] > 0 and agg["tape_calls"] == 0, (
        "scaling probe did not run on the fused executor"
    )
    scored = sum(1 for t in tickets if not t.failed)
    return {
        "scored_per_sec": scored / elapsed,
        "dedup_ratio": agg["flat_rows"] / max(agg["unique_pairs"], 1),
        "flushes": agg["flushes"],
    }


def measure_fused_scaling(workers=OVERLOAD_WORKERS, probe_seconds: float = 1.2,
                          trials: int = 0) -> dict:
    """Scored/sec of fused 1/2/4-worker fleets — the scaling curve.

    The overload cells size budgets for core-per-worker scaling; this
    probe instead measures *fleet batching capacity*: every worker keeps
    the single-worker queue depth (the PR-6 row budget at ``n=1``) and
    the age budget grows with fleet size, so bigger fleets hold more
    rows in flight and flush bigger co-batches — higher Zipf dedup and
    fewer flush cycles per scored request.  ``trials`` floods run per
    fleet size, interleaved round-robin, and each curve point is the
    median.
    """
    trials = trials or SCALING_TRIALS
    rng = np.random.default_rng(SEED + 7)
    rough = measure_capacity(1, OVERLOAD_DEADLINE_MS, rng)
    rows_per_worker = overload_budget_rows(rough, 1, OVERLOAD_DEADLINE_MS)
    samples = {n: [] for n in workers}
    for trial in range(trials):
        for n_workers in workers:
            probe_rng = np.random.default_rng(SEED + 11 + 31 * trial + n_workers)
            samples[n_workers].append(
                _scaling_flood(n_workers, rows_per_worker, probe_seconds, probe_rng)
            )
    curve = []
    for n_workers in workers:
        rates = [s["scored_per_sec"] for s in samples[n_workers]]
        curve.append({
            "n_workers": n_workers,
            "scored_per_sec": round(float(np.median(rates)), 1),
            "scored_per_sec_trials": [round(r, 1) for r in rates],
            "dedup_ratio": round(
                float(np.median([s["dedup_ratio"] for s in samples[n_workers]])), 3
            ),
            "age_budget_ms": OVERLOAD_DEADLINE_MS * n_workers,
        })
    rates = [point["scored_per_sec"] for point in curve]
    out = {
        "executor": "fused",
        # The gate's parallelism-awareness hinges on these two: how
        # many cores the host really has, and which array backend the
        # flush threads inherited (the env-seeded process default).
        "cpu_count": os.cpu_count(),
        "backend": get_backend().name,
        "deadline_ms": OVERLOAD_DEADLINE_MS,
        "rows_per_worker": rows_per_worker,
        "trials": trials,
        "probe_seconds": probe_seconds,
        "curve": curve,
        "strictly_increasing": all(b > a for a, b in zip(rates, rates[1:])),
    }
    if len(rates) >= 2:
        out["slope_per_worker"] = round(
            (rates[-1] - rates[0]) / (curve[-1]["n_workers"] - curve[0]["n_workers"]), 1
        )
        out["step_ratios"] = [
            round(b / a, 3) for a, b in zip(rates, rates[1:])
        ]
    return out


def measure_backend_parity(n_requests: int = 24) -> dict:
    """Served-score parity: parallel backend vs numpy, fused flushes.

    Serves the same request stream (alternating item and participant
    requests) through two engines per model family — ``backend="numpy"``
    and a chunk-forcing :class:`ParallelBackend` — and compares every
    ticket bitwise.  MGBR runs over a small synthetic dataset (this
    benchmark's GBMF catalog has no group structure); GBMF over the
    standard dense catalog, so both the slab-parallel dot-product mirror
    and the primitives-routed expert/gate flush are covered.
    """
    dataset = generate_dataset(
        SyntheticConfig(n_users=240, n_items=60, n_groups=600), seed=SEED
    )

    def build_mgbr():
        model = MGBR(
            dataset.train, dataset.n_users, dataset.n_items,
            config=MGBRConfig.small(d=8, seed=SEED),
        )
        model.eval()
        model.refresh_cache()
        return model

    def serve(model, backend, n_users, n_items):
        rng = np.random.default_rng(SEED + 17)
        scores = []
        with ServingEngine(
            model, max_delay_ms=1.0, executor="fused", backend=backend
        ) as engine:
            for k in range(n_requests):
                user = int(rng.integers(0, n_users))
                if k % 2 == 0:
                    cands = rng.integers(0, n_items, size=CANDIDATES)
                    scores.append(engine.score_items(user, cands, timeout=30.0))
                else:
                    item = int(rng.integers(0, n_items))
                    cands = rng.integers(0, n_users, size=CANDIDATES)
                    scores.append(
                        engine.score_participants(user, item, cands, timeout=30.0)
                    )
            stats = engine.stats()
        return scores, stats

    chunked = ParallelBackend(n_threads=4, min_parallel_rows=64)
    models = {}
    try:
        for name, build, n_users, n_items in (
            ("GBMF", lambda: build_model("dense"), N_USERS, N_ITEMS),
            ("MGBR", build_mgbr, dataset.n_users, dataset.n_items),
        ):
            reference, _ = serve(build(), "numpy", n_users, n_items)
            parallel, stats = serve(build(), chunked, n_users, n_items)
            assert stats["batcher"]["fused_calls"] > 0, (
                f"{name} parity cell did not flush fused"
            )
            models[name] = {
                "requests": n_requests,
                "scores_identical": all(
                    np.array_equal(a, b) for a, b in zip(reference, parallel)
                ),
                "fused_calls": stats["batcher"]["fused_calls"],
            }
    finally:
        chunked.close()
    return {
        "n_threads": chunked.n_threads,
        "min_parallel_rows": chunked.min_parallel_rows,
        "models": models,
    }


def run_overload_cells(workers=OVERLOAD_WORKERS, n_requests: int = 0) -> list:
    cells = []
    for n_workers in workers:
        rng = np.random.default_rng(SEED + 2 + n_workers)
        capacity = measure_capacity(n_workers, OVERLOAD_DEADLINE_MS, rng)
        n = n_requests or int(min(max(capacity * OVERLOAD_MULT * 1.0, 600), 4000))
        cells.append(
            run_overload_cell(n_workers, capacity, OVERLOAD_DEADLINE_MS, n, rng)
        )
    return cells


def run_benchmark(rates=RATES, deadlines=DEADLINES_MS, stores=STORES,
                  n_requests: int = 0) -> dict:
    report = {
        "config": {
            "n_users": N_USERS, "n_items": N_ITEMS, "dim": DIM,
            "candidates_per_request": CANDIDATES, "n_shards": N_SHARDS,
            "lru_capacity": LRU_CAPACITY, "zipf_a": ZIPF_A,
            "slack_ms": SLACK_MS,
        },
        "cells": [],
    }
    for store in stores:
        model = build_model(store)
        for rate in rates:
            for deadline in deadlines:
                rng = np.random.default_rng(SEED + 1)
                n = n_requests or int(min(max(rate * 1.5, 300), 3000))
                cell = run_cell(model, rate, deadline, n, rng)
                cell["store"] = store
                report["cells"].append(cell)
    return report


def add_overload_config(report: dict) -> None:
    report["config"]["overload"] = {
        "mult": OVERLOAD_MULT,
        "deadline_ms": OVERLOAD_DEADLINE_MS,
        "workers": list(OVERLOAD_WORKERS),
        "candidates_per_request": OVERLOAD_CANDIDATES,
    }


def check_report(report: dict) -> None:
    """Acceptance gates (also exercised by the CI smoke run)."""
    assert report["cells"], "no cells measured"
    steady = [c for c in report["cells"] if c["steady_state"]]
    assert steady, "no steady-state cells — offered rates too high for this host"
    for cell in steady:
        assert cell["latency_ms"]["p95"] <= cell["p95_bound_ms"], (
            f"{cell['store']} @ {cell['offered_rate']}/s, "
            f"deadline {cell['deadline_ms']}ms: p95 {cell['latency_ms']['p95']}ms "
            f"exceeds max_delay + flush + slack = {cell['p95_bound_ms']}ms"
        )
    lru = [c for c in report["cells"] if c["store"] == "lru"]
    for cell in lru:
        assert cell["cache_hit_rate"] is not None
        # Zipf-skewed ids must actually hit the hot-row cache.
        assert cell["cache_hit_rate"] > 0.2, (
            f"LRU hit rate collapsed to {cell['cache_hit_rate']}"
        )
    for cell in report.get("overload_cells", []):
        label = f"overload x{cell['n_workers']} workers"
        # Bounded latency for whatever was scored: the age budget sheds
        # anything older before planning, so p95 cannot balloon with
        # queue depth the way an unbounded queue would.
        if cell["scored"] >= 20:
            assert cell["scored_latency_ms"]["p95"] <= cell["p95_bound_ms"], (
                f"{label}: scored p95 {cell['scored_latency_ms']['p95']}ms "
                f"exceeds age budget + flush + slack = {cell['p95_bound_ms']}ms"
            )
        # The drop rate (rejected + shed) must absorb the offered
        # excess.  The floor keeps 3x headroom over the probed capacity
        # — on a loaded host the cell's scored rate can run ~2x the
        # flood probe's — with a 0.10 minimum that still catches
        # disarmed budgets (those would also blow the p95 gate above,
        # which is the structural teeth of this contract).
        mult = cell["overload_mult"]
        if mult > 1.5:
            floor = max(0.10, 1.0 - 3.0 / mult)
            assert cell["drop_frac"] >= floor, (
                f"{label}: drop_frac {cell['drop_frac']} < {floor:.3f} "
                f"at {mult}x capacity — overload was not absorbed"
            )
    scaling = report.get("fused_scaling")
    if scaling:
        rates = [point["scored_per_sec"] for point in scaling["curve"]]
        workers = [point["n_workers"] for point in scaling["curve"]]
        for (wa, a), (wb, b) in zip(zip(workers, rates), zip(workers[1:], rates[1:])):
            assert b > a, (
                f"fused scaling curve not strictly increasing: "
                f"{wa} workers → {a}/s but {wb} workers → {b}/s"
            )
        # Parallelism-aware tightening: on a host with real cores each
        # extra worker must buy a measurable step (batching + true
        # parallelism compound), not just a rounding-error win.  On a
        # serialized host (1 CPU) the historical strict increase above
        # is the whole contract — the batching mechanism alone carries
        # the curve there.
        if scaling.get("cpu_count", 1) >= 2:
            for (wa, a), (wb, b) in zip(
                zip(workers, rates), zip(workers[1:], rates[1:])
            ):
                assert b >= 1.05 * a, (
                    f"fused scaling step {wa}→{wb} workers only "
                    f"{b / a:.3f}x on a {scaling['cpu_count']}-cpu host "
                    f"(needs ≥1.05x)"
                )
    parity = report.get("backend_parity")
    if parity:
        for name, cell in parity["models"].items():
            assert cell["scores_identical"], (
                f"{name}: parallel-backend served scores diverged from numpy"
            )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (one rate/deadline cell per store); "
        "skips the JSON artifact",
    )
    args = parser.parse_args()
    if args.smoke:
        if "REPRO_BENCH_SERVE_SLACK_MS" not in os.environ:
            # 250 requests span ~0.5s: one scheduler stall on a shared
            # CI runner moves p95, so the smoke gate gets wider slack
            # (still far below unbounded-queueing latencies).
            SLACK_MS = 100.0
        result = run_benchmark(
            rates=(500.0,), deadlines=(5.0,), n_requests=250
        )
        result["overload_cells"] = run_overload_cells(workers=(2,))
        result["fused_scaling"] = measure_fused_scaling(
            workers=(1, 2), probe_seconds=0.5, trials=2
        )
        result["backend_parity"] = measure_backend_parity(n_requests=12)
    else:
        result = run_benchmark()
        result["overload_cells"] = run_overload_cells()
        result["fused_scaling"] = measure_fused_scaling()
        result["backend_parity"] = measure_backend_parity()
    add_overload_config(result)
    check_report(result)
    if not args.smoke:
        OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
