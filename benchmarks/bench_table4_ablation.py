"""Table IV — ablation study of MGBR's components.

Trains the five ablated variants plus full MGBR with identical budgets
and reports both tasks' metric grids with relative drops versus MGBR.

Paper reference values (Beibei, MRR@10):

    variant    Task A   Task B
    MGBR-M-R   0.2531   0.2344
    MGBR-M     0.2607   0.2471
    MGBR-G     0.6126   0.4707
    MGBR-R     0.4228   0.4769
    MGBR-D     0.5189   0.4494
    MGBR       0.6401   0.6484

Shape notes (see EXPERIMENTS.md for the honest ledger):

* The **auxiliary-loss ablation (-R)** reproduces directly: removing
  ``L'_A``/``L'_B`` costs Task-B accuracy — asserted below.  This is the
  paper's Sec. III-F point 2.
* The **shared-experts ablation (-M)** produces its catastrophic paper
  gap only in sparse/noisy signal regimes (Beibei), where the shared
  bank regularises conflicting task gradients.  On the dense synthetic
  substrate the simpler towers remain competitive, so the bench asserts
  architecture-level facts (parameter deltas, trainability) and
  *records* the metric deltas rather than asserting their sign.
* All variants must remain healthy learners (beat random ranking on
  both tasks) — an ablation that diverges would void the comparison.
"""

import pytest
from conftest import build_model, metrics_row, train_and_evaluate, write_result

RANDOM_MRR10 = sum(1.0 / r for r in range(1, 11)) / 10  # ≈ 0.2929

VARIANT_ORDER = ["MGBR-M-R", "MGBR-M", "MGBR-G", "MGBR-R", "MGBR-D", "MGBR"]


@pytest.fixture(scope="module")
def table4_results(bench_dataset):
    results = {}
    for name in VARIANT_ORDER:
        _, results[name] = train_and_evaluate(name, bench_dataset)
    return results


def _drop(results, name, task, metric="MRR@10"):
    full = getattr(results["MGBR"]["@10"], task)[metric]
    ours = getattr(results[name]["@10"], task)[metric]
    return 100.0 * (ours - full) / full


def test_table4_ablation_study(benchmark, bench_dataset, table4_results):
    """Regenerate Table IV with relative drops."""

    def report():
        lines = [
            "TABLE IV — ABLATION COMPARISONS",
            "(per task: MRR@10 NDCG@10 MRR@100 NDCG@100; R.Drop on MRR@10)",
        ]
        for name in VARIANT_ORDER:
            row = metrics_row(name, table4_results[name])
            if name != "MGBR":
                row += (
                    f"   R.Drop A {_drop(table4_results, name, 'task_a'):+.1f}%"
                    f"  B {_drop(table4_results, name, 'task_b'):+.1f}%"
                )
            lines.append(row)
        return "\n".join(lines)

    text = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table4_ablation.txt", text)

    # Every variant is a healthy learner on both tasks.
    for name in VARIANT_ORDER:
        r10 = table4_results[name]["@10"]
        assert r10.task_a["MRR@10"] > RANDOM_MRR10, name
        assert r10.task_b["MRR@10"] > RANDOM_MRR10, name


def test_table4_aux_losses_help_task_b(table4_results):
    """Sec. III-F.2: removing L'_A/L'_B (MGBR-R) hurts Task B."""
    full_b = table4_results["MGBR"]["@10"].task_b["MRR@10"]
    ablated_b = table4_results["MGBR-R"]["@10"].task_b["MRR@10"]
    assert ablated_b < full_b


def test_table4_architecture_deltas(bench_dataset):
    """Structural facts behind Table IV's variant column.

    -M and -G remove parameters; -R keeps the architecture but changes
    only the objective; -D swaps three GCNs for one HIN GCN.
    """
    full = build_model("MGBR", bench_dataset)
    m = build_model("MGBR-M", bench_dataset)
    g = build_model("MGBR-G", bench_dataset)
    r = build_model("MGBR-R", bench_dataset)
    d = build_model("MGBR-D", bench_dataset)
    assert m.num_parameters() < full.num_parameters()
    assert g.num_parameters() < full.num_parameters()
    assert r.num_parameters() == full.num_parameters()
    assert not r.supports_aux_losses and full.supports_aux_losses
    from repro.core.views import HINEmbedding

    assert isinstance(d.encoder, HINEmbedding)


def test_table4_report_m_family(table4_results):
    """Record (not assert) the shared-experts deltas with context.

    At paper scale -M collapses; at this dense synthetic scale the
    two-tower variant stays competitive.  The bench records the signed
    deltas so EXPERIMENTS.md can track them across substrate changes.
    """
    text_lines = []
    for name in ("MGBR-M", "MGBR-M-R"):
        text_lines.append(
            f"{name}: dA={_drop(table4_results, name, 'task_a'):+.2f}% "
            f"dB={_drop(table4_results, name, 'task_b'):+.2f}%"
        )
    write_result("table4_m_family_deltas.txt", "\n".join(text_lines))
    # The recorded values must at least be finite real numbers.
    for name in ("MGBR-M", "MGBR-M-R"):
        assert abs(_drop(table4_results, name, "task_b")) < 500
