"""Candidate-list evaluation protocols (paper Sec. III-A2 / III-D).

For each test instance the model scores a candidate list containing the
one positive and ``n_negatives`` sampled negatives:

* **Task A** — instance is an initiator ``u``; candidates are items.
  Negatives are items ``u`` never bought.
* **Task B** — instance is a pair ``(u, i)``; candidates are users.
  Negatives are users outside the observed participant set ``G_{u,i}``.

The paper computes MRR/NDCG@10 with 1:9 lists and MRR/NDCG@100 with
1:99 lists.  Candidate lists are drawn with a *fixed seed held constant
across models*, so Table III comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.negative import NegativeSampler
from repro.data.samples import extract_task_a, extract_task_b
from repro.data.schema import GroupBuyingDataset
from repro.eval.metrics import RankingAccumulator, rank_of_positive
from repro.nn.tensor import no_grad
from repro.utils.rng import SeedLike

__all__ = ["EvalProtocol", "EvalResult", "evaluate_model"]


@dataclass(frozen=True)
class EvalResult:
    """Metric dictionaries per task and cutoff, e.g. ``task_a["MRR@10"]``."""

    task_a: Dict[str, float]
    task_b: Dict[str, float]

    def flat(self) -> Dict[str, float]:
        """Single dict keyed ``A/MRR@10`` style (handy for history logs)."""
        out = {}
        out.update({f"A/{k}": v for k, v in self.task_a.items()})
        out.update({f"B/{k}": v for k, v in self.task_b.items()})
        return out


@dataclass
class EvalProtocol:
    """A reusable evaluation configuration bound to a dataset.

    Parameters
    ----------
    dataset: evaluation source; candidates drawn against its train split.
    n_negatives: negatives per instance (9 → @10 lists, 99 → @100 lists).
    cutoff: metric truncation depth (10 or 100).
    seed: candidate-list RNG seed — keep identical across compared models.
    split: which split supplies the positive instances.
    max_instances: optional cap (benchmarks subsample for speed).
    """

    dataset: GroupBuyingDataset
    n_negatives: int = 9
    cutoff: int = 10
    seed: SeedLike = 123
    split: str = "test"
    max_instances: Optional[int] = None
    _cache: dict = field(default_factory=dict, repr=False)

    def _groups(self):
        groups = getattr(self.dataset, self.split)
        if not groups:
            raise ValueError(f"split {self.split!r} is empty")
        return groups

    def _candidate_lists(self):
        """Materialise (and cache) the candidate lists for both tasks.

        Returns ``(task_a, task_b)`` where each entry is a dict of parallel
        arrays; candidate column 0 is always the positive.
        """
        key = (self.split, self.n_negatives, repr(self.seed), self.max_instances)
        if key in self._cache:
            return self._cache[key]
        groups = self._groups()
        sampler = NegativeSampler(
            self.dataset, seed=self.seed, splits=("train", "validation", "test")
        )
        task_a = extract_task_a(groups)
        task_b = extract_task_b(groups)

        a_idx = np.arange(len(task_a))
        b_idx = np.arange(len(task_b))
        if self.max_instances is not None:
            a_idx = a_idx[: self.max_instances]
            b_idx = b_idx[: self.max_instances]

        a_users = task_a.users[a_idx]
        a_pos = task_a.items[a_idx]
        # The positive may come from a non-train split, so the sampler's
        # train-interaction exclusion alone cannot guarantee it is absent
        # from the negatives — exclude it explicitly per instance.
        a_negs = np.empty((len(a_idx), self.n_negatives), dtype=np.int64)
        for row in range(len(a_idx)):
            a_negs[row] = sampler.sample_items(
                int(a_users[row]), self.n_negatives, extra_exclude=(int(a_pos[row]),)
            )
        a_cands = np.concatenate([a_pos[:, None], a_negs], axis=1)

        b_users = task_b.users[b_idx]
        b_items = task_b.items[b_idx]
        b_pos = task_b.participants[b_idx]
        # Negatives come from U \ G (Sec. III-A2): exclude the *entire*
        # observed participant set of this instance's group — the
        # sampler's train-split G_{u,i} does not know test-split groups.
        b_negs = np.empty((len(b_idx), self.n_negatives), dtype=np.int64)
        for row in range(len(b_idx)):
            group = groups[int(task_b.group_index[b_idx[row]])]
            b_negs[row] = sampler.sample_participants(
                int(b_users[row]), int(b_items[row]), self.n_negatives,
                extra_exclude=group.participants,
            )
        b_cands = np.concatenate([b_pos[:, None], b_negs], axis=1)

        lists = (
            {"users": a_users, "candidates": a_cands},
            {"users": b_users, "items": b_items, "candidates": b_cands},
        )
        self._cache[key] = lists
        return lists

    def run(self, model) -> EvalResult:
        """Score both tasks' candidate lists with ``model``.

        The model must implement the :class:`repro.baselines.base
        .GroupBuyingRecommender` scoring interface.  Runs in eval mode
        under ``no_grad``.
        """
        was_training = getattr(model, "training", False)
        model.eval()
        try:
            with no_grad():
                if hasattr(model, "refresh_cache"):
                    model.refresh_cache()
                task_a, task_b = self._candidate_lists()
                acc_a = RankingAccumulator(self.cutoff)
                users, cands = task_a["users"], task_a["candidates"]
                n_list = cands.shape[1]
                for row in range(len(users)):
                    u_rep = np.full(n_list, users[row], dtype=np.int64)
                    scores = model.score_items(u_rep, cands[row])
                    acc_a.add(rank_of_positive(np.asarray(scores.data).ravel(), 0))

                acc_b = RankingAccumulator(self.cutoff)
                users, items, cands = (
                    task_b["users"],
                    task_b["items"],
                    task_b["candidates"],
                )
                n_list = cands.shape[1]
                for row in range(len(users)):
                    u_rep = np.full(n_list, users[row], dtype=np.int64)
                    i_rep = np.full(n_list, items[row], dtype=np.int64)
                    scores = model.score_participants(u_rep, i_rep, cands[row])
                    acc_b.add(rank_of_positive(np.asarray(scores.data).ravel(), 0))
        finally:
            if was_training:
                model.train()
        return EvalResult(task_a=acc_a.result(), task_b=acc_b.result())


def evaluate_model(
    model,
    dataset: GroupBuyingDataset,
    protocols: Sequence[tuple] = ((9, 10), (99, 100)),
    seed: SeedLike = 123,
    split: str = "test",
    max_instances: Optional[int] = None,
) -> Dict[str, EvalResult]:
    """Run the paper's two standard protocols and key results by cutoff.

    Returns e.g. ``{"@10": EvalResult, "@100": EvalResult}``.
    """
    out: Dict[str, EvalResult] = {}
    for n_neg, cutoff in protocols:
        protocol = EvalProtocol(
            dataset=dataset,
            n_negatives=n_neg,
            cutoff=cutoff,
            seed=seed,
            split=split,
            max_instances=max_instances,
        )
        out[f"@{cutoff}"] = protocol.run(model)
    return out
