"""Shared fixtures: tiny deterministic datasets and models.

Everything here is deliberately small — the substrate is NumPy, so tests
use graphs of tens of nodes and a handful of training steps.  Fixtures
are session-scoped where construction is expensive and the object is
treated read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MGBR, MGBRConfig
from repro.data import GroupBuyingDataset, DealGroup, SyntheticConfig, generate_dataset


@pytest.fixture(scope="session")
def tiny_dataset() -> GroupBuyingDataset:
    """A small synthetic dataset shared by read-only tests."""
    return generate_dataset(
        SyntheticConfig(n_users=80, n_items=30, n_groups=300, min_interactions=3),
        seed=11,
    )


@pytest.fixture(scope="session")
def small_config() -> MGBRConfig:
    """Fast MGBR profile for model construction in tests."""
    return MGBRConfig.small(
        d=8, n_experts=2, mtl_layers=2, aux_negatives=4, train_negatives=3, seed=3
    )


@pytest.fixture(scope="session")
def tiny_mgbr(tiny_dataset, small_config) -> MGBR:
    """An untrained MGBR over the tiny dataset (read-only in tests)."""
    return MGBR(
        tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items, config=small_config
    )


@pytest.fixture()
def handmade_groups():
    """A handcrafted micro-dataset with known structure.

    4 users, 3 items.  User 0 launches items 0 and 1; user 3 launches
    item 2; users 1 and 2 participate.
    """
    return [
        DealGroup(initiator=0, item=0, participants=(1, 2)),
        DealGroup(initiator=0, item=1, participants=(1,)),
        DealGroup(initiator=3, item=2, participants=(2,)),
    ]


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
