"""Unit tests for sparse adjacency products (spmm)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import gradcheck, spmm, tensor, to_csr


class TestToCsr:
    def test_dense_input(self):
        out = to_csr(np.eye(3))
        assert sp.issparse(out)
        assert out.dtype == np.float64

    def test_sparse_passthrough_format(self):
        coo = sp.random(4, 4, density=0.5, format="coo", random_state=0)
        out = to_csr(coo)
        assert out.format == "csr"

    def test_dtype_upcast(self):
        m = sp.identity(3, dtype=np.float32, format="csr")
        assert to_csr(m).dtype == np.float64


class TestSpmm:
    def test_matches_dense_product(self, rng):
        a = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        x = tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(spmm(a, x).data, a.toarray() @ x.data)

    def test_gradcheck(self, rng):
        a = sp.random(6, 5, density=0.5, random_state=1, format="csr")
        x = tensor(rng.normal(size=(5, 4)), requires_grad=True)
        assert gradcheck(lambda t: spmm(a, t), [x])

    def test_gradient_is_transpose_product(self, rng):
        a = sp.random(4, 3, density=0.6, random_state=2, format="csr")
        x = tensor(rng.normal(size=(3, 2)), requires_grad=True)
        out = spmm(a, x)
        g = rng.normal(size=out.shape)
        out.backward(g)
        np.testing.assert_allclose(x.grad, a.toarray().T @ g)

    def test_dimension_mismatch(self, rng):
        a = sp.identity(4, format="csr")
        with pytest.raises(ValueError):
            spmm(a, tensor(rng.normal(size=(5, 2))))

    def test_non_2d_dense_rejected(self, rng):
        a = sp.identity(3, format="csr")
        with pytest.raises(ValueError):
            spmm(a, tensor(rng.normal(size=3)))

    def test_empty_rows_propagate_zero(self):
        a = sp.csr_matrix((3, 3))  # all-zero adjacency
        x = tensor(np.ones((3, 2)), requires_grad=True)
        out = spmm(a, x)
        np.testing.assert_array_equal(out.data, np.zeros((3, 2)))

    def test_identity_is_noop(self, rng):
        x = tensor(rng.normal(size=(5, 3)))
        out = spmm(sp.identity(5, format="csr"), x)
        np.testing.assert_allclose(out.data, x.data)
