"""``repro.core`` — the paper's contribution: the MGBR model.

Multi-view GCN embeddings (Eq. 1-6), the expert/gate multi-task module
(Eq. 7-15), prediction heads (Eq. 16/17), the four training objectives
(Eq. 18-25), and the five ablation variants of Table IV.
"""

from repro.core.config import MGBRConfig
from repro.core.experts import ExpertBank
from repro.core.gates import AdjustedGate, GateAttention, GenericGate, SharedGate, TaskGate
from repro.core.losses import (
    LossBreakdown,
    aux_loss_task_a,
    aux_loss_task_b,
    aux_losses_from_scores,
    bpr_loss,
    listwise_aux_loss,
    total_loss,
)
from repro.core.model import MGBR
from repro.core.mtl import MTLLayer, MultiTaskModule
from repro.core.prediction import PredictionHead
from repro.core.variants import VARIANTS, build_variant, variant_config
from repro.core.views import HINEmbedding, MultiViewEmbedding
from repro.plan import PlannedBatch, ScoringPlan

__all__ = [
    "MGBRConfig",
    "MGBR",
    "ScoringPlan",
    "PlannedBatch",
    "MultiViewEmbedding",
    "HINEmbedding",
    "ExpertBank",
    "GateAttention",
    "GenericGate",
    "AdjustedGate",
    "TaskGate",
    "SharedGate",
    "MTLLayer",
    "MultiTaskModule",
    "PredictionHead",
    "bpr_loss",
    "listwise_aux_loss",
    "aux_loss_task_a",
    "aux_loss_task_b",
    "aux_losses_from_scores",
    "total_loss",
    "LossBreakdown",
    "VARIANTS",
    "variant_config",
    "build_variant",
]
