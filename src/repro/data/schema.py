"""Core data structures for group-buying records.

The paper's unit of observation is a *deal group* ``<u, i, G>``: an
initiator ``u``, the item ``i`` they launched, and the participant set
``G = {p₁ … p_|G|}`` (Sec. II-A).  A dataset is a set of deal groups over
contiguous user/item id spaces plus the train/validation/test partition
of those groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

__all__ = ["DealGroup", "GroupBuyingDataset"]


@dataclass(frozen=True)
class DealGroup:
    """One observed deal group ``<u, i, G>``.

    Attributes
    ----------
    initiator: user id of the group launcher.
    item: item id the group buys.
    participants: user ids that joined (excludes the initiator).
    """

    initiator: int
    item: int
    participants: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.initiator < 0 or self.item < 0:
            raise ValueError(f"negative ids in group ({self.initiator}, {self.item})")
        if any(p < 0 for p in self.participants):
            raise ValueError("negative participant id")
        if self.initiator in self.participants:
            raise ValueError(
                f"initiator {self.initiator} cannot also be a participant"
            )
        if len(set(self.participants)) != len(self.participants):
            raise ValueError("duplicate participants in one group")

    @property
    def size(self) -> int:
        """Number of participants |G| (the initiator is not counted)."""
        return len(self.participants)

    def members(self) -> Tuple[int, ...]:
        """All users touching the group: initiator first, then participants."""
        return (self.initiator, *self.participants)


@dataclass
class GroupBuyingDataset:
    """A complete group-buying dataset with its train/val/test partition.

    Attributes
    ----------
    n_users / n_items: sizes of the contiguous id spaces.
    train / validation / test: disjoint lists of :class:`DealGroup`.
    name: human-readable provenance tag.
    """

    n_users: int
    n_items: int
    train: List[DealGroup]
    validation: List[DealGroup] = field(default_factory=list)
    test: List[DealGroup] = field(default_factory=list)
    name: str = "synthetic-beibei"

    def __post_init__(self) -> None:
        for split_name, groups in (
            ("train", self.train),
            ("validation", self.validation),
            ("test", self.test),
        ):
            for g in groups:
                if g.initiator >= self.n_users or any(
                    p >= self.n_users for p in g.participants
                ):
                    raise ValueError(f"{split_name} group references unknown user: {g}")
                if g.item >= self.n_items:
                    raise ValueError(f"{split_name} group references unknown item: {g}")

    # ------------------------------------------------------------------
    # Views over the partition
    # ------------------------------------------------------------------
    @property
    def all_groups(self) -> List[DealGroup]:
        """Every deal group across all splits."""
        return [*self.train, *self.validation, *self.test]

    @property
    def n_groups(self) -> int:
        """Total deal-group count (Table I's "deal group" row)."""
        return len(self.train) + len(self.validation) + len(self.test)

    # ------------------------------------------------------------------
    # Interaction indexes (built lazily, cached)
    # ------------------------------------------------------------------
    def user_items(self, splits: Sequence[str] = ("train",)) -> Dict[int, Set[int]]:
        """Items each user interacted with (launch or join) in ``splits``.

        Task A's negative sampler excludes these: a negative item for
        ``u`` must be one ``u`` never bought (Sec. III-A2).
        """
        out: Dict[int, Set[int]] = {}
        for group in self._iter_splits(splits):
            out.setdefault(group.initiator, set()).add(group.item)
            for p in group.participants:
                out.setdefault(p, set()).add(group.item)
        return out

    def group_members(self, splits: Sequence[str] = ("train",)) -> Dict[Tuple[int, int], Set[int]]:
        """Map ``(u, i) -> G_{u,i}``: all participants ever seen with that pair.

        This is the paper's ``G_{u,i}`` used when sampling corrupted
        participants for the auxiliary losses (Sec. II-G1).
        """
        out: Dict[Tuple[int, int], Set[int]] = {}
        for group in self._iter_splits(splits):
            key = (group.initiator, group.item)
            out.setdefault(key, set()).update(group.participants)
        return out

    def user_interaction_counts(self, splits: Sequence[str] = ("train", "validation", "test")) -> Dict[int, int]:
        """Purchase-record count per user (launches + joins), for filtering."""
        counts: Dict[int, int] = {}
        for group in self._iter_splits(splits):
            counts[group.initiator] = counts.get(group.initiator, 0) + 1
            for p in group.participants:
                counts[p] = counts.get(p, 0) + 1
        return counts

    def _iter_splits(self, splits: Sequence[str]):
        mapping = {"train": self.train, "validation": self.validation, "test": self.test}
        for split in splits:
            if split not in mapping:
                raise KeyError(f"unknown split {split!r}; expected train/validation/test")
            yield from mapping[split]

    def summary(self) -> Dict[str, int]:
        """Dataset statistics in the shape of the paper's Table I."""
        sizes = [g.size for g in self.all_groups]
        return {
            "user": self.n_users,
            "item": self.n_items,
            "deal group": self.n_groups,
            "train groups": len(self.train),
            "validation groups": len(self.validation),
            "test groups": len(self.test),
            "max group size": max(sizes) if sizes else 0,
        }
