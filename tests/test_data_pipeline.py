"""Tests for preprocessing, splits, samples, batching and persistence."""

import numpy as np
import pytest

from repro.data import (
    DealGroup,
    GroupBuyingDataset,
    export_json,
    extract_task_a,
    extract_task_b,
    filter_min_interactions,
    import_json,
    iter_task_a_batches,
    iter_task_b_batches,
    load_dataset,
    n_batches,
    remap_ids,
    save_dataset,
    split_groups,
)
from repro.data.statistics import compute_statistics, format_table1


class TestFilter:
    def test_removes_underactive_users_to_fixed_point(self):
        # u0 appears 3x, u1 2x, u2 1x.  With threshold 2, removing u2
        # kills group B, dropping u1 to 1 -> cascade removes u1 too.
        groups = [
            DealGroup(0, 0, (1,)),       # A
            DealGroup(0, 1, (1, 2)),     # B (contains u2)
            DealGroup(0, 2, ()),         # C
        ]
        data, stats = filter_min_interactions(groups, 3, 3, min_interactions=2)
        survivors = {g.initiator for g in data.groups}
        survivors |= {p for g in data.groups for p in g.participants}
        assert stats.rounds >= 2
        # Only u0 can survive, via groups A?? A contains u1 -> removed.
        # Cascade: only group C (u0 alone) remains if u0 still has >=2...
        # it doesn't, so everything is removed.
        assert data.groups == [] or all(u == 0 for u in survivors)

    def test_threshold_zero_keeps_everything(self):
        groups = [DealGroup(0, 0, (1,)), DealGroup(2, 1, ())]
        data, stats = filter_min_interactions(groups, 5, 3, min_interactions=0)
        assert len(data.groups) == 2
        assert stats.groups_removed == 0

    def test_remapping_contiguous(self):
        groups = [DealGroup(10, 7, (20,)), DealGroup(10, 9, (30,)), DealGroup(20, 7, (10,)), DealGroup(30, 9, (10,))]
        data, _ = filter_min_interactions(groups, 31, 10, min_interactions=1)
        users = {g.initiator for g in data.groups} | {
            p for g in data.groups for p in g.participants
        }
        assert users == set(range(data.n_users))

    def test_remap_ids_orders_by_appearance(self):
        groups = [DealGroup(5, 9, (2,))]
        remapped, user_map, item_map = remap_ids(groups)
        assert user_map == {5: 0, 2: 1}
        assert item_map == {9: 0}
        assert remapped[0] == DealGroup(0, 0, (1,))


class TestSplit:
    def test_partition_is_exact(self):
        groups = [DealGroup(i % 5, i % 3, ()) for i in range(110)]
        train, val, test = split_groups(groups, (7, 3, 1), seed=0)
        assert len(train) + len(val) + len(test) == 110
        assert len(val) == 110 * 3 // 11
        assert len(test) == 110 * 1 // 11

    def test_deterministic_given_seed(self):
        groups = [DealGroup(i % 5, i % 3, ()) for i in range(40)]
        a = split_groups(groups, seed=3)
        b = split_groups(groups, seed=3)
        assert a == b

    def test_no_group_duplicated(self):
        groups = [DealGroup(i, 0, ()) for i in range(30)]
        train, val, test = split_groups(groups, seed=1)
        ids = [g.initiator for g in train + val + test]
        assert sorted(ids) == list(range(30))

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            split_groups([], (1, 2), seed=0)
        with pytest.raises(ValueError):
            split_groups([], (0, 0, 0), seed=0)


class TestSamples:
    def test_task_a_one_per_group(self, handmade_groups):
        samples = extract_task_a(handmade_groups)
        assert len(samples) == 3
        np.testing.assert_array_equal(samples.users, [0, 0, 3])
        np.testing.assert_array_equal(samples.items, [0, 1, 2])

    def test_task_b_one_per_participant(self, handmade_groups):
        samples = extract_task_b(handmade_groups)
        assert len(samples) == 4
        np.testing.assert_array_equal(samples.participants, [1, 2, 1, 2])
        np.testing.assert_array_equal(samples.group_index, [0, 0, 1, 2])

    def test_mismatched_arrays_rejected(self):
        from repro.data.samples import TaskASamples

        with pytest.raises(ValueError):
            TaskASamples(
                users=np.arange(3), items=np.arange(2), group_index=np.arange(3)
            )


class TestBatching:
    def test_n_batches(self):
        assert n_batches(100, 32) == 4
        assert n_batches(96, 32) == 3
        assert n_batches(100, 32, drop_last=True) == 3

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            n_batches(10, 0)

    def test_task_a_batches_cover_everything(self, handmade_groups):
        samples = extract_task_a(handmade_groups)
        seen = []
        for batch in iter_task_a_batches(samples, batch_size=2, seed=0):
            seen.extend(batch["items"].tolist())
        assert sorted(seen) == [0, 1, 2]

    def test_task_b_batch_fields(self, handmade_groups):
        samples = extract_task_b(handmade_groups)
        batch = next(iter_task_b_batches(samples, batch_size=3, seed=0))
        assert set(batch) == {"index", "users", "items", "participants", "group_index"}
        assert len(batch["users"]) == 3
        np.testing.assert_array_equal(batch["users"], samples.users[batch["index"]])

    def test_shuffle_changes_order_but_not_content(self, handmade_groups):
        samples = extract_task_b(handmade_groups)
        run = lambda s: [
            tuple(b["participants"]) for b in iter_task_b_batches(samples, 2, seed=s)
        ]
        assert sorted(np.concatenate(run(1))) == sorted(np.concatenate(run(2)))

    def test_drop_last(self, handmade_groups):
        samples = extract_task_b(handmade_groups)  # 4 triples
        batches = list(iter_task_b_batches(samples, 3, drop_last=True, seed=0))
        assert len(batches) == 1 and len(batches[0]["users"]) == 3


class TestPersistence:
    def _dataset(self):
        return GroupBuyingDataset(
            n_users=4,
            n_items=3,
            train=[DealGroup(0, 0, (1, 2)), DealGroup(3, 2, ())],
            validation=[DealGroup(1, 1, (0,))],
            test=[DealGroup(2, 0, (3,))],
            name="unit",
        )

    def test_npz_roundtrip(self, tmp_path):
        ds = self._dataset()
        path = save_dataset(ds, tmp_path / "data")
        loaded = load_dataset(path)
        assert loaded.n_users == ds.n_users
        assert loaded.train == ds.train
        assert loaded.validation == ds.validation
        assert loaded.test == ds.test
        assert loaded.name == "unit"

    def test_npz_suffix_added(self, tmp_path):
        path = save_dataset(self._dataset(), tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_json_roundtrip(self, tmp_path):
        ds = self._dataset()
        path = export_json(ds, tmp_path / "data.json")
        loaded = import_json(path)
        assert loaded.train == ds.train and loaded.n_items == ds.n_items

    def test_empty_split_roundtrip(self, tmp_path):
        ds = GroupBuyingDataset(n_users=2, n_items=1, train=[DealGroup(0, 0, (1,))])
        loaded = load_dataset(save_dataset(ds, tmp_path / "d"))
        assert loaded.validation == [] and loaded.test == []


class TestStatistics:
    def test_table1_numbers(self, handmade_groups):
        ds = GroupBuyingDataset(n_users=4, n_items=3, train=list(handmade_groups))
        stats = compute_statistics(ds)
        assert stats.n_groups == 3
        assert stats.n_task_a_pairs == 3
        assert stats.n_task_b_triples == 4
        assert stats.n_initiators == 2
        assert stats.n_participants == 2
        assert stats.max_group_size == 2

    def test_density_bounds(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        for d in (stats.ui_density, stats.pi_density, stats.up_density):
            assert 0.0 <= d <= 1.0

    def test_format_table1_contains_rows(self, tiny_dataset):
        text = format_table1(compute_statistics(tiny_dataset))
        assert "TABLE I" in text
        assert "user" in text and "item" in text and "deal group" in text
