"""Failure-injection tests: corrupted inputs must fail loudly, not drift.

A recommender pipeline has many silent-corruption hazards (NaNs from a
degenerate graph, stale caches after parameter surgery, truncated
checkpoints).  These tests pin the failure behaviour.
"""

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.data import DealGroup, GroupBuyingDataset
from repro.graph import normalized_adjacency, edges_to_adjacency
from repro.nn import Adam, tensor
from repro.training import Trainer, TrainConfig, load_checkpoint, restore_model, save_checkpoint


class TestNaNPropagation:
    def test_normalization_never_produces_nan(self):
        # Isolated nodes / zero degrees must not create NaN rows.
        adj = edges_to_adjacency([], 5)  # fully disconnected
        norm = normalized_adjacency(adj, add_self_loops=False)
        assert np.all(np.isfinite(norm.toarray()))

    def test_training_detects_injected_nan(self, tiny_dataset, small_config):
        model = MGBR(tiny_dataset.train, tiny_dataset.n_users,
                     tiny_dataset.n_items, config=small_config)
        # Poison one GCN weight.
        model.encoder.gcn_ui.features.weight.data[0, 0] = np.nan
        emb = model.compute_embeddings()
        assert np.isnan(emb.user.data).any()  # NaN visibly propagates


class TestCheckpointCorruption:
    def test_truncated_file_raises(self, tmp_path, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        path = save_checkpoint(model, tmp_path / "ok")
        data = path.read_bytes()
        bad = tmp_path / "bad.npz"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_checkpoint(bad)

    def test_wrong_shape_state_rejected(self, tmp_path, tiny_dataset):
        small = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        path = save_checkpoint(small, tmp_path / "small")
        big = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=0)
        with pytest.raises(ValueError):
            restore_model(big, path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nowhere.npz")


class TestStaleCaches:
    def test_table_backed_cache_sees_inplace_updates(self, tiny_dataset):
        # MF caches hold *live references* to the embedding tables, so
        # optimizer-style in-place updates flow through without refresh —
        # unlike GCN models whose caches hold computed outputs (covered in
        # test_core_model::test_public_scoring_uses_cache).
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        model.refresh_cache()
        users, items = np.array([0]), np.array([0])
        before = float(model.score_items(users, items).data[0])
        model.initiator_table.weight.data += 10.0
        after = float(model.score_items(users, items).data[0])
        assert after != before

    def test_trainer_invalidates_cache_each_step(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=4, seed=0)
        model.refresh_cache()
        trainer = Trainer(
            model, tiny_dataset,
            TrainConfig(epochs=1, batch_size=64, train_negatives=2, seed=0),
        )
        trainer.train_epoch()
        assert model._cached is None  # last step left no stale cache


class TestDegenerateDatasets:
    def test_single_item_dataset_trains(self):
        # Degenerate but legal: every group buys the same item.
        groups = [DealGroup(u, 0, ((u + 1) % 6,)) for u in range(6)] * 2
        ds = GroupBuyingDataset(n_users=6, n_items=1, train=groups)
        model = GBMF(6, 1, dim=4, seed=0)
        # Task A negative sampling is impossible (no second item):
        with pytest.raises(ValueError):
            Trainer(
                model, ds, TrainConfig(epochs=1, batch_size=4, train_negatives=1, seed=0)
            ).train_epoch()

    def test_group_with_no_participants_is_fine_for_task_a(self):
        groups = [DealGroup(u, u % 3, ()) for u in range(6)] * 2
        ds = GroupBuyingDataset(n_users=6, n_items=3, train=groups)
        from repro.data import extract_task_a, extract_task_b

        assert len(extract_task_a(ds.train)) == 12
        assert len(extract_task_b(ds.train)) == 0  # trainer would reject

    def test_optimizer_survives_zero_gradient_step(self):
        from repro.nn.module import Parameter

        p = Parameter(np.ones(3))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * tensor(np.zeros(3))).sum().backward()
        opt.step()  # gradient exactly zero: update must stay finite
        assert np.all(np.isfinite(p.data))
