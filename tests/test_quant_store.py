"""Quantised embedding memory tier: codec, wrapper, LRU/process stacking.

The contract under test (docs/quantization.md):

* **Codec** — per-row affine int8 round-trips within ``scale / 2`` per
  element across extreme rows (huge magnitude, denormals, skew), the
  degenerate all-constant/all-zero convention dequantises *exactly*,
  and re-quantising a dequantised row is idempotent.
* **Tier semantics** — grad-enabled reads bypass the shadow to the
  float master (training never sees quantised values); ``no_grad``
  reads dequantise the version-keyed shadow; ``assign_rows`` incremental
  re-quantisation is bit-identical to a full shadow rebuild.
* **Stacking** — LRU caches hold quantised payloads (hits bit-identical
  to misses, no intermediate float allocation), process-sharded workers
  own only quantised buffers (genuine per-worker shrink, inference
  only), and all four layouts dequantise bit-identically.
* **State** — checkpoints stay canonical float: save from any layout,
  restore into a quantised one (single-file or per-shard streaming).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.nn import CountingBackend, backend_scope
from repro.nn.layers import Embedding
from repro.nn.tensor import dtype_scope, no_grad
from repro.plan import ScoringPlan
from repro.serving import RequestBatcher, ServingEngine
from repro.store import (
    DenseStore,
    LRUCachedStore,
    ProcessShardedStore,
    QuantizedStore,
    ShardedStore,
    iter_stores,
    make_store,
    quant_bytes_per_row,
)
from repro.store.quant import dequantize_rows, quantize_rows
from repro.training.checkpoint import restore_model, save_checkpoint


def _table(rows=41, dim=48, seed=0):
    return np.random.default_rng(seed).normal(size=(rows, dim))


# ---------------------------------------------------------------------------
# Codec properties
# ---------------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("src_dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    def test_round_trip_error_bound(self, src_dtype, mode):
        rng = np.random.default_rng(3)
        # fp16 saturates past ~6.5e4, so its "huge" rows stay in range;
        # int8 side scalars are float32, good to ~3e38.
        huge, spread_hi = (1e18, 1e6) if mode == "int8" else (1e4, 6e4)
        rows = []
        rows.append(rng.normal(size=64))                       # plain
        rows.append(rng.normal(size=64) * huge)                # huge magnitude
        rows.append(rng.normal(size=64) * 1e-38)               # (sub)normal range
        rows.append(-np.abs(rng.normal(size=64)) - 5.0)        # negative-skewed
        rows.append(np.concatenate([np.full(63, 1e-6), [spread_hi]]))
        values = np.stack(rows).astype(src_dtype)
        q, scale, zero = quantize_rows(values, mode)
        got = dequantize_rows(q, scale, zero, dtype=np.float64)
        if mode == "int8":
            assert q.dtype == np.int8
            assert scale.dtype == np.float32 and zero.dtype == np.float32
            bound = scale.astype(np.float64) / 2
            err = np.abs(got - values.astype(np.float64)).max(axis=1)
            # scale/2 per element, plus float32 side-scalar rounding slack.
            assert (err <= bound * (1 + 1e-6)).all()
        else:
            assert q.dtype == np.float16
            assert scale is None and zero is None
            np.testing.assert_array_equal(
                got, values.astype(np.float16).astype(np.float64)
            )

    @pytest.mark.parametrize("row", [np.zeros(16), np.full(16, 3.25),
                                     np.full(16, -7.5), np.full(16, 1e-45)])
    def test_degenerate_rows_exact(self, row):
        q, scale, zero = quantize_rows(row[None, :], "int8")
        assert scale[0] == 1.0  # the convention: scale=1, zero=row value
        np.testing.assert_array_equal(q, 0)
        got = dequantize_rows(q, scale, zero, dtype=np.float64)
        np.testing.assert_array_equal(got[0], row.astype(np.float32))

    def test_spread_underflowing_float32_hits_degenerate_path(self):
        # Spread is nonzero in float64 but rounds to scale == 0 in float32.
        row = np.full(8, 0.5) + np.arange(8) * 1e-42
        q, scale, zero = quantize_rows(row[None, :], "int8")
        assert scale[0] == 1.0
        got = dequantize_rows(q, scale, zero, dtype=np.float64)
        np.testing.assert_array_equal(got[0], np.full(8, np.float32(0.5)))

    def test_non_finite_side_values_raise(self):
        bad = np.stack([np.linspace(-1e300, 1e300, 8)])  # range > f32 max
        with pytest.raises(ValueError, match="non-finite"):
            quantize_rows(bad, "int8")

    def test_requantisation_idempotent(self):
        values = _table(rows=20, dim=32, seed=9)
        q, scale, zero = quantize_rows(values, "int8")
        deq = dequantize_rows(q, scale, zero, dtype=np.float64)
        q2, scale2, zero2 = quantize_rows(deq, "int8")
        # Dequantised values span [zero - 127*scale, zero + 127*scale]
        # exactly, so the refreshed grid reproduces the same codes.
        np.testing.assert_array_equal(scale, scale2)
        np.testing.assert_array_equal(zero, zero2)
        np.testing.assert_array_equal(q, q2)

    def test_bytes_per_row(self):
        assert quant_bytes_per_row(64, "int8") == 72
        assert quant_bytes_per_row(64, "fp16") == 128
        assert quant_bytes_per_row(64, None) == 256
        assert quant_bytes_per_row(64, None, float_itemsize=8) == 512
        # The 0.30× int8 gate needs dim >= 40: (dim+8)/(4*dim).
        assert quant_bytes_per_row(64, "int8") / quant_bytes_per_row(64, None) < 0.30

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="quantize"):
            quantize_rows(_table(4, 4), "int4")
        with pytest.raises(ValueError, match="quantize"):
            make_store(_table(4, 4), quantize="int4")


# ---------------------------------------------------------------------------
# QuantizedStore wrapper semantics
# ---------------------------------------------------------------------------
class TestQuantizedStore:
    def test_construction_guards(self):
        store = DenseStore(_table())
        with pytest.raises(ValueError, match="one mode per table"):
            QuantizedStore(QuantizedStore(store, "int8"), "int8")
        with pytest.raises(ValueError, match="on top"):
            QuantizedStore(LRUCachedStore(DenseStore(_table()), 8), "int8")
        with pytest.raises(ValueError, match="mode"):
            QuantizedStore(DenseStore(_table()), None)

    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    def test_no_grad_gather_matches_codec(self, mode):
        values = _table()
        qs = QuantizedStore(DenseStore(values.copy()), mode)
        q, scale, zero = quantize_rows(values, mode)
        ids = np.array([3, 0, 40, 3, 17])
        with no_grad():
            got = qs.gather(ids).data
        want = dequantize_rows(q[ids], None if scale is None else scale[ids],
                               None if zero is None else zero[ids],
                               dtype=np.float64)
        np.testing.assert_array_equal(got, want)

    def test_grad_reads_bypass_to_master(self):
        values = _table()
        qs = QuantizedStore(DenseStore(values.copy()), "int8")
        out = qs.gather(np.arange(10))  # grad enabled by default
        np.testing.assert_array_equal(out.data, values[:10])
        assert out.requires_grad  # the master's differentiable gather
        full = qs.all()
        np.testing.assert_array_equal(full.data, values)
        assert full is qs.inner.all()  # dense master hands out the Parameter

    def test_version_bump_resyncs_shadow(self):
        values = _table()
        qs = QuantizedStore(DenseStore(values.copy()), "int8")
        with no_grad():
            before = qs.gather(np.arange(5)).data.copy()
        # Optimizer-style in-place update: mutate data, bump the version.
        param = qs.named_parameters()[0][1]
        param.data[:] = param.data * 2.0
        param.bump_version()
        with no_grad():
            after = qs.gather(np.arange(5)).data
        np.testing.assert_array_equal(after, before * 2.0)

    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    def test_assign_rows_matches_full_rebuild(self, mode):
        values = _table()
        qs = QuantizedStore(DenseStore(values.copy()), mode)
        new = _table(seed=7)[:4] * 13.0  # fresh scale range per row
        qs.assign_rows([1, 5, 9, 40], new)
        fresh = QuantizedStore(DenseStore(qs.logical_state()), mode)
        with no_grad():
            got = qs.gather(np.arange(41)).data
            want = fresh.gather(np.arange(41)).data
        np.testing.assert_array_equal(got, want)

    def test_assign_requantised_write_is_idempotent(self):
        qs = QuantizedStore(DenseStore(_table()), "int8")
        with no_grad():
            deq = qs.gather(np.arange(41)).data.copy()
        before = (qs._q.copy(), qs._scale.copy(), qs._zero.copy())
        qs.assign_rows(np.arange(41), deq)  # write back what the tier serves
        np.testing.assert_array_equal(qs._q, before[0])
        np.testing.assert_array_equal(qs._scale, before[1])
        np.testing.assert_array_equal(qs._zero, before[2])

    def test_compute_dtype_follows_scope(self):
        values = _table()
        qs = QuantizedStore(DenseStore(values.copy()), "int8")
        with dtype_scope(np.float32), no_grad():
            out32 = qs.gather(np.arange(6)).data
        with no_grad():
            out64 = qs.gather(np.arange(6)).data
        assert out32.dtype == np.float32 and out64.dtype == np.float64
        # Same codes either way; each output dtype runs the shared codec
        # at that precision (side scalars pre-cast, one multiply-add).
        q, scale, zero = quantize_rows(values, "int8")
        np.testing.assert_array_equal(
            out32, dequantize_rows(q[:6], scale[:6], zero[:6], dtype=np.float32)
        )
        np.testing.assert_array_equal(
            out64, dequantize_rows(q[:6], scale[:6], zero[:6], dtype=np.float64)
        )

    def test_checkpoint_state_is_canonical_float(self):
        values = _table()
        qs = QuantizedStore(ShardedStore(values.copy(), 3), "int8")
        np.testing.assert_array_equal(qs.logical_state(), values)
        ids0, rows0 = qs.shard_rows(0)
        np.testing.assert_array_equal(rows0, values[ids0])

    def test_stats_report_tier_bytes(self):
        values = _table(rows=50, dim=64)
        qs = QuantizedStore(DenseStore(values.copy()), "int8")
        snap = qs.stats_snapshot()
        assert snap["quant_mode"] == "int8"
        assert snap["resident_bytes"] == 50 * 64 + 50 * 8
        assert snap["inner"]["resident_bytes"] == values.nbytes
        ratio = snap["resident_bytes"] / (50 * 64 * 4)  # vs float32 master
        assert ratio <= 0.30


# ---------------------------------------------------------------------------
# make_store / model thread-through
# ---------------------------------------------------------------------------
class TestThreadThrough:
    def test_make_store_wraps_each_layout(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)
        dense = make_store(_table(), quantize="fp16")
        assert isinstance(dense, QuantizedStore)
        assert isinstance(dense.inner, DenseStore)
        sharded = make_store(_table(), n_shards=3, quantize="int8")
        assert isinstance(sharded, QuantizedStore)
        assert isinstance(sharded.inner, ShardedStore)
        assert sharded.n_shards == 3
        plain = make_store(_table())
        assert isinstance(plain, DenseStore)  # quantize=None: no wrapper

    def test_env_default_applies_to_in_process_layouts(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUANTIZE", "int8")
        assert isinstance(make_store(_table()), QuantizedStore)
        assert isinstance(make_store(_table(), n_shards=2), QuantizedStore)
        # Explicit opt-out pins the float baseline under the env default.
        assert isinstance(make_store(_table(), quantize="none"), DenseStore)
        monkeypatch.setenv("REPRO_QUANTIZE", "bogus")
        with pytest.raises(ValueError, match="quantize"):
            make_store(_table())

    def test_env_default_skips_service_stores(self, monkeypatch):
        # Service tables train through the parent; the env knob must not
        # silently flip them into the inference-only quantised mode.
        monkeypatch.setenv("REPRO_QUANTIZE", "int8")
        with make_store(_table(), n_shards=2, service=True) as store:
            assert store.quantize is None
            out = store.gather(np.arange(4))  # grad-enabled: must not raise
            assert out.requires_grad

    def test_embedding_and_config_knobs(self):
        emb = Embedding(12, 48, seed=0, quantize="int8")
        assert isinstance(emb.store, QuantizedStore)
        cfg = MGBRConfig(d=8, gcn_layers=1, embedding_quantize="fp16")
        with pytest.raises(ValueError, match="embedding_quantize"):
            MGBRConfig(d=8, embedding_quantize="int4")
        assert cfg.embedding_quantize == "fp16"

    def test_mgbr_quantized_scores_close_to_float(self, tiny_dataset, small_config):
        import dataclasses
        qcfg = dataclasses.replace(small_config, embedding_quantize="int8")
        base = MGBR(tiny_dataset.train, tiny_dataset.n_users,
                    tiny_dataset.n_items, config=small_config)
        quant = MGBR(tiny_dataset.train, tiny_dataset.n_users,
                     tiny_dataset.n_items, config=qcfg)
        quant.load_state_dict(base.state_dict())
        stores = list(iter_stores(quant))
        assert stores and all(isinstance(s, QuantizedStore) for _, s in stores)
        want = RequestBatcher(base).score_items(0, [0, 1, 2])
        got = RequestBatcher(quant).score_items(0, [0, 1, 2])
        np.testing.assert_allclose(got, want, atol=0.05)

    def test_gbmf_quantized_routes_scoring_through_store(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48,
                     seed=4, quantize="int8")
        assert model._sharded  # wrapped stores hand the scoring paths stores
        batcher = RequestBatcher(model)
        scores = batcher.score_items(0, [0, 1, 2])
        assert np.isfinite(scores).all()
        ref = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48, seed=4)
        want = RequestBatcher(ref).score_items(0, [0, 1, 2])
        np.testing.assert_allclose(scores, want, atol=1e-2)


# ---------------------------------------------------------------------------
# LRU stacking: quantised payloads
# ---------------------------------------------------------------------------
class TestLRUStacking:
    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    def test_hits_bit_identical_to_misses(self, mode):
        qs = make_store(_table(), quantize=mode)
        lru = LRUCachedStore(qs, capacity=64)
        ids = np.array([5, 1, 5, 30, 1])
        with no_grad():
            miss = lru.gather(ids).data.copy()
            hit = lru.gather(ids).data
            direct = qs.gather(ids).data
        np.testing.assert_array_equal(miss, hit)
        np.testing.assert_array_equal(hit, direct)
        snap = lru.stats_snapshot()
        assert snap["cache_hits"] == 3 and snap["cache_misses"] == 3

    def test_cache_holds_quantised_bytes(self):
        values = _table(rows=40, dim=64)
        lru_q = LRUCachedStore(make_store(values, quantize="int8"), capacity=100)
        lru_f = LRUCachedStore(DenseStore(values.copy()), capacity=100)
        with no_grad():
            lru_q.gather(np.arange(40))
            lru_f.gather(np.arange(40))
        qbytes = lru_q.resident_nbytes()
        fbytes = lru_f.resident_nbytes()
        assert qbytes == 40 * (64 + 8)  # codes + two f32 side scalars/row
        assert fbytes == 40 * 64 * 8    # float64 row copies
        assert qbytes / (40 * 64 * 4) <= 0.30  # the int8 gate vs float32
        # Eviction and invalidation keep the ledger exact.
        with no_grad():
            lru_q.gather([0])
        assert lru_q.resident_nbytes() == 40 * (64 + 8)
        lru_q.assign_rows([0], values[:1])
        assert lru_q.resident_nbytes() == 0

    def test_warm_hit_path_is_allocation_free(self):
        """A warm planned gather dequantises payload rows straight into
        the output block the fused executor adopts: the counting backend
        sees zero coercion copies."""
        qs = make_store(_table(rows=60, dim=32, seed=2), quantize="int8")
        lru = LRUCachedStore(qs, capacity=64)
        ids = np.arange(0, 60, 2)  # sorted-unique: the planned fast path
        with no_grad():
            lru.gather(ids)  # warm
            counting = CountingBackend()
            with backend_scope(counting):
                out = lru.gather(ids)
            assert counting.copies == 0
            np.testing.assert_array_equal(out.data, qs.gather(ids).data)

    def test_planned_scoring_copy_free_through_model(self, tiny_dataset):
        from repro.store.lru import cache_hot_rows
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48,
                     seed=4, quantize="int8")
        cache_hot_rows(model, capacity=64)
        users = np.array([0, 3, 5], dtype=np.int64)
        items = np.array([1, 2, 4], dtype=np.int64)
        plan = ScoringPlan.from_item_pairs(users, items)
        store = model.initiator_table.store
        with no_grad():
            store.gather(plan.unique_users, plan=plan, role="users")  # warm
            counting = CountingBackend()
            with backend_scope(counting):
                store.gather(plan.unique_users, plan=plan, role="users")
            assert counting.copies == 0

    def test_eviction_accounting_under_quantised_payloads(self):
        lru = LRUCachedStore(make_store(_table(rows=30, dim=16), quantize="int8"),
                             capacity=10)
        with no_grad():
            lru.gather(np.arange(30))
        snap = lru.stats_snapshot()
        assert snap["cache_rows"] == 10
        assert snap["cache_evictions"] == 20
        assert lru.resident_nbytes() == 10 * (16 + 8)


# ---------------------------------------------------------------------------
# Layout parity
# ---------------------------------------------------------------------------
class TestLayoutParity:
    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    def test_all_layouts_dequantise_bit_identically(self, mode):
        values = _table(rows=53, dim=24, seed=11)
        ids = np.random.default_rng(1).integers(0, 53, size=64)
        dense = make_store(values.copy(), quantize=mode)
        sharded = make_store(values.copy(), n_shards=3, quantize=mode)
        lru = LRUCachedStore(make_store(values.copy(), quantize=mode), capacity=64)
        with no_grad():
            want = dense.gather(ids).data
            np.testing.assert_array_equal(sharded.gather(ids).data, want)
            np.testing.assert_array_equal(lru.gather(ids).data, want)
            np.testing.assert_array_equal(lru.gather(ids).data, want)  # warm
        with make_store(values.copy(), n_shards=2, service=True,
                        quantize=mode) as service:
            with no_grad():
                got = service.gather(ids).data
            # The service arena is float64 (the store dtype); the codec
            # output matches the in-process tier bit for bit.
            np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# Process-sharded quantisation
# ---------------------------------------------------------------------------
class TestServiceQuantisation:
    def test_worker_resident_bytes_shrink(self):
        values = _table(rows=64, dim=64, seed=3)
        with ProcessShardedStore(values.copy(), 2) as fstore, \
                ProcessShardedStore(values.copy(), 2, quantize="int8") as qstore:
            fsnap = fstore.stats_snapshot()
            qsnap = qstore.stats_snapshot()
            assert qsnap["quant_mode"] == "int8"
            for fw, qw in zip(fsnap["workers"], qsnap["workers"]):
                assert fw["resident_bytes"] == 32 * 64 * 8  # float64 rows
                assert qw["resident_bytes"] == 32 * (64 + 8)
                assert qw["peak_resident_bytes"] >= qw["resident_bytes"]
            # vs a float32 deployment of the same shard: still under 0.30.
            assert qsnap["workers"][0]["resident_bytes"] / (32 * 64 * 4) <= 0.30
            assert qsnap["resident_bytes"] == (
                64 * (64 + 8) + qstore._arena_nbytes()
            )

    def test_training_reads_raise(self):
        with ProcessShardedStore(_table(), 2, quantize="int8") as store:
            with pytest.raises(RuntimeError, match="inference only"):
                store.gather(np.arange(4))
            with pytest.raises(RuntimeError, match="inference only"):
                store.all()
            with no_grad():  # inference reads keep working
                assert store.gather(np.arange(4)).data.shape == (4, 48)
                assert store.all().data.shape == (41, 48)

    def test_assign_requantises_worker_side(self):
        values = _table(rows=30, dim=16, seed=5)
        with ProcessShardedStore(values.copy(), 3, quantize="int8") as store:
            new = np.full((4, 16), 2.5)
            store.assign_rows([0, 10, 20, 29], new)
            with no_grad():
                got = store.gather(np.array([0, 10, 20, 29])).data
            np.testing.assert_array_equal(got, new)  # constant rows: exact
            # Untouched rows keep their original codes.
            ref = make_store(values, quantize="int8")
            with no_grad():
                np.testing.assert_array_equal(
                    store.gather(np.array([1, 15])).data,
                    ref.gather(np.array([1, 15])).data,
                )

    def test_rebind_dtype_is_ack_only_for_quantised_workers(self):
        values = _table()
        with ProcessShardedStore(values.copy(), 2, quantize="fp16") as store:
            store.rebind_dtype(np.float32)  # payloads untouched, arena f32
            assert store._res_np.dtype == np.float32
            with no_grad(), dtype_scope(np.float32):
                out = store.gather(np.arange(5)).data
            q, _, _ = quantize_rows(values[:5], "fp16")
            np.testing.assert_array_equal(
                out, dequantize_rows(q, None, None, dtype=np.float32)
            )

    def test_restore_checkpoint_into_quantised_service(self, tiny_dataset, tmp_path):
        trained = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48, seed=4)
        path = save_checkpoint(trained, tmp_path / "gbmf.npz", shard_files=True,
                               dtype="float32")
        serving = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48,
                       seed=9, n_shards=2, service=True, quantize="int8")
        try:
            restore_model(serving, path, dtype="float32")
            ref = make_store(
                trained.initiator_table.store.logical_state().astype(np.float32),
                quantize="int8",
            )
            with no_grad(), dtype_scope(np.float32):
                got = serving.initiator_table.store.gather(np.arange(5)).data
                want = ref.gather(np.arange(5)).data
            np.testing.assert_array_equal(got, want)
        finally:
            for _, store in iter_stores(serving):
                store.close()


# ---------------------------------------------------------------------------
# Checkpoints through wrapper tiers
# ---------------------------------------------------------------------------
class TestCheckpoints:
    def test_shard_files_written_through_wrapper_tiers(self, tiny_dataset, tmp_path):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48,
                     seed=4, n_shards=3, quantize="int8")
        from repro.store.lru import cache_hot_rows
        cache_hot_rows(model, capacity=16)
        path = save_checkpoint(model, tmp_path / "wrapped.npz", shard_files=True)
        side = sorted(p.name for p in tmp_path.iterdir() if "shard" in p.name)
        assert len(side) == 9  # 3 tables × 3 shards despite LRU(Quant(...))
        # Restore into a dense quantised layout: values re-quantise on load.
        target = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48,
                      seed=9, quantize="int8")
        restore_model(target, path)
        with no_grad():
            want = RequestBatcher(model).score_items(0, [0, 1, 2])
            got = RequestBatcher(target).score_items(0, [0, 1, 2])
        np.testing.assert_array_equal(got, want)

    def test_round_trip_is_float_exact(self, tmp_path):
        values = _table()
        emb = Embedding(41, 48, seed=0, quantize="int8")
        emb.store.load_logical(values)
        path = save_checkpoint(emb, tmp_path / "emb.npz")
        fresh = Embedding(41, 48, seed=1, quantize="fp16")
        restore_model(fresh, path, strict=False)
        # Canonical float survives a quantised save → quantised load.
        np.testing.assert_array_equal(fresh.store.logical_state(), values)


# ---------------------------------------------------------------------------
# Observability across stores + engine surface
# ---------------------------------------------------------------------------
class TestResidentBytes:
    def test_every_store_reports_resident_bytes(self):
        values = _table(rows=20, dim=16)
        assert DenseStore(values.copy()).stats_snapshot()["resident_bytes"] == (
            20 * 16 * 8
        )
        assert ShardedStore(values.copy(), 3).stats_snapshot()[
            "resident_bytes"] == 20 * 16 * 8
        lru = LRUCachedStore(DenseStore(values.copy()), 8)
        assert lru.stats_snapshot()["resident_bytes"] == 0  # empty cache
        with ProcessShardedStore(values.copy(), 2) as ps:
            snap = ps.stats_snapshot()
            assert snap["resident_bytes"] == 20 * 16 * 8 + ps._arena_nbytes()
            assert snap["arena_bytes"] == ps._arena_nbytes()

    def test_engine_stats_memory_aggregate(self, tiny_dataset):
        model = GBMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=48,
                     seed=4, quantize="int8")
        with ServingEngine(model, max_delay_ms=2.0) as engine:
            engine.submit_items(0, [0, 1, 2])
            engine.drain(timeout=10.0)
            stats = engine.stats()
        memory = stats["memory"]
        n_users, n_items = tiny_dataset.n_users, tiny_dataset.n_items
        want = {
            "initiator_table": n_users, "participant_table": n_users,
            "item_table": n_items,
        }
        for name, rows in want.items():
            tier = rows * quant_bytes_per_row(48, "int8")
            master = rows * 48 * 8
            assert memory["stores"][name] == tier + master
        assert memory["resident_bytes"] == sum(memory["stores"].values())
