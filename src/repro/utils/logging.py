"""Thin logging facade used across the library.

All modules obtain loggers through :func:`get_logger` so the root
``repro`` logger can be configured once (by the CLI, the trainer, or a
user application) without each module touching global logging state.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"
_CONFIGURED = False


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace.

    ``get_logger("training")`` yields ``repro.training``; ``get_logger()``
    yields the root library logger.
    """
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stderr handler with a compact format to the root logger.

    Safe to call repeatedly; only the first call installs a handler.
    Returns the root library logger either way.
    """
    global _CONFIGURED
    root = logging.getLogger(_ROOT_NAME)
    if not _CONFIGURED:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
        _CONFIGURED = True
    root.setLevel(level)
    return root
