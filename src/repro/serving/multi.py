"""Multi-worker serving: user-partitioned per-worker engines.

One :class:`repro.serving.engine.ServingEngine` means one scorer thread
— one flush pipeline, one encoder/fold cache, one queue.
:class:`MultiWorkerEngine` runs ``n`` of them side by side and
partitions every submit by **initiator user**::

    worker = user % n_workers

Partitioning by user (rather than round-robin) is what keeps the
per-worker caches coherent and hot: a user's requests always land on
the same worker, so that worker's hot-row LRU and encoder cache see the
user's whole stream, and no two workers ever hold conflicting state for
the same request key.  The thread-local autograd mode (PR 5) already
made concurrent ``no_grad`` scoring safe across threads; what it could
*not* make safe is two threads mutating one model's caches — which is
why each worker owns a **model replica** (same weights, distinct
objects).  With identical replicas the composite is bit-identical at
float64 to a single engine serving each user partition (both flush the
same :class:`repro.serving.core.ScoringCore` computation; asserted in
``tests/test_serving_overload.py``).

Replicas are the caller's to provide — construct each model identically
or :func:`repro.training.checkpoint.restore_model` every replica from
one checkpoint.  Overload budgets (``max_queue_rows`` /
``max_queue_age_ms``) apply **per worker**; a single fallback-free
:class:`repro.serving.degrade.DegradationPolicy` may be shared, while
fallback models — being worker-owned mutable state — must come one per
worker (pass a sequence of policies).

``refresh()`` swaps weights on all workers without dropping a ticket:
each per-worker refresh is executed by that worker's thread *between*
flushes, while every queue keeps accepting submits.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serving.core import PendingScores
from repro.serving.degrade import DegradationPolicy
from repro.serving.engine import ServingEngine

__all__ = ["MultiWorkerEngine"]


class MultiWorkerEngine:
    """Partitions serving traffic by user across per-worker engines.

    Parameters
    ----------
    models: one model replica per worker (``n_workers = len(models)``);
        the replicas must be distinct objects with identical catalogs
        (and, for bit-identical scores, identical weights).
    dtype, max_pending, max_delay_ms, max_queue_rows, max_queue_age_ms,
    executor, backend:
        forwarded to every per-worker
        :class:`repro.serving.engine.ServingEngine` (budgets are per
        worker; every replica serves with the same executor and
        array-backend knobs — ``backend="auto"`` makes each worker
        inherit the backend of the thread calling :meth:`start`).
    degradation: ``None``, one shared fallback-free
        :class:`repro.serving.degrade.DegradationPolicy`, or a sequence
        of per-worker policies (required when policies carry fallback
        models).

    Usage::

        replicas = [build_model(seed=0) for _ in range(4)]
        with MultiWorkerEngine(replicas, max_delay_ms=2.0) as engine:
            ticket = engine.submit_items(user=3, candidate_items=[1, 2])
            scores = ticket.wait(timeout=1.0)
    """

    def __init__(
        self,
        models: Sequence,
        dtype: str = "float64",
        max_pending: int = 65536,
        max_delay_ms: float = 2.0,
        max_queue_rows: Optional[int] = None,
        max_queue_age_ms: Optional[float] = None,
        degradation: Union[None, DegradationPolicy, Sequence[Optional[DegradationPolicy]]] = None,
        executor: str = "auto",
        backend: object = "auto",
    ) -> None:
        models = list(models)
        if not models:
            raise ValueError("MultiWorkerEngine needs at least one model replica")
        if len({id(m) for m in models}) != len(models):
            raise ValueError(
                "model replicas must be distinct objects — each worker "
                "thread owns its replica's caches exclusively"
            )
        for model in models[1:]:
            for attr in ("n_users", "n_items"):
                first = getattr(models[0], attr, None)
                other = getattr(model, attr, None)
                if first is not None and other is not None and first != other:
                    raise ValueError(
                        f"replica {attr} mismatch: {other} vs {first} — all "
                        "workers must serve the same catalog"
                    )
        policies = self._normalize_policies(degradation, len(models))
        self._engines: List[ServingEngine] = [
            ServingEngine(
                model,
                dtype=dtype,
                max_pending=max_pending,
                max_delay_ms=max_delay_ms,
                max_queue_rows=max_queue_rows,
                max_queue_age_ms=max_queue_age_ms,
                degradation=policy,
                executor=executor,
                backend=backend,
            )
            for model, policy in zip(models, policies)
        ]

    @staticmethod
    def _normalize_policies(degradation, n_workers):
        if degradation is None:
            return [None] * n_workers
        if isinstance(degradation, DegradationPolicy):
            if degradation.fallback_model is not None and n_workers > 1:
                raise ValueError(
                    "a shared DegradationPolicy cannot carry a fallback_model "
                    "across multiple workers (each worker thread needs its own "
                    "fallback replica) — pass one policy per worker instead"
                )
            return [degradation] * n_workers
        policies = list(degradation)
        if len(policies) != n_workers:
            raise ValueError(
                f"got {len(policies)} degradation policies for {n_workers} workers"
            )
        fallbacks = [
            id(p.fallback_model)
            for p in policies
            if p is not None and p.fallback_model is not None
        ]
        if len(fallbacks) != len(set(fallbacks)):
            raise ValueError(
                "the same fallback_model instance appears in multiple "
                "per-worker policies — fallbacks are worker-owned state"
            )
        return policies

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._engines)

    @property
    def engines(self) -> List[ServingEngine]:
        """The per-worker engines (read-only list; e.g. for weight swaps)."""
        return list(self._engines)

    @property
    def models(self) -> List:
        """The per-worker model replicas, worker order."""
        return [engine.model for engine in self._engines]

    def worker_of(self, user: int) -> int:
        """Which worker serves ``user`` — the stable hash partition."""
        return int(user) % self.n_workers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MultiWorkerEngine":
        """Start every per-worker engine (rolls back on partial failure)."""
        started = []
        try:
            for engine in self._engines:
                engine.start()
                started.append(engine)
        except BaseException:
            for engine in started:
                engine.stop(drain=False)
            raise
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop every worker; same ``drain`` semantics as the single engine."""
        for engine in self._engines:
            engine.stop(drain=drain)

    @property
    def running(self) -> bool:
        """Whether every per-worker engine is serving."""
        return all(engine.running for engine in self._engines)

    def __enter__(self) -> "MultiWorkerEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def release(self) -> None:
        """Stop (draining) and drop every replica's serving cache."""
        for engine in self._engines:
            engine.release()

    # ------------------------------------------------------------------
    # Submission (any thread) — routed by initiator user
    # ------------------------------------------------------------------
    def submit_items(self, user: int, candidate_items: Sequence[int]) -> PendingScores:
        """Queue a Task-A request on ``user``'s worker."""
        return self._engines[self.worker_of(user)].submit_items(user, candidate_items)

    def submit_participants(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> PendingScores:
        """Queue a Task-B request on the *initiator*'s worker.

        Partitioning by initiator keeps a user's whole session — item
        rankings plus the follow-up participant rankings for the groups
        they launch — on one worker's caches.
        """
        return self._engines[self.worker_of(user)].submit_participants(
            user, item, candidate_users
        )

    def score_items(self, user: int, candidate_items: Sequence[int],
                    timeout: Optional[float] = None) -> np.ndarray:
        """Submit a Task-A request and block until its flush resolves it."""
        return self.submit_items(user, candidate_items).wait(timeout)

    def score_participants(self, user: int, item: int,
                           candidate_users: Sequence[int],
                           timeout: Optional[float] = None) -> np.ndarray:
        """Submit a Task-B request and block until its flush resolves it."""
        return self.submit_participants(user, item, candidate_users).wait(timeout)

    # ------------------------------------------------------------------
    # Drain / weight swap
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every worker has flushed everything submitted so far."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for engine in self._engines:
            remaining = None if deadline is None else deadline - time.monotonic()
            engine.drain(timeout=remaining)

    def refresh(self) -> None:
        """Rebuild every worker's serving caches after a weight swap.

        Each refresh runs on its worker's thread between flushes while
        all queues keep accepting submits — a rolling swap that never
        drops or strands a ticket.  Load new weights into every replica
        (``engine.models``) first, then call this.
        """
        for engine in self._engines:
            engine.refresh()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-worker snapshots plus fleet-level aggregate counters."""
        workers = [engine.stats() for engine in self._engines]
        aggregate: Dict[str, float] = {
            "submitted": 0, "served": 0, "flushes": 0, "pending_rows": 0,
            "accepted": 0, "rejected": 0, "shed": 0, "aborted": 0,
            "degraded": 0, "requests": 0, "flat_rows": 0, "unique_pairs": 0,
            "fused_calls": 0, "tape_calls": 0,
        }
        for snap in workers:
            engine_stats, overload, batcher = (
                snap["engine"], snap["overload"], snap["batcher"]
            )
            aggregate["submitted"] += engine_stats["submitted"]
            aggregate["served"] += engine_stats["served"]
            aggregate["flushes"] += engine_stats["flushes"]
            aggregate["pending_rows"] += sum(engine_stats["pending_rows"].values())
            for key in ("accepted", "rejected", "shed", "aborted", "degraded"):
                aggregate[key] += overload[key]
            for key in ("requests", "flat_rows", "unique_pairs",
                        "fused_calls", "tape_calls"):
                aggregate[key] += batcher[key]
        aggregate["degraded_active_workers"] = sum(
            1 for snap in workers if snap["overload"]["degraded_active"]
        )
        aggregate["max_flush_seconds"] = max(
            (snap["engine"]["max_flush_seconds"] for snap in workers), default=0.0
        )
        return {
            "n_workers": self.n_workers,
            "aggregate": aggregate,
            "workers": workers,
        }
