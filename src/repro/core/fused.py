"""Fused no-tape execution of MGBR's planned scoring forward.

:func:`fused_planned_scores` re-runs the exact primitive sequence of
``MultiTaskModule.forward_planned`` → ``MTLLayer.forward_planned_first``
→ dense ``MTLLayer.forward`` → gate attention → ``PredictionHead``, but
through a :class:`repro.executor.FusedWorkspace`: raw backend calls into
preallocated buffers, no Tensor graph nodes.  Under ``no_grad`` the tape
versions of these ops allocate a node + closure per primitive purely to
be discarded; eliding them is where the fused speedup comes from (the
BLAS work is identical).

Every helper here is an *op-for-op mirror* of one tape module — same
primitive, same operand arrays (fold weights come through the shared
version-keyed ``folded_blocks_raw`` / ``stacked_folds_raw`` caches),
same association order — which is what makes the float64 output
bit-identical to the tape (asserted in tests/test_fused_executor.py).
When editing the tape modules, update the matching mirror here; the
parity tests catch any drift.

Returns ``None`` (caller falls back to the tape) for model
configurations the mirror does not cover: subclassed MTL stacks/layers
or prediction heads with a non-ReLU activation or live dropout.

Row-parallel execution
----------------------
Under the thread-parallel backend (``repro.nn.parallel``) this program
parallelizes *through its primitives*, not by partitioning the program:
the per-pair takes/adds, gate softmaxes, ReLU masks and row reductions
row-chunk across the backend pool inside each workspace op, while every
GEMM stays full-batch.  That split is deliberate — BLAS GEMM kernels
are selected per problem shape, so ``(A @ B)[s:e] != A[s:e] @ B``
bitwise for many of this program's shapes (gate logits with K or 2K
columns, the head's out-dim-1 GEMV), whereas the chunked ops are
row-independent and bitwise invariant under any grid.  Running the
GEMMs whole keeps float64 parity with the serial pass *and* with the
tape, while BLAS supplies its own GIL-free threading for them.  The
base dot-product mirror (``_fused_score_slabs``) additionally slab-
partitions whole flushes, because multiply + row-sum has no GEMM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mtl import MTLLayer, MultiTaskModule
from repro.core.prediction import PredictionHead
from repro.executor import FusedWorkspace
from repro.nn import functional as F
from repro.nn.layers import MLP
from repro.nn.tensor import get_default_dtype

__all__ = ["fused_planned_scores"]


def _blocks_key(blocks):
    """The hashable fold-cache key ``check_blocks`` would produce."""
    return tuple((int(start), int(stop)) for start, stop in blocks)


def _head_supported(head) -> bool:
    """Whether the fused head mirror covers this prediction head."""
    if type(head) is not PredictionHead or type(head.mlp) is not MLP:
        return False
    mlp = head.mlp
    if mlp.activation is not F.relu:
        return False
    if mlp.drop is not None and mlp.drop.training:
        return False
    return True


def _proj_linear(ws: FusedWorkspace, linear, x: np.ndarray, key) -> np.ndarray:
    """Mirror of ``Linear.project_blocks``: ``x @ folded_blocks``.

    ``key`` is the precomputed :func:`_blocks_key` (callers hoist it out
    of the per-projection hot path).
    """
    fold = ws.cast(linear.folded_blocks_raw(key))
    return ws.matmul(x, fold)


def _proj_bank(ws: FusedWorkspace, bank, x: np.ndarray, key) -> np.ndarray:
    """Mirror of ``ExpertBank.project_blocks`` → ``(rows, K, d)``."""
    fold = ws.cast(bank.stacked_folds_raw(key))
    out = ws.matmul(x, fold)
    return ws.reshape(out, (x.shape[0], bank.n_experts, bank.out_dim))


def _attend(ws: FusedWorkspace, attention, bank: np.ndarray, logits: np.ndarray) -> np.ndarray:
    """Mirror of ``GateAttention.forward`` with precomputed logits."""
    weights = ws.softmax(logits) if attention.softmax else logits
    return ws.mix(weights, bank)


def _pair_logits(ws, adjusted, e_u, e_i, e_p, user_pos, item_pos, part_pos):
    """Mirror of ``AdjustedGate.pair_logits`` → ``(l_ui, l_ip, l_up)``."""
    v = e_u.shape[-1]
    lo, hi = ((0, v),), ((v, 2 * v),)

    def head_logits(head, x_a, pos_a, x_b, pos_b):
        t = ws.take(_proj_linear(ws, head.proj, x_a, lo), pos_a)
        return ws.add(t, ws.take(_proj_linear(ws, head.proj, x_b, hi), pos_b))

    l_ui = head_logits(adjusted.head_ui, e_u, user_pos, e_i, item_pos)
    l_ip = head_logits(adjusted.head_ip, e_i, item_pos, e_p, part_pos)
    l_up = head_logits(adjusted.head_up, e_u, user_pos, e_p, part_pos)
    return l_ui, l_ip, l_up


def _task_gate(ws, gate, state, own_bank, shared_bank, adj_logits, generic_logits,
               generic_bank=None):
    """Mirror of ``TaskGate.forward`` (planned and dense variants).

    ``generic_bank`` short-circuits the ``[own | shared]`` concatenation
    when the caller already holds the banks contiguously in that order
    (a slice view of the dense layers' combined bank buffer) — the view
    carries the identical values the concat would copy.
    """
    if generic_bank is None:
        if gate.shared:
            generic_bank = ws.concat([own_bank, shared_bank], axis=1)
        else:
            generic_bank = own_bank
    attention = gate.generic.attention
    if generic_logits is None:
        generic_logits = ws.matmul(state, attention.proj.weight.data)
    out = _attend(ws, attention, generic_bank, generic_logits)
    if gate.adjusted is not None:
        other = shared_bank if gate.shared else own_bank
        if gate.own_is_ui:
            banks = (own_bank, other, other)
        else:
            banks = (other, own_bank, own_bank)
        l_ui, l_ip, l_up = adj_logits
        adjusted = gate.adjusted
        term = _attend(ws, adjusted.head_ui, banks[0], l_ui)
        term = ws.add(term, _attend(ws, adjusted.head_ip, banks[1], l_ip))
        adj = ws.add(term, _attend(ws, adjusted.head_up, banks[2], l_up))
        out = ws.add(out, ws.multiply(adj, ws.scalar(gate.alpha)))
    return out


def _shared_gate(ws, gate, state, bank_a, bank_s, bank_b, logits, bank=None):
    """Mirror of ``SharedGate.forward`` (``bank`` = precomputed concat)."""
    attention = gate.attention
    if bank is None:
        bank = ws.concat([bank_a, bank_s, bank_b], axis=1)
    if logits is None:
        logits = ws.matmul(state, attention.proj.weight.data)
    return _attend(ws, attention, bank, logits)


def _first_layer(ws, layer, e_u, e_i, e_p, user_pos, item_pos, part_pos, adj):
    """Mirror of ``MTLLayer.forward_planned_first``.

    Like :func:`_dense_layer`, the shared case lands the three banks in
    one combined ``[a | s | b]`` buffer (the per-pair chain's final add
    writes straight into each bank's slice) so gate A's and the shared
    gate's bank concatenations are zero-copy views.
    """
    if layer.compact_input:
        folds_task, folds_shared = 1, 1
    elif layer.shared:
        folds_task, folds_shared = 2, 3
    else:
        folds_task, folds_shared = 1, 0
    v = e_u.shape[-1]
    keys_task = [_blocks_key(layer._entity_blocks(v, j, folds_task)) for j in range(3)]

    def per_pair(project, keys, out=None):
        t = ws.take(project(e_u, keys[0]), user_pos)
        t = ws.add(t, ws.take(project(e_i, keys[1]), item_pos))
        tp = ws.take(project(e_p, keys[2]), part_pos)
        if out is None:
            return ws.add(t, tp)
        # Same add, landed in the caller's combined-buffer slice.
        return ws.b.add(t, tp, out=out)

    def bank_proj(bank):
        return lambda x, key: _proj_bank(ws, bank, x, key)

    def gate_proj(attention):
        return lambda x, key: _proj_linear(ws, attention.proj, x, key)

    logits_a = per_pair(gate_proj(layer.gate_a.generic.attention), keys_task)
    logits_b = per_pair(gate_proj(layer.gate_b.generic.attention), keys_task)
    la, lb = adj
    if layer.shared:
        keys_shared = [
            _blocks_key(layer._entity_blocks(v, j, folds_shared)) for j in range(3)
        ]
        logits_s = per_pair(gate_proj(layer.gate_s.attention), keys_shared)
        ea, es, eb = layer.experts_a, layer.experts_s, layer.experts_b
        ka, ks, kb = ea.n_experts, es.n_experts, eb.n_experts
        cat = ws.out((user_pos.shape[0], ka + ks + kb, ea.out_dim))
        bank_a = per_pair(bank_proj(ea), keys_task, out=cat[:, :ka])
        bank_s = per_pair(bank_proj(es), keys_shared, out=cat[:, ka:ka + ks])
        bank_b = per_pair(bank_proj(eb), keys_task, out=cat[:, ka + ks:])
        new_a = _task_gate(ws, layer.gate_a, None, bank_a, bank_s, la, logits_a,
                           generic_bank=cat[:, :ka + ks])
        new_b = _task_gate(ws, layer.gate_b, None, bank_b, bank_s, lb, logits_b)
        new_s = _shared_gate(ws, layer.gate_s, None, bank_a, bank_s, bank_b, logits_s,
                             bank=cat)
        return new_a, new_s, new_b
    bank_a = per_pair(bank_proj(layer.experts_a), keys_task)
    bank_b = per_pair(bank_proj(layer.experts_b), keys_task)
    new_a = _task_gate(ws, layer.gate_a, None, bank_a, None, la, logits_a)
    new_b = _task_gate(ws, layer.gate_b, None, bank_b, None, lb, logits_b)
    return new_a, None, new_b


def _dense_bank(ws, bank, state: np.ndarray) -> np.ndarray:
    """Mirror of ``ExpertBank.forward``: per-expert matmuls, stacked.

    Deliberately *not* one stacked GEMM — BLAS re-association would
    break bit parity with the tape's per-expert loop.  The per-expert
    products do land directly in the stacked buffer's slices, which is
    parity-safe (stack is a pure copy).
    """
    return ws.matmul_stack(state, [expert.weight.data for expert in bank._experts])


def _dense_layer(ws, layer, g_a, g_s, g_b, adj):
    """Mirror of the dense ``MTLLayer.forward`` (later planned layers).

    The three expert banks are written into one combined ``[a | s | b]``
    buffer so that gate A's generic bank (``[a | s]``) and the shared
    gate's bank (``[a | s | b]``) are zero-copy slice views; only gate
    B's ``[b | s]`` order still needs a concatenation.  Values are
    identical to the per-bank concats — the layout only removes copies.
    """
    la, lb = adj
    if layer.shared:
        if layer.compact_input:
            state_a, state_b, state_s = g_a, g_b, g_s
        else:
            # ``[g_a | g_s]`` is a prefix view of ``[g_a | g_s | g_b]`` —
            # one concat serves both states (GEMMs handle the row
            # stride natively, so the view costs nothing).
            state_s = ws.concat([g_a, g_s, g_b], axis=1)
            state_a = state_s[:, : g_a.shape[1] + g_s.shape[1]]
            state_b = ws.concat([g_b, g_s], axis=1)
        ea, es, eb = layer.experts_a, layer.experts_s, layer.experts_b
        dt = ws.dtype
        fast = (
            state_a.dtype == dt and state_b.dtype == dt and state_s.dtype == dt
            and all(
                x.weight.data.dtype == dt
                for bank in (ea, es, eb) for x in bank._experts
            )
        )
        if fast:
            ka, ks, kb = ea.n_experts, es.n_experts, eb.n_experts
            cat = ws.out((state_a.shape[0], ka + ks + kb, ea.out_dim))
            bank_a = ws.matmul_stack(
                state_a, [x.weight.data for x in ea._experts], out=cat[:, :ka]
            )
            bank_s = ws.matmul_stack(
                state_s, [x.weight.data for x in es._experts], out=cat[:, ka:ka + ks]
            )
            bank_b = ws.matmul_stack(
                state_b, [x.weight.data for x in eb._experts], out=cat[:, ka + ks:]
            )
            gen_a, gen_s = cat[:, :ka + ks], cat
        else:
            bank_a = _dense_bank(ws, ea, state_a)
            bank_b = _dense_bank(ws, eb, state_b)
            bank_s = _dense_bank(ws, es, state_s)
            gen_a = gen_s = None
        new_a = _task_gate(ws, layer.gate_a, state_a, bank_a, bank_s, la, None,
                           generic_bank=gen_a)
        new_b = _task_gate(ws, layer.gate_b, state_b, bank_b, bank_s, lb, None)
        new_s = _shared_gate(ws, layer.gate_s, state_s, bank_a, bank_s, bank_b, None,
                             bank=gen_s)
        return new_a, new_s, new_b
    bank_a = _dense_bank(ws, layer.experts_a, g_a)
    bank_b = _dense_bank(ws, layer.experts_b, g_b)
    new_a = _task_gate(ws, layer.gate_a, g_a, bank_a, None, la, None)
    new_b = _task_gate(ws, layer.gate_b, g_b, bank_b, None, lb, None)
    return new_a, None, new_b


def _head(ws, head, g: np.ndarray) -> np.ndarray:
    """Mirror of ``PredictionHead.forward`` (ReLU MLP, dropout inert)."""
    mlp = head.mlp
    x = g
    last = len(mlp._linears) - 1
    for i, layer in enumerate(mlp._linears):
        x = ws.matmul(x, layer.weight.data)
        if layer.bias is not None:
            x = ws.add(x, layer.bias.data)
        if i != last:
            x = ws.relu(x)
    return ws.reshape(x, (x.shape[0],))


def fused_planned_scores(model, emb, plan, task: str) -> Optional[np.ndarray]:
    """Fused unique-request logits for ``plan``, or ``None`` to fall back.

    ``task`` is ``"items"`` (head A) or ``"participants"`` (head B).
    The result lives in workspace buffers — callers must copy before the
    next flush (the public plan scorers do).  Entity gathers go through
    :meth:`repro.core.model.MGBR._planned_entities`, so store statistics,
    LRU caching and plan-cached shard maps behave identically to the
    tape path.
    """
    head = model.head_a if task == "items" else model.head_b
    mtl = model.mtl
    if (
        not _head_supported(head)
        or type(mtl) is not MultiTaskModule
        or any(type(layer) is not MTLLayer for layer in mtl._layers)
    ):
        return None
    ws = model._fused_workspace()
    ws.begin(get_default_dtype())

    e_u_t, e_i_t, e_p_t, part_pos = model._planned_entities(emb, plan)
    e_u, e_i, e_p = e_u_t.data, e_i_t.data, e_p_t.data
    user_pos, item_pos = plan.user_pos, plan.item_pos

    # Adjusted-gate logits for every layer first — forward_planned's order.
    adj_logits = []
    for layer in mtl._layers:
        adj_logits.append(
            tuple(
                _pair_logits(ws, gate.adjusted, e_u, e_i, e_p, user_pos, item_pos, part_pos)
                if gate.adjusted is not None
                else None
                for gate in (layer.gate_a, layer.gate_b)
            )
        )
    g_a, g_s, g_b = _first_layer(
        ws, mtl._layers[0], e_u, e_i, e_p, user_pos, item_pos, part_pos, adj_logits[0]
    )
    for layer, logits in zip(mtl._layers[1:], adj_logits[1:]):
        g_a, g_s, g_b = _dense_layer(ws, layer, g_a, g_s, g_b, logits)
    return _head(ws, head, g_a if task == "items" else g_b)
