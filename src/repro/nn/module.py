"""Module/Parameter system — the ``torch.nn.Module`` analogue.

A :class:`Module` owns :class:`Parameter` leaves and child modules;
``parameters()`` walks the tree so optimizers and the parameter-counting
analysis (Table V of the paper) see every trainable array exactly once.
State-dict save/load round-trips through plain ``dict[str, np.ndarray]``
for npz checkpointing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as trainable model state.

    Parameters are pinned to ``float64`` regardless of any active
    ``dtype_scope``/``inference_mode`` — the dtype policy casts op
    *results*, never trainable state, so a model constructed inside an
    inference scope still trains and gradchecks at full precision.
    """

    def __init__(self, data, name: str = "") -> None:
        # dtype passed explicitly so the initial values never round-trip
        # through a narrower scope dtype.
        super().__init__(data, requires_grad=True, name=name, dtype=np.float64)
        self.requires_grad = True


class Module:
    """Base class for all neural components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.  The
    ``training`` flag gates dropout and other train-only behaviour.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters in the tree (deduplicated by identity)."""
        seen = set()
        out: List[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)
        return out

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count (Table V's "Para. number")."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train/eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (enables dropout etc.)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradients & state
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear every parameter's gradient buffer."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy all parameters into a flat ``name -> array`` mapping."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(
        self, state: Dict[str, np.ndarray], strict: bool = True, dtype=None
    ) -> None:
        """Load values produced by :meth:`state_dict` back into parameters.

        ``dtype=None`` assigns into the existing buffers (values are cast
        to each parameter's own dtype, the training-safe default).  An
        explicit ``dtype`` instead *rebinds* every loaded parameter's
        buffer to that precision — the float32 serving path of
        :func:`repro.training.checkpoint.restore_model`; gradients then
        also accumulate in that dtype, so only use it for inference.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            if name in own:
                if own[name].data.shape != values.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{own[name].data.shape} vs {values.shape}"
                    )
                if dtype is None:
                    own[name].data[...] = values
                else:
                    # np.array (not asarray): always copy, so the rebound
                    # buffer never aliases the caller's state dict or a
                    # sibling model loaded from the same checkpoint.
                    own[name].data = np.array(values, dtype=dtype)
                    own[name].grad = None

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")
