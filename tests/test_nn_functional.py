"""Unit tests for activation/loss functionals: gradients + numerical stability."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import gradcheck, tensor


def _t(rng, *shape):
    return tensor(rng.normal(size=shape), requires_grad=True)


class TestSigmoidFamily:
    def test_sigmoid_gradcheck(self, rng):
        assert gradcheck(F.sigmoid, [_t(rng, 3, 4)])

    def test_sigmoid_extreme_values_stable(self):
        out = F.sigmoid(tensor([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out.data))

    def test_logsigmoid_gradcheck(self, rng):
        assert gradcheck(F.logsigmoid, [_t(rng, 5)])

    def test_logsigmoid_matches_log_of_sigmoid(self, rng):
        x = tensor(rng.normal(size=10))
        np.testing.assert_allclose(
            F.logsigmoid(x).data, np.log(F.sigmoid(x).data), atol=1e-12
        )

    def test_logsigmoid_no_overflow(self):
        out = F.logsigmoid(tensor([-800.0, 800.0]))
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data[1], 0.0, atol=1e-12)
        np.testing.assert_allclose(out.data[0], -800.0, rtol=1e-6)

    def test_softplus_gradcheck(self, rng):
        assert gradcheck(F.softplus, [_t(rng, 4)])

    def test_softplus_identity(self):
        # softplus(x) - softplus(-x) == x
        x = np.linspace(-5, 5, 11)
        out = F.softplus(tensor(x)).data - F.softplus(tensor(-x)).data
        np.testing.assert_allclose(out, x, atol=1e-12)


class TestReluFamily:
    def test_relu_gradcheck_away_from_kink(self, rng):
        a = tensor(rng.normal(size=20) + np.sign(rng.normal(size=20)) * 0.5, requires_grad=True)
        assert gradcheck(F.relu, [a])

    def test_relu_values(self):
        out = F.relu(tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_leaky_relu_gradcheck(self, rng):
        a = tensor(rng.normal(size=20) + np.sign(rng.normal(size=20)) * 0.5, requires_grad=True)
        assert gradcheck(lambda x: F.leaky_relu(x, 0.2), [a])

    def test_leaky_relu_negative_slope(self):
        out = F.leaky_relu(tensor([-2.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2])

    def test_tanh_gradcheck(self, rng):
        assert gradcheck(F.tanh, [_t(rng, 3, 3)])


class TestSoftmax:
    def test_softmax_gradcheck(self, rng):
        assert gradcheck(lambda x: F.softmax(x, axis=-1), [_t(rng, 3, 5)])

    def test_softmax_axis0_gradcheck(self, rng):
        assert gradcheck(lambda x: F.softmax(x, axis=0), [_t(rng, 4, 2)])

    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(tensor(rng.normal(size=(6, 8))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(6))

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 4))
        a = F.softmax(tensor(x)).data
        b = F.softmax(tensor(x + 1000.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_gradcheck(self, rng):
        assert gradcheck(lambda x: F.log_softmax(x, axis=-1), [_t(rng, 3, 4)])

    def test_log_softmax_consistency(self, rng):
        x = tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )


class TestDropout:
    def test_dropout_disabled_in_eval(self, rng):
        x = tensor(rng.normal(size=(10, 10)), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_zero_p_is_identity(self, rng):
        x = tensor(rng.normal(size=(4,)), requires_grad=True)
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_dropout_preserves_expectation(self, rng):
        x = tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(tensor([1.0]), 1.0, rng)

    def test_dropout_gradient_masks_match(self, rng):
        x = tensor(np.ones(50), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        out.sum().backward()
        # Gradient is the same mask/scale applied to ones.
        np.testing.assert_allclose(x.grad, out.data)


class TestLosses:
    def test_bce_matches_manual(self, rng):
        p = tensor(np.array([0.2, 0.9]), requires_grad=True)
        target = np.array([0.0, 1.0])
        loss = F.binary_cross_entropy(p, target)
        manual = -(np.log(0.8) + np.log(0.9)) / 2
        np.testing.assert_allclose(loss.data, manual, rtol=1e-10)

    def test_bce_gradcheck(self, rng):
        p = tensor(rng.uniform(0.1, 0.9, size=6), requires_grad=True)
        target = (rng.random(6) > 0.5).astype(float)
        assert gradcheck(lambda x: F.binary_cross_entropy(x, target), [p])

    def test_mse_gradcheck(self, rng):
        assert gradcheck(lambda x: F.mse_loss(x, np.zeros((3, 2))), [_t(rng, 3, 2)])

    def test_l2_norm(self, rng):
        x = tensor([3.0, 4.0])
        np.testing.assert_allclose(F.l2_norm(x).data, 5.0, rtol=1e-6)
