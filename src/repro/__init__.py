"""MGBR reproduction: Group Buying Recommendation Based on Multi-task Learning.

This package is a complete, self-contained reproduction of

    Zhai, Liu, Yang, Xiao.
    "Group Buying Recommendation Model Based on Multi-task Learning."
    ICDE 2023 (arXiv:2211.14247).

Layout
------
``repro.nn``        NumPy autograd + layers + optimizers (PyTorch substitute)
``repro.graph``     the three interaction views, normalized adjacencies, GCNs
``repro.data``      synthetic Beibei-style group-buying data + samplers
``repro.eval``      MRR/NDCG protocols (1:9 and 1:99) + PCA case study
``repro.core``      the MGBR model: multi-view embeddings, expert networks,
                    adjusted gates, prediction heads, all four losses,
                    and the paper's five ablation variants
``repro.baselines`` DeepMF, NGCF, DiffNet, EATNN, GBGCN, GBMF
``repro.store``     embedding storage layouts: dense tables and
                    hash/range-sharded stores with plan-driven gathers
``repro.training``  joint two-task trainer, checkpoints, histories
``repro.analysis``  parameter counts, epoch timing, hyper-parameter sweeps
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
