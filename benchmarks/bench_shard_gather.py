"""Shard-gather benchmark: throughput and memory model of ShardedStore.

Measures the two quantities the sharded embedding layer trades between
(docs/sharding.md):

* **Gather throughput** — rows/sec answering planned-style gathers
  (sorted unique id chunks, the exact shape
  :class:`repro.plan.ScoringPlan` produces) from a
  :class:`repro.store.DenseStore` vs a :class:`repro.store.ShardedStore`
  at several shard counts, plus the differentiable round trip (gather →
  scatter-add backward) that dominates the planned training step.
* **Peak per-shard resident rows** — what one shard worker must hold:
  its owned block (≤ ``ceil(rows / n_shards)`` by construction) plus
  the largest transient gather it ever answered (≤ the chunk size — the
  "chunk slack").  This is the number that says a catalog bigger than
  one machine's RAM fits once shards live in separate processes.

Values gathered from shards are asserted bit-identical to the dense
table, and the resident-row bound is asserted per shard count.

Writes ``BENCH_shard_gather.json`` at the repository root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_shard_gather.py``);
``--smoke`` runs a seconds-scale configuration and skips the artifact.
Environment knobs: ``REPRO_BENCH_SHARD_ROWS / DIM / CHUNK / ROUNDS``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.nn.tensor import no_grad
from repro.store import DenseStore, ShardedStore

ROWS = int(os.environ.get("REPRO_BENCH_SHARD_ROWS", "200000"))
DIM = int(os.environ.get("REPRO_BENCH_SHARD_DIM", "64"))
CHUNK = int(os.environ.get("REPRO_BENCH_SHARD_CHUNK", "4096"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SHARD_ROUNDS", "3"))

SHARD_COUNTS = (2, 4, 8)
SEED = 13

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard_gather.json"


def _chunks(rng: np.random.Generator):
    """Planned-style gather chunks: sorted unique ids, CHUNK rows each."""
    ids = rng.permutation(ROWS)
    for start in range(0, ROWS, CHUNK):
        yield np.sort(ids[start : start + CHUNK])


def _time_gathers(store, rng: np.random.Generator) -> dict:
    """Rows/sec for forward-only and forward+backward planned gathers."""
    with no_grad():  # warm-up (allocator, partition tables)
        store.gather(np.arange(min(CHUNK, ROWS), dtype=np.int64))

    rows_done = 0
    started = time.perf_counter()
    with no_grad():
        for _ in range(ROUNDS):
            for chunk in _chunks(rng):
                store.gather(chunk)
                rows_done += len(chunk)
    forward_seconds = time.perf_counter() - started

    grad_rows = 0
    started = time.perf_counter()
    for chunk in _chunks(rng):
        out = store.gather(chunk)
        out.sum().backward()
        for _, param in store.named_parameters():
            param.zero_grad()
        grad_rows += len(chunk)
    train_seconds = time.perf_counter() - started

    return {
        "forward_rows_per_sec": round(rows_done / forward_seconds, 1),
        "train_rows_per_sec": round(grad_rows / train_seconds, 1),
    }


def _bench_sharded(values: np.ndarray, dense_ref: np.ndarray, n_shards: int) -> dict:
    rng = np.random.default_rng(SEED)
    store = ShardedStore(values, n_shards, "range")
    timing = _time_gathers(store, rng)

    # Parity: one full sweep of chunks must reproduce the dense rows.
    check = np.sort(np.random.default_rng(SEED + 1).permutation(ROWS)[:CHUNK])
    with no_grad():
        gathered = store.gather(check).data
    assert np.array_equal(gathered, dense_ref[check]), "sharded gather diverged"

    resident = store.resident_rows()
    ceil_bound = math.ceil(ROWS / n_shards)
    peak = max(resident) + store.stats["max_shard_gather_rows"]
    return {
        "n_shards": n_shards,
        **timing,
        "resident_rows_per_shard": resident,
        "ceil_rows_over_shards": ceil_bound,
        "max_shard_gather_rows": store.stats["max_shard_gather_rows"],
        "peak_resident_rows": peak,
        "peak_bound": ceil_bound + CHUNK,
        "shard_touches_per_gather": round(
            store.stats["shard_touches"] / max(store.stats["gathers"], 1), 3
        ),
    }


def run_benchmark() -> dict:
    rng = np.random.default_rng(SEED)
    values = rng.normal(size=(ROWS, DIM))
    dense = DenseStore(values)
    dense_timing = _time_gathers(dense, np.random.default_rng(SEED))
    report = {
        "config": {"rows": ROWS, "dim": DIM, "chunk": CHUNK, "rounds": ROUNDS},
        "dense": {
            **dense_timing,
            "resident_rows": ROWS,
        },
        "sharded": [
            _bench_sharded(values, dense.weight.data, n) for n in SHARD_COUNTS
        ],
    }
    for entry in report["sharded"]:
        entry["forward_vs_dense"] = round(
            entry["forward_rows_per_sec"] / report["dense"]["forward_rows_per_sec"], 3
        )
    return report


def check_report(report: dict) -> None:
    """The acceptance gates the CI smoke run also exercises."""
    for entry in report["sharded"]:
        n = entry["n_shards"]
        assert entry["peak_resident_rows"] <= entry["peak_bound"], (
            f"{n}-shard peak resident rows {entry['peak_resident_rows']} exceeds "
            f"ceil(rows/{n}) + chunk = {entry['peak_bound']}"
        )
        assert max(entry["resident_rows_per_shard"]) <= entry["ceil_rows_over_shards"]
        # Sharding buys memory, not speed — but the per-shard regrouping
        # must stay within a small constant factor of the dense gather.
        assert entry["forward_vs_dense"] > 0.1, (
            f"{n}-shard gather collapsed to {entry['forward_vs_dense']}x dense"
        )


def test_shard_gather():
    """Per-shard resident rows bounded; gathers bit-identical to dense."""
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    check_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (small table, 1 round); skips the JSON artifact",
    )
    args = parser.parse_args()
    if args.smoke:
        ROWS, DIM, CHUNK, ROUNDS = 20000, 16, 1024, 1
    result = run_benchmark()
    check_report(result)
    if not args.smoke:
        OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
