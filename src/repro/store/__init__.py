"""Sharded embedding storage (ROADMAP "sharded embedding tables").

Public surface:

* :class:`EmbeddingStore` — the storage contract behind
  :class:`repro.nn.layers.Embedding`;
* :class:`DenseStore` — the single-table layout (default);
* :class:`ShardedStore` — rows hash/range-partitioned across N
  in-process shard workers, gathered once per shard per planned call;
* :class:`ProcessShardedStore` — the same partitioning with each shard
  owned by a **worker process**, answering gathers over shared-memory
  row buffers (the cross-process shard service, see
  :mod:`repro.store.service`);
* :class:`LRUCachedStore` / :func:`cache_hot_rows` — hot-row LRU cache
  decorating any store (serving's skewed id streams hit it instead of
  the shard machinery);
* :class:`Partitioner` / :class:`ShardMap` — id→shard assignment and
  compiled per-shard gather plans (also cached on scoring plans);
* :func:`make_store` — layout factory used by the layer constructors;
* :func:`iter_stores` — find store-backed embeddings in a module tree.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.store.base import EmbeddingStore, Partitioner, ShardMap, iter_stores
from repro.store.dense import DenseStore
from repro.store.lru import LRUCachedStore, cache_hot_rows
from repro.store.quant import QuantizedStore, check_quant_mode, quant_bytes_per_row
from repro.store.service import ProcessShardedStore, RemoteShardParameter
from repro.store.sharded import ShardedStore

__all__ = [
    "EmbeddingStore",
    "DenseStore",
    "ShardedStore",
    "ProcessShardedStore",
    "RemoteShardParameter",
    "LRUCachedStore",
    "QuantizedStore",
    "Partitioner",
    "ShardMap",
    "iter_stores",
    "cache_hot_rows",
    "make_store",
    "quant_bytes_per_row",
]


def _resolve_quantize(quantize, service: bool) -> Optional[str]:
    """Apply the ``REPRO_QUANTIZE`` process default to an unset knob.

    The env default covers the *in-process* layouts only: a quantised
    process-shard service is inference-only (grad gathers raise), so
    turning it on implicitly would break any training construction —
    ``service=True`` stores opt in explicitly via ``quantize=``.
    Callers can pin the float layout against the env with
    ``quantize="none"`` (or ``""``/``False``).
    """
    if quantize is None and not service:
        quantize = os.environ.get("REPRO_QUANTIZE") or None
    if quantize in ("none", "", False):
        quantize = None
    return check_quant_mode(quantize)


def make_store(
    values: np.ndarray,
    n_shards: int = 0,
    partition: str = "range",
    service: bool = False,
    quantize: Optional[str] = None,
) -> EmbeddingStore:
    """Build the layout for an initial table: dense unless ``n_shards >= 2``.

    ``n_shards`` of 0 or 1 keeps the single-table :class:`DenseStore`
    (bit-for-bit the historical behaviour); 2+ partitions the same
    initial values across a :class:`ShardedStore`, so any layout built
    from one init array scores identically.  ``service=True`` moves the
    shards into worker *processes* (:class:`ProcessShardedStore`) —
    same contract, same bits, rows owned and gathered outside the GIL
    (one worker when ``n_shards`` is 0/1).

    ``quantize="int8"|"fp16"`` adds the quantised memory tier
    (docs/quantization.md): in-process layouts get a
    :class:`QuantizedStore` wrapper over the float master (training
    bypasses it; inference gathers dequantise from the compact shadow),
    while ``service=True`` quantises the rows *inside* each worker
    process (inference-only).  ``quantize=None`` defers to the
    ``REPRO_QUANTIZE`` environment default for in-process layouts;
    ``quantize="none"`` pins the float layout regardless.
    """
    if n_shards < 0:
        raise ValueError(f"n_shards must be >= 0, got {n_shards}")
    mode = _resolve_quantize(quantize, service)
    if service:
        return ProcessShardedStore(
            values, max(n_shards, 1), partition, quantize=mode
        )
    if n_shards <= 1:
        store: EmbeddingStore = DenseStore(values)
    else:
        store = ShardedStore(values, n_shards, partition)
    if mode is not None:
        store = QuantizedStore(store, mode)
    return store
